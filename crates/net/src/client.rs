//! The client-side connection: a [`RemoteNode`] implements
//! [`LogService`] over TCP, so `Publisher`/`Reader`/`Auditor` work against a
//! networked Offchain Node exactly as they do in-process.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use wedge_core::node::ReplyFn;
use wedge_core::{
    AppendRequest, CoreError, EntryId, EpochCommit, LogService, ShardGroup, SignedResponse,
};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_crypto::PublicKey;
use wedge_merkle::RangeProof;

use crate::wire::{encode_request_into, recv_reply, Reply, Request, WireError};

/// How a pending request wants its reply delivered.
enum PendingSlot {
    /// Synchronous caller blocked on a channel.
    Channel(Sender<Reply>),
    /// Asynchronous append continuation.
    Append(ReplyFn),
}

struct Shared {
    pending: Mutex<HashMap<u64, PendingSlot>>,
}

/// The `positions`/`entries` pair observed by the most recent `Meta` round
/// trip, each consumable once. Serving the companion accessor from the
/// cache halves the Meta RPC count for the common "read both" pattern;
/// consume-once semantics mean polling the *same* accessor always refreshes.
///
/// The cache is guarded by a generation number: every append bumps the
/// connection's `meta_gen`, and a cached pair is honored only while its
/// recorded generation still matches. This closes two staleness holes —
/// a Meta reply racing a concurrent append must not repopulate the cache
/// with pre-append values, and a pool can invalidate *all* of its stripes
/// on append (see [`RemoteNode::invalidate_meta_cache`]) without a value
/// cached on an idle stripe surviving.
#[derive(Default)]
struct MetaCache {
    /// The `meta_gen` observed when the pair was cached.
    gen: u64,
    positions: Option<u64>,
    entries: Option<u64>,
}

/// A connection to a remote WedgeBlock node.
///
/// One TCP connection is multiplexed across all operations; a background
/// reader thread dispatches tagged replies. Dropping the `RemoteNode`
/// closes the connection (outstanding appends get an error reply).
///
/// Writes are buffered. By default every request is flushed immediately;
/// [`RemoteNode::set_buffered_appends`] defers flushing of appends until
/// [`LogService::flush`] (or any synchronous round trip), letting a batch
/// of appends share one socket write.
pub struct RemoteNode {
    writer: Mutex<BufWriter<TcpStream>>,
    /// When false, appends stay in the write buffer until a flush.
    autoflush: AtomicBool,
    /// Set on the first write/flush failure. A failed write can leave half
    /// a frame in the buffer or on the socket, so no later frame may
    /// follow it — every subsequent send fails fast instead of
    /// desynchronizing the stream's framing.
    poisoned: AtomicBool,
    shared: Arc<Shared>,
    meta_cache: Mutex<MetaCache>,
    /// Bumped by every append; validates [`MetaCache`] entries.
    meta_gen: AtomicU64,
    next_id: AtomicU64,
    public_key: PublicKey,
    timeout: Duration,
    reader_thread: Option<std::thread::JoinHandle<()>>,
}

impl RemoteNode {
    /// Connects and performs the hello handshake (fetching the node's
    /// public key for client-side verification).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<RemoteNode> {
        RemoteNode::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connects with a custom per-operation timeout.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> std::io::Result<RemoteNode> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader_stream = stream.try_clone()?;
        let shared = Arc::new(Shared {
            pending: Mutex::new(HashMap::new()),
        });
        let reader_shared = Arc::clone(&shared);
        let reader_thread = std::thread::Builder::new()
            .name("wedge-net-client-reader".into())
            .spawn(move || {
                let mut reader = BufReader::new(reader_stream);
                // Reads until the connection closes (recv_reply errors).
                while let Ok((req_id, reply)) = recv_reply(&mut reader) {
                    let slot = reader_shared.pending.lock().remove(&req_id);
                    match slot {
                        Some(PendingSlot::Channel(tx)) => {
                            let _ = tx.send(reply);
                        }
                        Some(PendingSlot::Append(callback)) => match reply {
                            Reply::Response(response) => callback(Ok(response)),
                            Reply::Error(error) => callback(Err(error.to_string())),
                            other => callback(Err(format!("unexpected append reply: {other:?}"))),
                        },
                        None => {} // late reply for a timed-out caller
                    }
                }
                // Fail everything still pending.
                let mut pending = reader_shared.pending.lock();
                for (_, slot) in pending.drain() {
                    if let PendingSlot::Append(callback) = slot {
                        callback(Err("connection closed".into()));
                    }
                }
            })?;

        let mut node = RemoteNode {
            writer: Mutex::new(BufWriter::new(stream)),
            autoflush: AtomicBool::new(true),
            poisoned: AtomicBool::new(false),
            shared,
            meta_cache: Mutex::new(MetaCache::default()),
            meta_gen: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            // A syntactically valid placeholder; the handshake below
            // overwrites it before `connect` returns.
            public_key: wedge_crypto::Keypair::from_seed(b"handshake-pending").public,
            timeout,
            reader_thread: Some(reader_thread),
        };
        // Handshake.
        match node.round_trip(Request::Hello)? {
            Reply::Hello { public_key } => {
                node.public_key = PublicKey::from_bytes(&public_key).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad node key")
                })?;
            }
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad hello reply: {other:?}"),
                ))
            }
        }
        Ok(node)
    }

    /// Switches buffered-append mode: when buffered, append frames queue in
    /// the write buffer until [`LogService::flush`] or the next synchronous
    /// round trip, so a burst shares one socket write. Synchronous requests
    /// always flush (they block on the reply).
    pub fn set_buffered_appends(&self, buffered: bool) {
        self.autoflush.store(!buffered, Ordering::Relaxed);
    }

    fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Invalidates the cached Meta pair: entries cached before this call
    /// are never served again. Lock-free — safe to call on every stripe of
    /// a pool from the append hot path.
    pub(crate) fn invalidate_meta_cache(&self) {
        self.meta_gen.fetch_add(1, Ordering::Release);
    }

    /// Encodes and writes one request frame; flushes when asked. Any
    /// write/flush failure is fatal for the connection: the stream may hold
    /// a half-written frame, so the connection is poisoned (all later sends
    /// fail fast) and shut down rather than left to desynchronize framing.
    fn send(&self, req_id: u64, request: &Request, flush: bool) -> std::io::Result<()> {
        let mut frame = Vec::new();
        encode_request_into(&mut frame, req_id, request)?;
        let mut writer = self.writer.lock();
        // Checked under the lock: a sender that lost the race to a failing
        // sender must not append after its partial frame.
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "connection poisoned by an earlier write failure",
            ));
        }
        let outcome =
            writer
                .write_all(&frame)
                .and_then(|()| if flush { writer.flush() } else { Ok(()) });
        if outcome.is_err() {
            self.poisoned.store(true, Ordering::Relaxed);
            let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
        }
        outcome
    }

    /// Sends `request` and blocks for its tagged reply.
    fn round_trip(&self, request: Request) -> std::io::Result<Reply> {
        let req_id = self.next_id();
        let (tx, rx) = bounded(1);
        self.shared
            .pending
            .lock()
            .insert(req_id, PendingSlot::Channel(tx));
        // Synchronous callers always flush — any buffered appends ride
        // along in the same write.
        if let Err(e) = self.send(req_id, &request, true) {
            self.shared.pending.lock().remove(&req_id);
            return Err(e);
        }
        rx.recv_timeout(self.timeout).map_err(|_| {
            self.shared.pending.lock().remove(&req_id);
            std::io::Error::new(std::io::ErrorKind::TimedOut, "request timed out")
        })
    }

    fn rpc(&self, request: Request) -> Result<Reply, CoreError> {
        match self.round_trip(request) {
            Ok(Reply::Error(error)) => Err(remote_error(error)),
            Ok(reply) => Ok(reply),
            Err(_) => Err(CoreError::NodeStopped),
        }
    }
}

/// Maps a wire error back into a client-side error. Structured errors carry
/// the real [`EntryId`]; plain-text errors from pre-structured peers fall
/// back to the historical needle match (with a sentinel id, since the old
/// wire format never carried one).
fn remote_error(error: WireError) -> CoreError {
    match error {
        WireError::EntryNotFound { id, .. } => CoreError::EntryNotFound(id),
        WireError::Generic(message) => {
            if message.contains("not found") {
                CoreError::EntryNotFound(EntryId {
                    log_id: u64::MAX,
                    offset: u32::MAX,
                })
            } else {
                CoreError::Remote(message)
            }
        }
    }
}

impl LogService for RemoteNode {
    fn node_public_key(&self) -> PublicKey {
        self.public_key
    }

    fn submit_request(&self, request: AppendRequest, reply: ReplyFn) -> Result<(), CoreError> {
        // Appends change the log shape: the cached meta pair is stale.
        self.invalidate_meta_cache();
        let req_id = self.next_id();
        self.shared
            .pending
            .lock()
            .insert(req_id, PendingSlot::Append(reply));
        let flush = self.autoflush.load(Ordering::Relaxed);
        if self.send(req_id, &Request::Append(request), flush).is_err() {
            // Reclaim and fail the continuation.
            if let Some(PendingSlot::Append(callback)) = self.shared.pending.lock().remove(&req_id)
            {
                callback(Err("connection closed".into()));
            }
            return Err(CoreError::NodeStopped);
        }
        Ok(())
    }

    fn flush(&self) {
        let mut writer = self.writer.lock();
        if writer.flush().is_err() {
            // Same rule as `send`: a failed flush may leave a partial
            // frame behind; nothing may be written after it.
            self.poisoned.store(true, Ordering::Relaxed);
            let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
        }
    }

    fn read_entry(&self, id: EntryId) -> Result<SignedResponse, CoreError> {
        match self.rpc(Request::Read(id))? {
            Reply::Response(response) => Ok(response),
            _ => Err(CoreError::RequestRejected("unexpected reply")),
        }
    }

    fn read_entries(&self, ids: &[EntryId]) -> Vec<Result<SignedResponse, CoreError>> {
        match self.rpc(Request::ReadMany(ids.to_vec())) {
            Ok(Reply::ManyResults(results)) if results.len() == ids.len() => results
                .into_iter()
                .map(|r| r.map_err(remote_error))
                .collect(),
            Ok(_) | Err(_) => ids
                .iter()
                .map(|_| Err(CoreError::Remote("read-many failed".into())))
                .collect(),
        }
    }

    fn read_entry_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<SignedResponse, CoreError> {
        match self.rpc(Request::ReadSeq(publisher, sequence))? {
            Reply::Response(response) => Ok(response),
            _ => Err(CoreError::RequestRejected("unexpected reply")),
        }
    }

    fn read_position(&self, log_id: u64) -> Result<Vec<SignedResponse>, CoreError> {
        match self.rpc(Request::ReadPosition(log_id))? {
            Reply::Responses(responses) => Ok(responses),
            _ => Err(CoreError::RequestRejected("unexpected reply")),
        }
    }

    fn position_len(&self, log_id: u64) -> Option<u32> {
        match self.rpc(Request::Meta { log_id }) {
            Ok(Reply::Meta { position_len, .. }) => position_len,
            _ => None,
        }
    }

    fn scan(
        &self,
        log_id: u64,
        start: u32,
        count: u32,
    ) -> Result<(Vec<Vec<u8>>, RangeProof, Hash32), CoreError> {
        match self.rpc(Request::Scan {
            log_id,
            start,
            count,
        })? {
            Reply::Scan {
                leaves,
                proof,
                root,
            } => Ok((leaves, proof, root)),
            _ => Err(CoreError::RequestRejected("unexpected reply")),
        }
    }

    fn positions(&self) -> u64 {
        // Serve from the pair cached by a preceding `entries()` call —
        // both values then come from one Meta round trip. The generation
        // sampled *before* the RPC gates both the cache hit and the store:
        // an append landing anywhere in between leaves the pre-append pair
        // unusable instead of letting it repopulate the cache.
        let gen = self.meta_gen.load(Ordering::Acquire);
        let cached = {
            let mut cache = self.meta_cache.lock();
            if cache.gen == gen {
                cache.positions.take()
            } else {
                None
            }
        };
        if let Some(positions) = cached {
            return positions;
        }
        match self.rpc(Request::Meta { log_id: u64::MAX }) {
            Ok(Reply::Meta {
                positions, entries, ..
            }) => {
                if self.meta_gen.load(Ordering::Acquire) == gen {
                    *self.meta_cache.lock() = MetaCache {
                        gen,
                        positions: None,
                        entries: Some(entries),
                    };
                }
                positions
            }
            _ => 0,
        }
    }

    fn entries(&self) -> u64 {
        let gen = self.meta_gen.load(Ordering::Acquire);
        let cached = {
            let mut cache = self.meta_cache.lock();
            if cache.gen == gen {
                cache.entries.take()
            } else {
                None
            }
        };
        if let Some(entries) = cached {
            return entries;
        }
        match self.rpc(Request::Meta { log_id: u64::MAX }) {
            Ok(Reply::Meta {
                positions, entries, ..
            }) => {
                if self.meta_gen.load(Ordering::Acquire) == gen {
                    *self.meta_cache.lock() = MetaCache {
                        gen,
                        positions: Some(positions),
                        entries: None,
                    };
                }
                entries
            }
            _ => 0,
        }
    }

    fn meta(&self, log_id: u64) -> (u64, u64, Option<u32>) {
        // One round trip instead of three; the server answers from one
        // snapshot, so the triple is internally consistent.
        match self.rpc(Request::Meta { log_id }) {
            Ok(Reply::Meta {
                positions,
                entries,
                position_len,
            }) => (positions, entries, position_len),
            _ => (0, 0, None),
        }
    }

    fn epoch_report(&self, max_group: usize) -> Result<ShardGroup, CoreError> {
        match self.rpc(Request::EpochReport {
            max_group: max_group as u64,
        })? {
            Reply::EpochGroup(group) => Ok(group),
            _ => Err(CoreError::RequestRejected("unexpected reply")),
        }
    }

    fn epoch_commit(&self, commit: EpochCommit) -> Result<u64, CoreError> {
        match self.rpc(Request::EpochCommit(commit))? {
            Reply::EpochCommitted { newly } => Ok(newly),
            _ => Err(CoreError::RequestRejected("unexpected reply")),
        }
    }
}

impl Drop for RemoteNode {
    fn drop(&mut self) {
        // Flush buffered appends, then close the connection; the reader
        // thread exits on EOF.
        {
            let mut writer = self.writer.lock();
            let _ = writer.flush();
            let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.reader_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_errors_carry_the_real_entry_id() {
        let id = EntryId {
            log_id: 6,
            offset: 2,
        };
        let err = remote_error(WireError::EntryNotFound {
            id,
            message: "entry 6/2 not found".into(),
        });
        assert!(matches!(err, CoreError::EntryNotFound(got) if got == id));
    }

    #[test]
    fn legacy_text_errors_still_dispatch_on_the_needle() {
        // Pre-structured peers send plain text; the sentinel fallback keeps
        // the variant (old behavior) even though the id is unknown.
        let err = remote_error(WireError::Generic("entry 6/2 not found".into()));
        assert!(matches!(err, CoreError::EntryNotFound(_)));
        let err = remote_error(WireError::Generic("disk on fire".into()));
        assert!(matches!(err, CoreError::Remote(_)));
    }
}
