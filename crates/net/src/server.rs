//! The node-side TCP server: exposes a [`LogService`] to remote clients.
//!
//! One thread per connection reads request frames; replies go out through a
//! per-connection writer thread so that asynchronous append replies (which
//! fire at batch-flush time, from the node's batcher thread) interleave
//! safely with synchronous read replies.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use wedge_core::LogService;

use crate::wire::{decode_request_frame, send_reply, Reply, Request};

/// A running WedgeBlock TCP endpoint. Stops (and joins its threads) on drop.
pub struct NodeServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    dropped_connections: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NodeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves `service`.
    pub fn bind(addr: &str, service: Arc<dyn LogService>) -> std::io::Result<NodeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let dropped_connections = Arc::new(AtomicU64::new(0));
        let dropped = Arc::clone(&dropped_connections);
        let accept_thread = std::thread::Builder::new()
            .name("wedge-net-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let service = Arc::clone(&service);
                            let stop = Arc::clone(&stop_flag);
                            let spawned = std::thread::Builder::new()
                                .name("wedge-net-conn".into())
                                .spawn(move || serve_connection(stream, service, stop));
                            match spawned {
                                Ok(handle) => workers.push(handle),
                                Err(_) => {
                                    // Thread spawn failed (resource
                                    // exhaustion). Shed this connection —
                                    // the stream closes on drop, the client
                                    // sees EOF and can retry — instead of
                                    // panicking the accept loop and taking
                                    // the whole endpoint down.
                                    dropped.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                    // Reap finished workers.
                    workers.retain(|w| !w.is_finished());
                }
                for worker in workers {
                    let _ = worker.join();
                }
            })
            .expect("spawn accept thread");
        Ok(NodeServer {
            local_addr,
            stop,
            dropped_connections,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections shed because their handler thread could not be spawned
    /// (resource exhaustion on the serving host).
    pub fn dropped_connections(&self) -> u64 {
        self.dropped_connections.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins the accept thread. Existing connections
    /// close once their clients hang up.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handles one client connection until EOF or shutdown.
fn serve_connection(stream: TcpStream, service: Arc<dyn LogService>, stop: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    // Reads time out periodically so the handler notices shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // All replies (sync and async) funnel through one writer thread.
    let (reply_tx, reply_rx) = unbounded::<(u64, Reply)>();
    let writer = std::thread::Builder::new()
        .name("wedge-net-writer".into())
        .spawn(move || {
            let mut w = writer_stream;
            while let Ok((req_id, reply)) = reply_rx.recv() {
                if send_reply(&mut w, req_id, &reply).is_err() {
                    break;
                }
            }
        })
        .expect("spawn writer");

    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame_interruptible(&mut reader, &stop) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean shutdown between frames
            Err(_) => break,   // EOF or protocol violation
        };
        let (req_id, request) = match decode_request_frame(&frame) {
            Ok(decoded) => decoded,
            Err(_) => break,
        };
        handle(&service, req_id, request, &reply_tx);
    }
    drop(reply_tx); // writer drains and exits
    let _ = writer.join();
}

/// Reads one length-prefixed frame. Read timeouts *between* frames are
/// shutdown-check points (returning `Ok(None)` once `stop` is set); a
/// timeout mid-frame never desynchronizes — partial bytes are retained and
/// the read resumes.
fn read_frame_interruptible(
    reader: &mut impl std::io::Read,
    stop: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !read_full(reader, &mut len_bytes, stop, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if !(9..=crate::wire::MAX_FRAME).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad frame length",
        ));
    }
    let mut frame = vec![0u8; len];
    // Mid-frame: ignore the stop flag so framing stays intact.
    read_full(reader, &mut frame, stop, false)?;
    Ok(Some(frame))
}

/// Fills `buf`, tolerating timeouts. With `abortable` set, a timeout before
/// the first byte arrives returns `Ok(false)` when `stop` is set.
fn read_full(
    reader: &mut impl std::io::Read,
    buf: &mut [u8],
    stop: &AtomicBool,
    abortable: bool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if abortable && filled == 0 && stop.load(Ordering::Relaxed) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Dispatches one request; errors become [`Reply::Error`] frames.
fn handle(
    service: &Arc<dyn LogService>,
    req_id: u64,
    request: Request,
    reply_tx: &Sender<(u64, Reply)>,
) {
    let reply = match request {
        Request::Hello => Reply::Hello {
            public_key: service.node_public_key().to_bytes(),
        },
        Request::Append(append) => {
            // Asynchronous: the callback fires at batch flush, on the
            // batcher thread, and routes through the writer channel.
            let tx = reply_tx.clone();
            let outcome = service.submit_request(
                append,
                Box::new(move |result| {
                    let reply = match result {
                        Ok(response) => Reply::Response(response),
                        Err(message) => Reply::Error(message),
                    };
                    let _ = tx.send((req_id, reply));
                }),
            );
            match outcome {
                Ok(()) => return, // reply comes later
                Err(e) => Reply::Error(e.to_string()),
            }
        }
        Request::Read(id) => match service.read_entry(id) {
            Ok(response) => Reply::Response(response),
            Err(e) => Reply::Error(e.to_string()),
        },
        Request::ReadSeq(publisher, sequence) => {
            match service.read_entry_by_sequence(publisher, sequence) {
                Ok(response) => Reply::Response(response),
                Err(e) => Reply::Error(e.to_string()),
            }
        }
        Request::ReadPosition(log_id) => match service.read_position(log_id) {
            Ok(responses) => Reply::Responses(responses),
            Err(e) => Reply::Error(e.to_string()),
        },
        Request::ReadMany(ids) => Reply::ManyResults(
            service
                .read_entries(&ids)
                .into_iter()
                .map(|r| r.map_err(|e| e.to_string()))
                .collect(),
        ),
        Request::Scan {
            log_id,
            start,
            count,
        } => match service.scan(log_id, start, count) {
            Ok((leaves, proof, root)) => Reply::Scan {
                leaves,
                proof,
                root,
            },
            Err(e) => Reply::Error(e.to_string()),
        },
        Request::Meta { log_id } => {
            // One `meta` call so the three values come from one snapshot.
            let (positions, entries, position_len) = service.meta(log_id);
            Reply::Meta {
                positions,
                entries,
                position_len,
            }
        }
    };
    let _ = reply_tx.send((req_id, reply));
}
