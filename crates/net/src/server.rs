//! The node-side TCP server: a fixed-size connection worker pool with
//! coalescing writers and pooled frame buffers.
//!
//! Topology: one blocking accept thread feeds accepted sockets into a
//! bounded channel; `workers` persistent (reader, writer) thread pairs take
//! connections from it, so serving a connection costs no thread spawn. The
//! reader parses request frames into pooled buffers and dispatches them;
//! all replies — synchronous reads and asynchronous append callbacks alike
//! — go through a **bounded** per-session reply queue to the pair's
//! coalescing writer, which drains every ready reply into one pooled
//! egress buffer and ships the batch in a single socket write. When a
//! client stops draining and its queue stays full, synchronous replies are
//! shed ([`NetStats::queue_shed`]) instead of growing node memory, while an
//! undeliverable **append** reply kills the connection after a bounded
//! grace period ([`NetStats::slow_client_kills`]) — append callers block
//! without a timeout, so they must see a reply or a dead socket, never
//! silence. Healthy connections on other worker pairs are unaffected.
//!
//! The reply-release rule from the durability plane is preserved: replies
//! reach this layer only after the entry is durable, and this layer only
//! ever delays or drops them — it never invents one.

use std::io::Write as _;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, SendTimeoutError, Sender, TrySendError};
use wedge_core::LogService;

use crate::buffer::BufferPool;
use crate::stats::{NetCounters, NetStats};
use crate::wire::{decode_request_frame, encode_reply_into, Reply, Request, WireError};

/// Tuning for [`NodeServer`]. The defaults suit tests and production; the
/// bench pins individual fields to compare the old and new write paths in
/// one run.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection worker pairs (one reader + one writer thread each).
    /// `0` means one pair per available core, clamped to `[8, 16]` — the
    /// floor guarantees a default server can host a default-sized
    /// [`crate::RemoteNodePool`] (4 stripes) with headroom even on small
    /// machines, since a connection beyond the pool waits for a pair to
    /// free up.
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker pair; beyond
    /// this the accept loop sheds the connection.
    pub pending_connections: usize,
    /// Depth of each session's bounded reply queue. When a client stops
    /// draining and the queue stays full, synchronous replies are shed;
    /// append replies kill the connection after [`ServerConfig::append_reply_grace`].
    pub reply_queue_depth: usize,
    /// How long an append reply may wait for queue space before the
    /// connection is declared dead and killed. Appends cannot be silently
    /// shed (the client blocks on them without a timeout), so this bounds
    /// both the batcher-thread stall and the client's worst-case hang.
    pub append_reply_grace: Duration,
    /// Maximum replies coalesced into one socket write. `1` restores the
    /// old write-per-reply behavior.
    pub coalesce_max_replies: usize,
    /// Soft cap on a coalesced egress batch, in bytes.
    pub coalesce_max_bytes: usize,
    /// Frame buffers retained by the shared pool. `0` disables pooling
    /// (every acquisition allocates).
    pub pool_max_buffers: usize,
    /// Buffers grown beyond this many bytes are not returned to the pool.
    pub pool_max_retained: usize,
    /// A writer stalled on one socket write longer than this kills the
    /// connection instead of holding its worker pair hostage.
    pub write_stall_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            pending_connections: 128,
            reply_queue_depth: 1024,
            append_reply_grace: Duration::from_millis(250),
            coalesce_max_replies: 64,
            coalesce_max_bytes: 1 << 20,
            pool_max_buffers: 64,
            pool_max_retained: 1 << 20,
            write_stall_timeout: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
            .clamp(8, 16)
    }
}

/// State shared by the accept loop, the worker pairs, and the handle.
struct ServerShared {
    service: Arc<dyn LogService>,
    stop: AtomicBool,
    counters: NetCounters,
    pool: BufferPool,
    config: ServerConfig,
}

/// One connection handed from a reader worker to its writer mate.
struct WriterSession {
    stream: TcpStream,
    reply_rx: Receiver<(u64, Reply)>,
}

/// The reply-delivery side of one session, shared with every pending append
/// callback. Besides the bounded queue it carries a kill handle: an append
/// reply that cannot be queued within the grace period kills the connection
/// (see [`deliver_append`]) instead of being silently shed.
struct SessionSender {
    tx: Sender<(u64, Reply)>,
    /// Socket handle used only to shut the connection down.
    kill: TcpStream,
    /// Set once the session has been killed; later replies drop instantly
    /// instead of waiting out the grace period again.
    dead: AtomicBool,
}

/// A running WedgeBlock TCP endpoint. Stops (and joins its threads) on drop.
pub struct NodeServer {
    local_addr: SocketAddr,
    listener: TcpListener,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NodeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves `service`
    /// with the default [`ServerConfig`].
    pub fn bind(addr: &str, service: Arc<dyn LogService>) -> std::io::Result<NodeServer> {
        NodeServer::bind_with_config(addr, service, ServerConfig::default())
    }

    /// Binds with explicit tuning.
    pub fn bind_with_config(
        addr: &str,
        service: Arc<dyn LogService>,
        config: ServerConfig,
    ) -> std::io::Result<NodeServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let accept_listener = listener.try_clone()?;
        let shared = Arc::new(ServerShared {
            service,
            stop: AtomicBool::new(false),
            counters: NetCounters::default(),
            pool: BufferPool::new(config.pool_max_buffers, config.pool_max_retained),
            config: config.clone(),
        });
        let (conn_tx, conn_rx) = bounded::<TcpStream>(config.pending_connections.max(1));
        let mut workers = Vec::new();
        for i in 0..config.effective_workers() {
            let (session_tx, session_rx) = bounded::<WriterSession>(1);
            let (ack_tx, ack_rx) = bounded::<()>(1);
            let writer_shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("wedge-net-writer-{i}"))
                    .spawn(move || writer_worker(session_rx, ack_tx, writer_shared))?,
            );
            let reader_shared = Arc::clone(&shared);
            let reader_rx = conn_rx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("wedge-net-conn-{i}"))
                    .spawn(move || reader_worker(reader_rx, session_tx, ack_rx, reader_shared))?,
            );
        }
        drop(conn_rx);
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("wedge-net-accept".into())
            .spawn(move || accept_loop(accept_listener, conn_tx, accept_shared))?;
        Ok(NodeServer {
            local_addr,
            listener,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the RPC-plane counters.
    pub fn stats(&self) -> NetStats {
        self.shared.counters.snapshot(&self.shared.pool)
    }

    /// Connections shed because every worker pair was busy and the pending
    /// queue was full.
    pub fn dropped_connections(&self) -> u64 {
        self.shared
            .counters
            .connections_shed
            .load(Ordering::Relaxed)
    }

    /// Stops accepting and joins all server threads. Sessions mid-flight
    /// notice the stop flag at their next read-timeout check point.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // The accept thread blocks in `accept()`. Flipping the listener to
        // non-blocking only affects *future* accept calls — on Linux it
        // does not interrupt one already parked — so the wake connection
        // below is load-bearing, and it is retried: a single failed
        // connect (transient SYN-queue pressure, odd routing) must not
        // wedge shutdown/Drop on an unjoinable thread forever.
        let _ = self.listener.set_nonblocking(true);
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let mut woken = false;
        for attempt in 0..5 {
            if TcpStream::connect_timeout(&wake, Duration::from_millis(200)).is_ok() {
                woken = true;
                break;
            }
            if attempt + 1 < 5 {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        if !woken {
            // The host cannot reach its own listener: the accept thread may
            // still be parked, and joining it (or the workers fed by its
            // channel) could hang forever. Detach instead — the threads die
            // with the process; a wedged Drop would take the caller with
            // them.
            self.accept_thread.take();
            self.workers.drain(..);
            return;
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // The accept loop owned `conn_tx`; its exit disconnects the reader
        // workers, whose exits disconnect their writer mates.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections and feeds them to the worker pool, shedding when the
/// pending queue is full. Blocking accept: no sleep-poll, so connection
/// establishment costs no added latency.
fn accept_loop(listener: TcpListener, conn_tx: Sender<TcpStream>, shared: Arc<ServerShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stop.load(Ordering::Relaxed) {
                    break; // the shutdown wake-up connection
                }
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Every worker busy and the backlog full: shed.
                        // The client sees EOF and can retry.
                        shared
                            .counters
                            .connections_shed
                            .fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Only reachable after shutdown flipped the listener to
                // non-blocking.
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                // lint: allow(blocking) — shutdown-only drain poll: the listener is non-blocking here and no client traffic flows any more
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// A persistent reader worker: serves connections from the queue, one at a
/// time, handing each session's write half to its dedicated writer mate.
fn reader_worker(
    conn_rx: Receiver<TcpStream>,
    session_tx: Sender<WriterSession>,
    ack_rx: Receiver<()>,
    shared: Arc<ServerShared>,
) {
    while let Ok(stream) = conn_rx.recv() {
        shared.counters.connection_opened();
        serve_session(stream, &session_tx, &ack_rx, &shared);
        shared.counters.connection_closed();
    }
}

/// Serves one connection until EOF, protocol violation, or shutdown.
fn serve_session(
    stream: TcpStream,
    session_tx: &Sender<WriterSession>,
    ack_rx: &Receiver<()>,
    shared: &Arc<ServerShared>,
) {
    let _ = stream.set_nodelay(true);
    // Reads time out periodically so the session notices shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let kill_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = writer_stream.set_write_timeout(Some(shared.config.write_stall_timeout));
    // The bounded reply queue: sync reads and async append callbacks all
    // funnel through it to the coalescing writer.
    let (reply_tx, reply_rx) = bounded::<(u64, Reply)>(shared.config.reply_queue_depth.max(1));
    // Handing the write half to the writer mate closes a bounded(1) ring
    // (session out, ack back), but the pair runs in strict lockstep: this
    // thread never sends a second session before draining the previous ack
    // (`ack_rx.recv()` below), so neither queue can be full at a send.
    // `crates/check`'s slow-client model explores this handoff exhaustively.
    if session_tx
        // lint: allow(chan) — session/ack pair alternates in strict lockstep; one session in flight, ack drained before the next send
        .send(WriterSession {
            stream: writer_stream,
            reply_rx,
        })
        .is_err()
    {
        return; // writer mate gone: shutdown in progress
    }
    let session = Arc::new(SessionSender {
        tx: reply_tx,
        kill: kill_stream,
        dead: AtomicBool::new(false),
    });
    let mut reader = std::io::BufReader::new(stream);
    loop {
        let mut frame = shared.pool.get();
        match read_frame_interruptible(&mut reader, &shared.stop, &mut frame) {
            Ok(true) => {}
            Ok(false) | Err(_) => break, // shutdown, EOF, or violation
        }
        shared.counters.frames_rx.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .rx_bytes
            .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
        let (req_id, request) = match decode_request_frame(&frame) {
            Ok(decoded) => decoded,
            Err(_) => break,
        };
        // The decoded request owns its data; return the rx buffer to the
        // pool before dispatching.
        drop(frame);
        handle(shared, req_id, request, &session);
    }
    drop(session);
    // The writer exits once every reply sender — including clones held by
    // pending append callbacks — has dropped, so no durable reply that can
    // still be delivered is abandoned. Its ack bounds the session.
    let _ = ack_rx.recv();
}

/// A persistent writer worker: runs the coalescing writer for each session
/// its reader mate hands over, acking completion in between.
fn writer_worker(
    session_rx: Receiver<WriterSession>,
    ack_tx: Sender<()>,
    shared: Arc<ServerShared>,
) {
    while let Ok(session) = session_rx.recv() {
        run_coalescing_writer(session, &shared);
        // lint: allow(chan) — ack half of the strictly-alternating session/ack ring; the reader drained the previous ack before this session existed
        if ack_tx.send(()).is_err() {
            break;
        }
    }
}

/// Drains the session's reply queue: every ready reply is encoded into one
/// pooled egress buffer and the batch ships in a single socket write.
fn run_coalescing_writer(session: WriterSession, shared: &ServerShared) {
    let WriterSession {
        mut stream,
        reply_rx,
    } = session;
    let max_replies = shared.config.coalesce_max_replies.max(1) as u64;
    let max_bytes = shared.config.coalesce_max_bytes.max(1);
    // recv() returns Err only once the reader and every pending append
    // callback have dropped their senders — the session is over.
    'session: while let Ok((req_id, reply)) = reply_rx.recv() {
        let mut batch = shared.pool.get();
        // An oversized reply cannot be framed for this peer: count it and
        // tear the session down — but only after flushing whatever was
        // already encoded into the batch, so durable replies queued ahead
        // of the bad one still reach the peer. `encode_reply_into` rolls
        // the buffer back on failure, so the batch stays frame-aligned.
        let mut fatal_encode = false;
        let mut encoded = 0u64;
        if encode_reply_into(&mut batch, req_id, &reply).is_err() {
            shared
                .counters
                .encode_failures
                .fetch_add(1, Ordering::Relaxed);
            fatal_encode = true;
        } else {
            encoded = 1;
            while encoded < max_replies && batch.len() < max_bytes {
                match reply_rx.try_recv() {
                    Ok((id, next)) => {
                        if encode_reply_into(&mut batch, id, &next).is_err() {
                            shared
                                .counters
                                .encode_failures
                                .fetch_add(1, Ordering::Relaxed);
                            fatal_encode = true;
                            break;
                        }
                        encoded += 1;
                    }
                    Err(_) => break,
                }
            }
        }
        if !batch.is_empty() {
            if stream.write_all(&batch).is_err() {
                break 'session;
            }
            let c = &shared.counters;
            c.writes_issued.fetch_add(1, Ordering::Relaxed);
            c.replies_sent.fetch_add(encoded, Ordering::Relaxed);
            c.replies_coalesced
                .fetch_add(encoded.saturating_sub(1), Ordering::Relaxed);
            c.tx_bytes.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        if fatal_encode {
            break 'session;
        }
    }
    // Kill both halves so a reader blocked mid-frame on this peer notices.
    // Late replies from still-pending append callbacks hit a disconnected
    // queue once `reply_rx` drops here and are discarded: the entry is
    // already durable, the peer is gone.
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads one length-prefixed frame into `frame` (a pooled buffer). Read
/// timeouts *between* frames are shutdown-check points (returning
/// `Ok(false)` once `stop` is set); a timeout mid-frame never
/// desynchronizes — partial bytes are retained and the read resumes.
fn read_frame_interruptible(
    reader: &mut impl std::io::Read,
    stop: &AtomicBool,
    frame: &mut Vec<u8>,
) -> std::io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    if !read_full(reader, &mut len_bytes, stop, true)? {
        return Ok(false);
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if !(9..=crate::wire::MAX_FRAME).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad frame length",
        ));
    }
    frame.clear();
    frame.resize(len, 0);
    // Mid-frame: ignore the stop flag so framing stays intact.
    read_full(reader, frame, stop, false)?;
    Ok(true)
}

/// Fills `buf`, tolerating timeouts. With `abortable` set, a timeout before
/// the first byte arrives returns `Ok(false)` when `stop` is set.
fn read_full(
    reader: &mut impl std::io::Read,
    buf: &mut [u8],
    stop: &AtomicBool,
    abortable: bool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if abortable && filled == 0 && stop.load(Ordering::Relaxed) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Queues one **synchronous** reply, shedding (never blocking) when the
/// bounded queue is full — the slow-client policy. Shedding is safe here
/// because the caller blocks with its own request timeout and recovers.
fn deliver(shared: &ServerShared, session: &SessionSender, req_id: u64, reply: Reply) {
    if session.dead.load(Ordering::Relaxed) {
        return; // connection already killed
    }
    match session.tx.try_send((req_id, reply)) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.counters.queue_shed.fetch_add(1, Ordering::Relaxed);
        }
        Err(TrySendError::Disconnected(_)) => {} // session already over
    }
}

/// Queues one **append** reply. Unlike synchronous replies these must never
/// be silently shed on a live connection: the client's append continuation
/// fires only on reply or connection close (no timeout), and pooled clients
/// hold an in-flight window slot until it does — one dropped reply would
/// hang the publisher forever and leak the slot. So on queue-full the
/// batcher blocks for a bounded grace period, and if the writer still has
/// not drained, the connection is killed: the client's reader then fails
/// every pending append at once ("connection closed"), releasing all slots.
/// The `dead` flag makes the grace period a once-per-connection cost.
fn deliver_append(shared: &ServerShared, session: &SessionSender, req_id: u64, reply: Reply) {
    if session.dead.load(Ordering::Relaxed) {
        return; // connection already killed: the client has been failed
    }
    match session.tx.try_send((req_id, reply)) {
        Ok(()) => {}
        Err(TrySendError::Full(item)) => {
            match session
                .tx
                .send_timeout(item, shared.config.append_reply_grace)
            {
                Ok(()) => {}
                Err(SendTimeoutError::Timeout(_)) => {
                    session.dead.store(true, Ordering::Relaxed);
                    shared
                        .counters
                        .slow_client_kills
                        .fetch_add(1, Ordering::Relaxed);
                    // Killing both halves errors the writer's in-flight
                    // write and EOFs the client's reader, which fails all
                    // of the peer's pending callbacks.
                    let _ = session.kill.shutdown(Shutdown::Both);
                }
                Err(SendTimeoutError::Disconnected(_)) => {} // session over
            }
        }
        Err(TrySendError::Disconnected(_)) => {} // session already over
    }
}

/// Dispatches one request; errors become [`Reply::Error`] frames.
fn handle(shared: &Arc<ServerShared>, req_id: u64, request: Request, session: &Arc<SessionSender>) {
    let service = &shared.service;
    let reply = match request {
        Request::Hello => Reply::Hello {
            public_key: service.node_public_key().to_bytes(),
        },
        Request::Append(append) => {
            // Asynchronous: the callback fires at batch flush, on the
            // batcher thread, and routes through the bounded reply queue.
            // All append outcomes — including the synchronous rejection
            // below — go through `deliver_append`: a client blocked on an
            // append must get a reply or a dead connection, never silence.
            let callback_session = Arc::clone(session);
            let callback_shared = Arc::clone(shared);
            let outcome = service.submit_request(
                append,
                Box::new(move |result| {
                    let reply = match result {
                        Ok(response) => Reply::Response(response),
                        Err(message) => Reply::Error(WireError::generic(message)),
                    };
                    deliver_append(&callback_shared, &callback_session, req_id, reply);
                }),
            );
            match outcome {
                Ok(()) => return, // reply comes later
                Err(e) => {
                    let reply = Reply::Error(WireError::from_service_error(&e));
                    deliver_append(shared, session, req_id, reply);
                    return;
                }
            }
        }
        Request::Read(id) => match service.read_entry(id) {
            Ok(response) => Reply::Response(response),
            Err(e) => Reply::Error(WireError::from_service_error(&e)),
        },
        Request::ReadSeq(publisher, sequence) => {
            match service.read_entry_by_sequence(publisher, sequence) {
                Ok(response) => Reply::Response(response),
                Err(e) => Reply::Error(WireError::from_service_error(&e)),
            }
        }
        Request::ReadPosition(log_id) => match service.read_position(log_id) {
            Ok(responses) => Reply::Responses(responses),
            Err(e) => Reply::Error(WireError::from_service_error(&e)),
        },
        Request::ReadMany(ids) => Reply::ManyResults(
            service
                .read_entries(&ids)
                .into_iter()
                .map(|r| r.map_err(|e| WireError::from_service_error(&e)))
                .collect(),
        ),
        Request::Scan {
            log_id,
            start,
            count,
        } => match service.scan(log_id, start, count) {
            Ok((leaves, proof, root)) => Reply::Scan {
                leaves,
                proof,
                root,
            },
            Err(e) => Reply::Error(WireError::from_service_error(&e)),
        },
        Request::Meta { log_id } => {
            // One `meta` call so the three values come from one snapshot.
            let (positions, entries, position_len) = service.meta(log_id);
            Reply::Meta {
                positions,
                entries,
                position_len,
            }
        }
        Request::EpochReport { max_group } => match service.epoch_report(max_group as usize) {
            Ok(group) => Reply::EpochGroup(group),
            Err(e) => Reply::Error(WireError::from_service_error(&e)),
        },
        Request::EpochCommit(commit) => match service.epoch_commit(commit) {
            Ok(newly) => Reply::EpochCommitted { newly },
            Err(e) => Reply::Error(WireError::from_service_error(&e)),
        },
    };
    deliver(shared, session, req_id, reply);
}
