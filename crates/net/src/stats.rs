//! RPC-plane metrics, surfaced from [`crate::NodeServer`] the way
//! `NodeStats` is from the node.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared by the accept loop, connection workers, and
/// coalescing writers. Snapshot with [`NetCounters::snapshot`].
#[derive(Debug, Default)]
pub(crate) struct NetCounters {
    pub connections_accepted: AtomicU64,
    pub connections_shed: AtomicU64,
    pub active_connections: AtomicU64,
    pub peak_connections: AtomicU64,
    pub frames_rx: AtomicU64,
    pub rx_bytes: AtomicU64,
    pub tx_bytes: AtomicU64,
    pub replies_sent: AtomicU64,
    pub replies_coalesced: AtomicU64,
    pub writes_issued: AtomicU64,
    pub queue_shed: AtomicU64,
    pub slow_client_kills: AtomicU64,
    pub encode_failures: AtomicU64,
}

impl NetCounters {
    /// Registers a newly served connection, maintaining the peak.
    pub(crate) fn connection_opened(&self) {
        let now = self.active_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    /// Registers a finished connection.
    pub(crate) fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Copies every counter into an owned snapshot, folding in the buffer
    /// pool's hit/miss counts.
    pub(crate) fn snapshot(&self, pool: &crate::buffer::BufferPool) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            replies_sent: self.replies_sent.load(Ordering::Relaxed),
            replies_coalesced: self.replies_coalesced.load(Ordering::Relaxed),
            writes_issued: self.writes_issued.load(Ordering::Relaxed),
            queue_shed: self.queue_shed.load(Ordering::Relaxed),
            slow_client_kills: self.slow_client_kills.load(Ordering::Relaxed),
            encode_failures: self.encode_failures.load(Ordering::Relaxed),
            buffer_pool_hits: pool.hits(),
            buffer_pool_misses: pool.misses(),
        }
    }
}

/// A point-in-time snapshot of the server's RPC-plane counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted by the listener.
    pub connections_accepted: u64,
    /// Accepted connections shed because the pending-connection queue was
    /// full (every worker busy and the backlog at capacity).
    pub connections_shed: u64,
    /// Connections currently being served.
    pub active_connections: u64,
    /// High-water mark of concurrently served connections.
    pub peak_connections: u64,
    /// Request frames received (all kinds).
    pub frames_rx: u64,
    /// Bytes received, including frame headers.
    pub rx_bytes: u64,
    /// Bytes written, including frame headers.
    pub tx_bytes: u64,
    /// Reply frames written to sockets.
    pub replies_sent: u64,
    /// Replies that shared a socket write with a predecessor — for each
    /// coalesced batch of `n` replies, `n - 1` are counted here.
    pub replies_coalesced: u64,
    /// Socket writes issued by the coalescing writers. Under load this is
    /// strictly less than `replies_sent`.
    pub writes_issued: u64,
    /// Synchronous replies dropped because a connection's bounded reply
    /// queue was full (the slow-client shedding policy). Append replies are
    /// never counted here: an undeliverable append reply kills the
    /// connection instead ([`NetStats::slow_client_kills`]).
    pub queue_shed: u64,
    /// Connections killed because an append reply could not be queued
    /// within the grace period. Append replies must never be silently shed
    /// on a live connection — the client blocks on them with no timeout and
    /// holds an in-flight window slot until one arrives — so the server
    /// fails the whole connection, which fails every pending append on the
    /// client at once.
    pub slow_client_kills: u64,
    /// Replies dropped because they failed to encode (oversized frame).
    /// The connection is torn down afterwards, but replies already encoded
    /// into the same batch are flushed first.
    pub encode_failures: u64,
    /// Frame-buffer acquisitions served from the pool.
    pub buffer_pool_hits: u64,
    /// Frame-buffer acquisitions that had to allocate.
    pub buffer_pool_misses: u64,
}

impl NetStats {
    /// Fraction of buffer acquisitions served from the pool, in `[0, 1]`.
    pub fn buffer_pool_hit_rate(&self) -> f64 {
        let total = self.buffer_pool_hits + self.buffer_pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.buffer_pool_hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut s = NetStats::default();
        assert_eq!(s.buffer_pool_hit_rate(), 0.0);
        s.buffer_pool_hits = 3;
        s.buffer_pool_misses = 1;
        assert!((s.buffer_pool_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let c = NetCounters::default();
        c.connection_opened();
        c.connection_opened();
        c.connection_closed();
        c.connection_opened();
        let pool = crate::buffer::BufferPool::new(0, 0);
        let snap = c.snapshot(&pool);
        assert_eq!(snap.active_connections, 2);
        assert_eq!(snap.peak_connections, 2);
    }
}
