//! A shared pool of reusable byte buffers for frame I/O.
//!
//! The pre-pool RPC plane allocated a fresh `Vec<u8>` for every inbound
//! frame and every encoded reply. Under load that is one allocator
//! round-trip per message in both directions. [`BufferPool`] keeps a small
//! free list of cleared buffers: `get` hands out a pooled buffer (hit) or
//! allocates one (miss), and dropping the [`PooledBuf`] returns the
//! allocation to the pool — unless it grew past the retention cap, in
//! which case it is released so one pathological frame cannot pin a huge
//! allocation forever.
//!
//! Hit/miss counters are kept on the pool itself; `NodeServer` surfaces
//! them through `NetStats` as the buffer-pool hit rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Shared buffer pool. Cloning shares the same free list and counters.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    /// Maximum buffers kept on the free list.
    max_pooled: usize,
    /// Buffers whose capacity grew beyond this are dropped on return.
    max_retained_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Creates a pool retaining at most `max_pooled` buffers, each of at
    /// most `max_retained_capacity` bytes. A `max_pooled` of 0 disables
    /// pooling entirely (every `get` is a miss) — useful for A/B runs.
    pub fn new(max_pooled: usize, max_retained_capacity: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                max_pooled,
                max_retained_capacity,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Takes a cleared buffer from the pool, or allocates one.
    pub fn get(&self) -> PooledBuf {
        let reused = self.inner.free.lock().pop();
        let buf = match reused {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        PooledBuf {
            buf,
            pool: Arc::clone(&self.inner),
        }
    }

    /// Pool acquisitions served from the free list.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Pool acquisitions that had to allocate.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }
}

/// A buffer on loan from a [`BufferPool`]. Dereferences to `Vec<u8>`;
/// returns its allocation to the pool on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<PoolInner>,
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > self.pool.max_retained_capacity {
            return;
        }
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let mut free = self.pool.free.lock();
        if free.len() < self.pool.max_pooled {
            free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_returned_buffers() {
        let pool = BufferPool::new(4, 1 << 20);
        {
            let mut a = pool.get();
            a.extend_from_slice(b"hello");
        } // returned cleared
        let b = pool.get();
        assert!(b.is_empty());
        assert!(b.capacity() >= 5, "capacity not retained");
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new(4, 16);
        {
            let mut a = pool.get();
            a.extend_from_slice(&[0u8; 1024]);
        }
        let b = pool.get();
        // The 1 KiB buffer was dropped, so this is a fresh allocation.
        assert_eq!(pool.misses(), 2);
        drop(b);
    }

    #[test]
    fn zero_capacity_pool_never_pools() {
        let pool = BufferPool::new(0, 1 << 20);
        {
            let mut a = pool.get();
            a.push(1);
        }
        let _ = pool.get();
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 2);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::new(1, 1 << 20);
        let mut a = pool.get();
        let mut b = pool.get();
        a.push(1);
        b.push(2);
        drop(a);
        drop(b); // free list already holds one buffer; b is released
        let c = pool.get();
        assert!(c.capacity() > 0, "retained buffer should be reused");
        // While the retained buffer is out on loan, a second get must miss:
        // only one buffer was kept.
        let _d = pool.get();
        assert_eq!(pool.misses(), 3);
    }
}
