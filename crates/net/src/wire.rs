//! The wire protocol: length-prefixed frames carrying canonical-encoded
//! messages.
//!
//! Frame layout: `len (u32 BE) || kind (u8) || req_id (u64 BE) || body`.
//! Every client message carries a `req_id` the server echoes, so replies —
//! including append replies, which arrive asynchronously at batch-flush
//! time — can be routed back to their callers over one multiplexed
//! connection.
//!
//! Frames are built in one contiguous buffer and shipped with a single
//! `write_all` (the pre-coalescing path issued four). The
//! [`encode_request_into`]/[`encode_reply_into`] entry points append a
//! complete frame to a caller-supplied buffer, so pooled allocations can be
//! reused across frames and several replies can share one egress buffer.
//! The on-wire bytes are unchanged — `tests/wire_compat.rs` proves both
//! directions against a replica of the old encoder.

use std::io::{self, Read, Write};

use wedge_chain::{Decoder, Encoder};
use wedge_core::{AppendRequest, CoreError, EntryId, EpochCommit, ShardGroup, SignedResponse};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_merkle::RangeProof;

/// Maximum accepted frame size (guards against hostile length prefixes).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Client → server messages.
#[derive(Debug)]
pub enum Request {
    /// Fetch the node's public key and log shape.
    Hello,
    /// Submit one append request.
    Append(AppendRequest),
    /// Read one entry.
    Read(EntryId),
    /// Read by `(publisher, sequence)`.
    ReadSeq(Address, u64),
    /// Read a group of entries in one round trip.
    ReadMany(Vec<EntryId>),
    /// Read a whole log position.
    ReadPosition(u64),
    /// Range scan with multiproof.
    Scan {
        /// Log position.
        log_id: u64,
        /// First offset.
        start: u32,
        /// Entries to scan.
        count: u32,
    },
    /// Log shape: positions, entries, and one position's length.
    Meta {
        /// Position whose length to report (`u64::MAX` for none).
        log_id: u64,
    },
    /// Cluster epoch collection: ask the shard for its pending batch-root
    /// group (coordinator → shard).
    EpochReport {
        /// Maximum roots to report.
        max_group: u64,
    },
    /// Cluster epoch acknowledgement: the reported group is covered by a
    /// confirmed root-of-roots transaction (coordinator → shard).
    EpochCommit(EpochCommit),
}

/// Server → client messages.
#[derive(Debug)]
pub enum Reply {
    /// Hello reply: node public key (uncompressed) + shape.
    Hello {
        /// The node's public key bytes.
        public_key: [u8; 64],
    },
    /// A signed response (append/read/read-seq).
    Response(SignedResponse),
    /// A batch of signed responses (read-position).
    Responses(Vec<SignedResponse>),
    /// Per-entry results of a `ReadMany`.
    ManyResults(Vec<Result<SignedResponse, WireError>>),
    /// A range scan result.
    Scan {
        /// The raw leaves.
        leaves: Vec<Vec<u8>>,
        /// The multiproof.
        proof: RangeProof,
        /// The position's root.
        root: Hash32,
    },
    /// Log shape.
    Meta {
        /// Flushed log positions.
        positions: u64,
        /// Total entries.
        entries: u64,
        /// Length of the requested position, or `None` when it does not
        /// exist. Encoded as an explicit presence flag on the wire — an
        /// in-band `u32::MAX` sentinel would be indistinguishable from a
        /// real (capped) length.
        position_len: Option<u32>,
    },
    /// The shard's pending batch-root group.
    EpochGroup(ShardGroup),
    /// Epoch acknowledgement applied: newly committed position count.
    EpochCommitted {
        /// Positions newly marked blockchain-committed.
        newly: u64,
    },
    /// The operation failed.
    Error(WireError),
}

/// A remote failure, carried inside the `R_ERROR` (and `R_MANY` error-arm)
/// message byte string.
///
/// The encoding is backward and forward compatible with the plain-text
/// errors of earlier peers: a generic error is the raw UTF-8 message —
/// byte-identical to the old format — while structured errors start with a
/// `0x00` byte (which cannot open legitimate UTF-8 error text) followed by
/// a code byte and fixed-width fields, then the human-readable message.
/// Old clients that lossily decode the whole byte string still see the
/// message text (including the `"not found"` needle they dispatch on); new
/// clients recover the real [`EntryId`] instead of fabricating a sentinel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// An uncategorized failure, carried as text.
    Generic(String),
    /// The requested entry does not exist.
    EntryNotFound {
        /// The id the failing request named.
        id: EntryId,
        /// Human-readable description.
        message: String,
    },
}

/// Structured-error escape byte: legitimate UTF-8 error text never starts
/// with NUL.
const ERR_ESCAPE: u8 = 0x00;
/// Structured code: generic message that happens to start with NUL.
const ERR_CODE_GENERIC: u8 = 0x00;
/// Structured code: entry not found, fields `log_id u64 BE || offset u32 BE`.
const ERR_CODE_NOT_FOUND: u8 = 0x01;

impl WireError {
    /// Builds a generic (text-only) error.
    pub fn generic(message: impl Into<String>) -> WireError {
        WireError::Generic(message.into())
    }

    /// Maps a service-side error, preserving structure where the protocol
    /// has a code for it.
    pub fn from_service_error(e: &CoreError) -> WireError {
        match e {
            CoreError::EntryNotFound(id) => WireError::EntryNotFound {
                id: *id,
                message: e.to_string(),
            },
            other => WireError::Generic(other.to_string()),
        }
    }

    /// The message byte string carried on the wire.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        match self {
            WireError::Generic(message) => {
                if message.as_bytes().first() == Some(&ERR_ESCAPE) {
                    // Defensive: escape a message that would otherwise be
                    // mistaken for a structured error.
                    let mut out = Vec::with_capacity(2 + message.len());
                    out.push(ERR_ESCAPE);
                    out.push(ERR_CODE_GENERIC);
                    out.extend_from_slice(message.as_bytes());
                    out
                } else {
                    message.as_bytes().to_vec()
                }
            }
            WireError::EntryNotFound { id, message } => {
                let mut out = Vec::with_capacity(14 + message.len());
                out.push(ERR_ESCAPE);
                out.push(ERR_CODE_NOT_FOUND);
                out.extend_from_slice(&id.log_id.to_be_bytes());
                out.extend_from_slice(&id.offset.to_be_bytes());
                out.extend_from_slice(message.as_bytes());
                out
            }
        }
    }

    /// Parses a message byte string. Unknown structured codes and malformed
    /// field blocks degrade to [`WireError::Generic`] with the lossy text,
    /// so a newer peer never makes an older one error out.
    pub fn from_wire_bytes(bytes: &[u8]) -> WireError {
        let fallback = || WireError::Generic(String::from_utf8_lossy(bytes).into_owned());
        if bytes.first() != Some(&ERR_ESCAPE) {
            return fallback();
        }
        match bytes.get(1) {
            Some(&ERR_CODE_GENERIC) => WireError::Generic(
                String::from_utf8_lossy(bytes.get(2..).unwrap_or(&[])).into_owned(),
            ),
            Some(&ERR_CODE_NOT_FOUND) => {
                let (Some(log_bytes), Some(off_bytes)) = (bytes.get(2..10), bytes.get(10..14))
                else {
                    return fallback();
                };
                let mut log = [0u8; 8];
                log.copy_from_slice(log_bytes);
                let mut off = [0u8; 4];
                off.copy_from_slice(off_bytes);
                WireError::EntryNotFound {
                    id: EntryId {
                        log_id: u64::from_be_bytes(log),
                        offset: u32::from_be_bytes(off),
                    },
                    message: String::from_utf8_lossy(bytes.get(14..).unwrap_or(&[])).into_owned(),
                }
            }
            _ => fallback(),
        }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Generic(message) => f.write_str(message),
            WireError::EntryNotFound { id, message } => {
                if message.is_empty() {
                    write!(f, "entry {id} not found")
                } else {
                    f.write_str(message)
                }
            }
        }
    }
}

impl From<String> for WireError {
    fn from(message: String) -> WireError {
        WireError::Generic(message)
    }
}

mod kind {
    pub const HELLO: u8 = 0x01;
    pub const APPEND: u8 = 0x02;
    pub const READ: u8 = 0x03;
    pub const READ_SEQ: u8 = 0x04;
    pub const READ_POSITION: u8 = 0x05;
    pub const READ_MANY: u8 = 0x08;
    pub const SCAN: u8 = 0x06;
    pub const META: u8 = 0x07;
    pub const EPOCH_REPORT: u8 = 0x09;
    pub const EPOCH_COMMIT: u8 = 0x0A;

    pub const R_HELLO: u8 = 0x81;
    pub const R_RESPONSE: u8 = 0x82;
    pub const R_RESPONSES: u8 = 0x83;
    pub const R_SCAN: u8 = 0x84;
    pub const R_META: u8 = 0x85;
    pub const R_MANY: u8 = 0x86;
    pub const R_EPOCH_GROUP: u8 = 0x87;
    pub const R_EPOCH_COMMITTED: u8 = 0x88;
    pub const R_ERROR: u8 = 0xFF;
}

fn io_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Encodes a range proof for the wire.
fn encode_range_proof(enc: &mut Encoder, proof: &RangeProof) {
    enc.u64(proof.start).u64(proof.count).u64(proof.leaf_count);
    enc.u64(proof.siblings.len() as u64);
    for sibling in &proof.siblings {
        enc.bytes(sibling.as_bytes());
    }
}

fn decode_range_proof(dec: &mut Decoder<'_>) -> io::Result<RangeProof> {
    let start = dec.u64().map_err(|_| io_err("proof.start"))?;
    let count = dec.u64().map_err(|_| io_err("proof.count"))?;
    let leaf_count = dec.u64().map_err(|_| io_err("proof.leaf_count"))?;
    let n = dec.u64().map_err(|_| io_err("proof.siblings"))?;
    if n > dec.remaining() as u64 {
        return Err(io_err("sibling count exceeds frame"));
    }
    let mut siblings = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let h: [u8; 32] = dec.bytes_fixed().map_err(|_| io_err("sibling"))?;
        siblings.push(Hash32(h));
    }
    Ok(RangeProof {
        start,
        count,
        leaf_count,
        siblings,
    })
}

impl Request {
    /// Encodes the body into `enc`, returning the frame kind.
    fn encode_body(&self, enc: &mut Encoder) -> u8 {
        match self {
            Request::Hello => kind::HELLO,
            Request::Append(request) => {
                enc.bytes(&request.leaf_bytes());
                kind::APPEND
            }
            Request::Read(id) => {
                enc.u64(id.log_id).u64(id.offset as u64);
                kind::READ
            }
            Request::ReadSeq(addr, seq) => {
                enc.bytes(addr.as_bytes()).u64(*seq);
                kind::READ_SEQ
            }
            Request::ReadPosition(log_id) => {
                enc.u64(*log_id);
                kind::READ_POSITION
            }
            Request::ReadMany(ids) => {
                enc.u64(ids.len() as u64);
                for id in ids {
                    enc.u64(id.log_id).u64(id.offset as u64);
                }
                kind::READ_MANY
            }
            Request::Scan {
                log_id,
                start,
                count,
            } => {
                enc.u64(*log_id).u64(*start as u64).u64(*count as u64);
                kind::SCAN
            }
            Request::Meta { log_id } => {
                enc.u64(*log_id);
                kind::META
            }
            Request::EpochReport { max_group } => {
                enc.u64(*max_group);
                kind::EPOCH_REPORT
            }
            Request::EpochCommit(commit) => {
                enc.u64(commit.epoch)
                    .u64(commit.start)
                    .u64(commit.count)
                    .bytes(commit.tx_hash.as_bytes())
                    .u64(commit.block_number);
                kind::EPOCH_COMMIT
            }
        }
    }

    /// Decodes from kind + body.
    fn decode(kind: u8, body: &[u8]) -> io::Result<Request> {
        let mut dec = Decoder::new(body);
        let request = match kind {
            kind::HELLO => Request::Hello,
            kind::APPEND => {
                let leaf = dec.bytes().map_err(|_| io_err("append leaf"))?;
                let request =
                    AppendRequest::from_leaf_bytes(leaf).map_err(|_| io_err("append request"))?;
                Request::Append(request)
            }
            kind::READ => Request::Read(EntryId {
                log_id: dec.u64().map_err(|_| io_err("log_id"))?,
                offset: dec.u64().map_err(|_| io_err("offset"))? as u32,
            }),
            kind::READ_SEQ => {
                let addr: [u8; 20] = dec.bytes_fixed().map_err(|_| io_err("addr"))?;
                let seq = dec.u64().map_err(|_| io_err("seq"))?;
                Request::ReadSeq(Address(addr), seq)
            }
            kind::READ_POSITION => Request::ReadPosition(dec.u64().map_err(|_| io_err("log_id"))?),
            kind::READ_MANY => {
                let n = dec.u64().map_err(|_| io_err("count"))?;
                if n > 1_000_000 {
                    return Err(io_err("read-many too large"));
                }
                let mut ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ids.push(EntryId {
                        log_id: dec.u64().map_err(|_| io_err("log_id"))?,
                        offset: dec.u64().map_err(|_| io_err("offset"))? as u32,
                    });
                }
                Request::ReadMany(ids)
            }
            kind::SCAN => Request::Scan {
                log_id: dec.u64().map_err(|_| io_err("log_id"))?,
                start: dec.u64().map_err(|_| io_err("start"))? as u32,
                count: dec.u64().map_err(|_| io_err("count"))? as u32,
            },
            kind::META => Request::Meta {
                log_id: dec.u64().map_err(|_| io_err("log_id"))?,
            },
            kind::EPOCH_REPORT => Request::EpochReport {
                max_group: dec.u64().map_err(|_| io_err("max_group"))?,
            },
            kind::EPOCH_COMMIT => {
                let epoch = dec.u64().map_err(|_| io_err("epoch"))?;
                let start = dec.u64().map_err(|_| io_err("start"))?;
                let count = dec.u64().map_err(|_| io_err("count"))?;
                let tx: [u8; 32] = dec.bytes_fixed().map_err(|_| io_err("tx_hash"))?;
                let block_number = dec.u64().map_err(|_| io_err("block"))?;
                Request::EpochCommit(EpochCommit {
                    epoch,
                    start,
                    count,
                    tx_hash: Hash32(tx),
                    block_number,
                })
            }
            other => return Err(io_err(&format!("unknown request kind 0x{other:02x}"))),
        };
        dec.finish().map_err(|_| io_err("trailing bytes"))?;
        Ok(request)
    }
}

impl Reply {
    /// Encodes the body into `enc`, returning the frame kind.
    fn encode_body(&self, enc: &mut Encoder) -> u8 {
        match self {
            Reply::Hello { public_key } => {
                enc.bytes(public_key);
                kind::R_HELLO
            }
            Reply::Response(response) => {
                enc.bytes(&response.to_bytes());
                kind::R_RESPONSE
            }
            Reply::Responses(responses) => {
                enc.u64(responses.len() as u64);
                for response in responses {
                    enc.bytes(&response.to_bytes());
                }
                kind::R_RESPONSES
            }
            Reply::ManyResults(results) => {
                enc.u64(results.len() as u64);
                for result in results {
                    match result {
                        Ok(response) => {
                            enc.u8(1).bytes(&response.to_bytes());
                        }
                        Err(error) => {
                            enc.u8(0).bytes(&error.to_wire_bytes());
                        }
                    }
                }
                kind::R_MANY
            }
            Reply::Scan {
                leaves,
                proof,
                root,
            } => {
                enc.u64(leaves.len() as u64);
                for leaf in leaves {
                    enc.bytes(leaf);
                }
                encode_range_proof(enc, proof);
                enc.bytes(root.as_bytes());
                kind::R_SCAN
            }
            Reply::Meta {
                positions,
                entries,
                position_len,
            } => {
                enc.u64(*positions).u64(*entries);
                match position_len {
                    Some(len) => enc.u8(1).u64(*len as u64),
                    None => enc.u8(0),
                };
                kind::R_META
            }
            Reply::EpochGroup(group) => {
                enc.u64(group.start).u64(group.roots.len() as u64);
                for root in &group.roots {
                    enc.bytes(root.as_bytes());
                }
                kind::R_EPOCH_GROUP
            }
            Reply::EpochCommitted { newly } => {
                enc.u64(*newly);
                kind::R_EPOCH_COMMITTED
            }
            Reply::Error(error) => {
                enc.bytes(&error.to_wire_bytes());
                kind::R_ERROR
            }
        }
    }

    fn decode(kind: u8, body: &[u8]) -> io::Result<Reply> {
        let mut dec = Decoder::new(body);
        let reply = match kind {
            kind::R_HELLO => {
                let pk: [u8; 64] = dec.bytes_fixed().map_err(|_| io_err("public key"))?;
                Reply::Hello { public_key: pk }
            }
            kind::R_RESPONSE => {
                let bytes = dec.bytes().map_err(|_| io_err("response"))?;
                Reply::Response(
                    SignedResponse::from_bytes(bytes).map_err(|_| io_err("response body"))?,
                )
            }
            kind::R_RESPONSES => {
                let n = dec.u64().map_err(|_| io_err("count"))?;
                if n > dec.remaining() as u64 {
                    return Err(io_err("count exceeds frame"));
                }
                let mut responses = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let bytes = dec.bytes().map_err(|_| io_err("response"))?;
                    responses.push(
                        SignedResponse::from_bytes(bytes).map_err(|_| io_err("response body"))?,
                    );
                }
                Reply::Responses(responses)
            }
            kind::R_SCAN => {
                let n = dec.u64().map_err(|_| io_err("leaf count"))?;
                if n > dec.remaining() as u64 {
                    return Err(io_err("count exceeds frame"));
                }
                let mut leaves = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    leaves.push(dec.bytes().map_err(|_| io_err("leaf"))?.to_vec());
                }
                let proof = decode_range_proof(&mut dec)?;
                let root: [u8; 32] = dec.bytes_fixed().map_err(|_| io_err("root"))?;
                Reply::Scan {
                    leaves,
                    proof,
                    root: Hash32(root),
                }
            }
            kind::R_MANY => {
                let n = dec.u64().map_err(|_| io_err("count"))?;
                if n > dec.remaining() as u64 {
                    return Err(io_err("count exceeds frame"));
                }
                let mut results = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let ok = dec.u8().map_err(|_| io_err("flag"))?;
                    let body = dec.bytes().map_err(|_| io_err("body"))?;
                    results.push(match ok {
                        1 => Ok(SignedResponse::from_bytes(body)
                            .map_err(|_| io_err("response body"))?),
                        0 => Err(WireError::from_wire_bytes(body)),
                        _ => return Err(io_err("bad result flag")),
                    });
                }
                Reply::ManyResults(results)
            }
            kind::R_META => {
                let positions = dec.u64().map_err(|_| io_err("positions"))?;
                let entries = dec.u64().map_err(|_| io_err("entries"))?;
                let position_len = match dec.u8().map_err(|_| io_err("len flag"))? {
                    0 => None,
                    1 => Some(dec.u64().map_err(|_| io_err("len"))? as u32),
                    _ => return Err(io_err("bad len flag")),
                };
                Reply::Meta {
                    positions,
                    entries,
                    position_len,
                }
            }
            kind::R_EPOCH_GROUP => {
                let start = dec.u64().map_err(|_| io_err("start"))?;
                let n = dec.u64().map_err(|_| io_err("root count"))?;
                if n > dec.remaining() as u64 {
                    return Err(io_err("count exceeds frame"));
                }
                let mut roots = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let h: [u8; 32] = dec.bytes_fixed().map_err(|_| io_err("root"))?;
                    roots.push(Hash32(h));
                }
                Reply::EpochGroup(ShardGroup { start, roots })
            }
            kind::R_EPOCH_COMMITTED => Reply::EpochCommitted {
                newly: dec.u64().map_err(|_| io_err("newly"))?,
            },
            kind::R_ERROR => {
                let msg = dec.bytes().map_err(|_| io_err("error message"))?;
                Reply::Error(WireError::from_wire_bytes(msg))
            }
            other => return Err(io_err(&format!("unknown reply kind 0x{other:02x}"))),
        };
        dec.finish().map_err(|_| io_err("trailing bytes"))?;
        Ok(reply)
    }
}

/// Appends one complete frame (`len || kind || req_id || body`) to `buf`,
/// encoding the body in place — no intermediate allocation. On a too-large
/// frame the buffer is rolled back to its prior length.
fn encode_frame_into(
    buf: &mut Vec<u8>,
    req_id: u64,
    encode_body: impl FnOnce(&mut Encoder) -> u8,
) -> io::Result<()> {
    let start = buf.len();
    let mut enc = Encoder::from_vec(std::mem::take(buf));
    // Length and kind are patched once the body size is known.
    enc.u32(0);
    enc.u8(0);
    enc.u64(req_id);
    let kind = encode_body(&mut enc);
    let mut out = enc.finish();
    let len = out.len() - start - 4;
    if len > MAX_FRAME {
        out.truncate(start);
        *buf = out;
        return Err(io_err("frame too large"));
    }
    out[start..start + 4].copy_from_slice(&(len as u32).to_be_bytes());
    out[start + 4] = kind;
    *buf = out;
    Ok(())
}

/// Appends a request frame to `buf`.
pub fn encode_request_into(buf: &mut Vec<u8>, req_id: u64, request: &Request) -> io::Result<()> {
    encode_frame_into(buf, req_id, |enc| request.encode_body(enc))
}

/// Appends a reply frame to `buf`. Several replies can be encoded into one
/// buffer and shipped with a single socket write.
pub fn encode_reply_into(buf: &mut Vec<u8>, req_id: u64, reply: &Reply) -> io::Result<()> {
    encode_frame_into(buf, req_id, |enc| reply.encode_body(enc))
}

/// Splits a raw frame (everything after the length prefix) into
/// `(kind, req_id, body)`.
fn split_frame(frame: &[u8]) -> io::Result<(u8, u64, &[u8])> {
    let (Some(&kind), Some(id_bytes), Some(body)) =
        (frame.first(), frame.get(1..9), frame.get(9..))
    else {
        return Err(io_err("frame too short"));
    };
    let mut id = [0u8; 8];
    id.copy_from_slice(id_bytes);
    Ok((kind, u64::from_be_bytes(id), body))
}

/// Reads one frame: `(kind, req_id, body)`.
fn read_frame(r: &mut impl Read) -> io::Result<(u8, u64, Vec<u8>)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if !(9..=MAX_FRAME).contains(&len) {
        return Err(io_err("bad frame length"));
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame)?;
    let (kind, req_id, body) = split_frame(&frame)?;
    Ok((kind, req_id, body.to_vec()))
}

/// Decodes a request from a raw frame (everything after the length prefix):
/// `kind (1) || req_id (8) || body`. Used by servers that manage framing
/// themselves (e.g. with interruptible reads into pooled buffers).
pub fn decode_request_frame(frame: &[u8]) -> io::Result<(u64, Request)> {
    let (kind, req_id, body) = split_frame(frame)?;
    Ok((req_id, Request::decode(kind, body)?))
}

/// Sends a request frame: one buffer, one write.
pub fn send_request(w: &mut impl Write, req_id: u64, request: &Request) -> io::Result<()> {
    let mut frame = Vec::new();
    encode_request_into(&mut frame, req_id, request)?;
    w.write_all(&frame)?;
    w.flush()
}

/// Receives a request frame.
pub fn recv_request(r: &mut impl Read) -> io::Result<(u64, Request)> {
    let (kind, req_id, body) = read_frame(r)?;
    Ok((req_id, Request::decode(kind, &body)?))
}

/// Sends a reply frame: one buffer, one write.
pub fn send_reply(w: &mut impl Write, req_id: u64, reply: &Reply) -> io::Result<()> {
    let mut frame = Vec::new();
    encode_reply_into(&mut frame, req_id, reply)?;
    w.write_all(&frame)?;
    w.flush()
}

/// Receives a reply frame.
pub fn recv_reply(r: &mut impl Read) -> io::Result<(u64, Reply)> {
    let (kind, req_id, body) = read_frame(r)?;
    Ok((req_id, Reply::decode(kind, &body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::Keypair;
    use wedge_merkle::MerkleTree;

    /// The pre-coalescing frame writer: four `write_all` calls. Kept as a
    /// test replica to prove the single-buffer path is byte-identical.
    fn legacy_write_frame(
        w: &mut impl Write,
        kind: u8,
        req_id: u64,
        body: &[u8],
    ) -> io::Result<()> {
        let len = 1 + 8 + body.len();
        if len > MAX_FRAME {
            return Err(io_err("frame too large"));
        }
        w.write_all(&(len as u32).to_be_bytes())?;
        w.write_all(&[kind])?;
        w.write_all(&req_id.to_be_bytes())?;
        w.write_all(body)?;
        w.flush()
    }

    fn legacy_request_frame(req_id: u64, request: &Request) -> Vec<u8> {
        let mut enc = Encoder::new();
        let kind = request.encode_body(&mut enc);
        let mut out = Vec::new();
        legacy_write_frame(&mut out, kind, req_id, &enc.finish()).unwrap();
        out
    }

    fn legacy_reply_frame(req_id: u64, reply: &Reply) -> Vec<u8> {
        let mut enc = Encoder::new();
        let kind = reply.encode_body(&mut enc);
        let mut out = Vec::new();
        legacy_write_frame(&mut out, kind, req_id, &enc.finish()).unwrap();
        out
    }

    fn sample_requests() -> Vec<Request> {
        let kp = Keypair::from_seed(b"wire");
        let append = AppendRequest::new(&kp.secret, 7, b"wire-payload".to_vec());
        vec![
            Request::Hello,
            Request::Append(append),
            Request::Read(EntryId {
                log_id: 3,
                offset: 9,
            }),
            Request::ReadSeq(kp.address, 42),
            Request::ReadPosition(5),
            Request::ReadMany(vec![
                EntryId {
                    log_id: 1,
                    offset: 0,
                },
                EntryId {
                    log_id: 2,
                    offset: 4,
                },
            ]),
            Request::Scan {
                log_id: 1,
                start: 2,
                count: 3,
            },
            Request::Meta { log_id: u64::MAX },
            Request::EpochReport { max_group: 16 },
            Request::EpochCommit(EpochCommit {
                epoch: 3,
                start: 12,
                count: 4,
                tx_hash: Hash32([0xAB; 32]),
                block_number: 77,
            }),
        ]
    }

    fn sample_replies() -> Vec<Reply> {
        let node = Keypair::from_seed(b"wire-node");
        let kp = Keypair::from_seed(b"wire-pub");
        let request = AppendRequest::new(&kp.secret, 0, b"x".to_vec());
        let leaves = vec![request.leaf_bytes(), b"other".to_vec()];
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let response = SignedResponse::sign(
            &node.secret,
            EntryId {
                log_id: 0,
                offset: 0,
            },
            tree.root(),
            tree.prove(0).unwrap(),
            leaves[0].clone(),
        );
        let scan_proof = RangeProof::generate(&tree, 0, 2).unwrap();
        vec![
            Reply::Hello {
                public_key: node.public.to_bytes(),
            },
            Reply::Response(response.clone()),
            Reply::Responses(vec![response.clone(), response.clone()]),
            Reply::ManyResults(vec![Ok(response), Err(WireError::generic("read failed"))]),
            Reply::Scan {
                leaves: leaves.clone(),
                proof: scan_proof,
                root: tree.root(),
            },
            Reply::Meta {
                positions: 1,
                entries: 2,
                position_len: Some(2),
            },
            Reply::Meta {
                positions: 1,
                entries: 2,
                position_len: None,
            },
            Reply::Meta {
                positions: 1,
                entries: 2,
                // A real length of u32::MAX must survive the round trip —
                // it used to be the in-band "absent" sentinel.
                position_len: Some(u32::MAX),
            },
            Reply::EpochGroup(ShardGroup {
                start: 12,
                roots: vec![Hash32([0x11; 32]), Hash32([0x22; 32])],
            }),
            Reply::EpochGroup(ShardGroup::default()),
            Reply::EpochCommitted { newly: 4 },
            Reply::Error(WireError::generic("nope")),
        ]
    }

    #[test]
    fn request_frames_roundtrip() {
        let requests = sample_requests();
        let mut buf = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            send_request(&mut buf, i as u64, request).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for (i, original) in requests.iter().enumerate() {
            let (req_id, decoded) = recv_request(&mut cursor).unwrap();
            assert_eq!(req_id, i as u64);
            assert_eq!(format!("{decoded:?}"), format!("{original:?}"));
        }
    }

    #[test]
    fn reply_frames_roundtrip() {
        let node = Keypair::from_seed(b"wire-node");
        let replies = sample_replies();
        let mut buf = Vec::new();
        for (i, reply) in replies.iter().enumerate() {
            send_reply(&mut buf, i as u64, reply).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for (i, original) in replies.iter().enumerate() {
            let (req_id, decoded) = recv_reply(&mut cursor).unwrap();
            assert_eq!(req_id, i as u64);
            // Deep checks for the interesting ones.
            match (i, decoded) {
                (0, Reply::Hello { public_key }) => {
                    assert_eq!(public_key, node.public.to_bytes())
                }
                (1, Reply::Response(r)) => {
                    r.verify(&node.public).unwrap();
                }
                (2, Reply::Responses(rs)) => assert_eq!(rs.len(), 2),
                (3, Reply::ManyResults(rs)) => {
                    assert!(rs[0].is_ok());
                    assert_eq!(
                        rs[1].as_ref().err(),
                        Some(&WireError::generic("read failed"))
                    );
                }
                (
                    4,
                    Reply::Scan {
                        leaves,
                        proof,
                        root,
                    },
                ) => {
                    proof.verify(&leaves, &root).unwrap();
                }
                (5, Reply::Meta { position_len, .. }) => assert_eq!(position_len, Some(2)),
                (6, Reply::Meta { position_len, .. }) => assert_eq!(position_len, None),
                (7, Reply::Meta { position_len, .. }) => {
                    assert_eq!(position_len, Some(u32::MAX));
                }
                (8, Reply::EpochGroup(group)) => {
                    assert_eq!(group.start, 12);
                    assert_eq!(group.roots, vec![Hash32([0x11; 32]), Hash32([0x22; 32])]);
                }
                (9, Reply::EpochGroup(group)) => {
                    assert!(group.is_empty());
                    assert_eq!(group.start, 0);
                }
                (10, Reply::EpochCommitted { newly }) => assert_eq!(newly, 4),
                (11, Reply::Error(err)) => {
                    assert_eq!(err, WireError::generic("nope"));
                }
                (i, other) => panic!("reply {i} ({original:?}) decoded wrong: {other:?}"),
            }
        }
    }

    #[test]
    fn single_write_frames_match_legacy_bytes() {
        // Every frame kind: the one-buffer encoder must be byte-identical
        // to the old four-write path.
        for (i, request) in sample_requests().iter().enumerate() {
            let mut new = Vec::new();
            send_request(&mut new, i as u64, request).unwrap();
            assert_eq!(new, legacy_request_frame(i as u64, request), "request {i}");
        }
        for (i, reply) in sample_replies().iter().enumerate() {
            let mut new = Vec::new();
            send_reply(&mut new, i as u64, reply).unwrap();
            assert_eq!(new, legacy_reply_frame(i as u64, reply), "reply {i}");
        }
    }

    #[test]
    fn encode_into_appends_and_rolls_back() {
        // Frames append after existing content (coalescing), and an
        // oversized frame rolls the buffer back untouched.
        let mut buf = b"prefix".to_vec();
        encode_reply_into(&mut buf, 9, &Reply::Error(WireError::generic("x"))).unwrap();
        assert_eq!(&buf[..6], b"prefix");
        let mut single = Vec::new();
        send_reply(&mut single, 9, &Reply::Error(WireError::generic("x"))).unwrap();
        assert_eq!(&buf[6..], &single[..]);

        let before = buf.clone();
        // An over-limit body must error and roll the buffer back.
        let oversized = encode_frame_into(&mut buf, 0, |enc| {
            enc.bytes(&vec![0u8; MAX_FRAME]);
            0x42
        });
        assert!(oversized.is_err());
        assert_eq!(buf, before, "failed encode must not leave partial bytes");
    }

    #[test]
    fn structured_errors_roundtrip_with_real_entry_id() {
        let id = EntryId {
            log_id: 12,
            offset: 34,
        };
        let err = WireError::from_service_error(&CoreError::EntryNotFound(id));
        let mut buf = Vec::new();
        send_reply(&mut buf, 1, &Reply::Error(err.clone())).unwrap();
        let (_, decoded) = recv_reply(&mut std::io::Cursor::new(buf)).unwrap();
        match decoded {
            Reply::Error(WireError::EntryNotFound { id: got, message }) => {
                assert_eq!(got, id);
                assert!(message.contains("not found"));
            }
            other => panic!("structured error lost: {other:?}"),
        }
        // Old peers lossily decode the message byte string and dispatch on
        // the "not found" needle — the structured bytes must keep it.
        let wire = err.to_wire_bytes();
        assert!(String::from_utf8_lossy(&wire).contains("not found"));
        // And plain-text errors stay byte-identical to the old encoding.
        let generic = WireError::generic("remote node error: boom");
        assert_eq!(generic.to_wire_bytes(), b"remote node error: boom");
    }

    #[test]
    fn legacy_plain_text_errors_decode_as_generic() {
        // A frame from an old peer: R_ERROR body is just the UTF-8 text.
        let mut enc = Encoder::new();
        enc.bytes(b"entry 3/7 not found");
        let mut frame = Vec::new();
        legacy_write_frame(&mut frame, 0xFF, 5, &enc.finish()).unwrap();
        let (req_id, decoded) = recv_reply(&mut std::io::Cursor::new(frame)).unwrap();
        assert_eq!(req_id, 5);
        assert_eq!(
            decoded_error(decoded),
            WireError::Generic("entry 3/7 not found".into())
        );
        // Defensive escape: a generic message starting with NUL survives.
        let nul = WireError::generic("\0weird");
        assert_eq!(WireError::from_wire_bytes(&nul.to_wire_bytes()), nul);
        // Unknown structured code degrades to generic, not an error.
        let unknown = WireError::from_wire_bytes(&[0x00, 0x7F, b'h', b'i']);
        assert!(matches!(unknown, WireError::Generic(_)));
    }

    fn decoded_error(reply: Reply) -> WireError {
        match reply {
            Reply::Error(err) => err,
            other => panic!("expected error reply, got {other:?}"),
        }
    }

    #[test]
    fn hostile_frames_rejected() {
        // Oversized length prefix.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        assert!(recv_request(&mut std::io::Cursor::new(buf)).is_err());
        // Unknown kind.
        let mut buf = Vec::new();
        legacy_write_frame(&mut buf, 0x77, 0, b"").unwrap();
        assert!(recv_request(&mut std::io::Cursor::new(buf)).is_err());
        // Truncated body.
        let mut buf = Vec::new();
        send_request(
            &mut buf,
            1,
            &Request::Read(EntryId {
                log_id: 0,
                offset: 0,
            }),
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(recv_request(&mut std::io::Cursor::new(buf)).is_err());
    }
}
