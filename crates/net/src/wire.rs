//! The wire protocol: length-prefixed frames carrying canonical-encoded
//! messages.
//!
//! Frame layout: `len (u32 BE) || kind (u8) || req_id (u64 BE) || body`.
//! Every client message carries a `req_id` the server echoes, so replies —
//! including append replies, which arrive asynchronously at batch-flush
//! time — can be routed back to their callers over one multiplexed
//! connection.

use std::io::{self, Read, Write};

use wedge_chain::{Decoder, Encoder};
use wedge_core::{AppendRequest, EntryId, SignedResponse};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_merkle::RangeProof;

/// Maximum accepted frame size (guards against hostile length prefixes).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Client → server messages.
#[derive(Debug)]
pub enum Request {
    /// Fetch the node's public key and log shape.
    Hello,
    /// Submit one append request.
    Append(AppendRequest),
    /// Read one entry.
    Read(EntryId),
    /// Read by `(publisher, sequence)`.
    ReadSeq(Address, u64),
    /// Read a group of entries in one round trip.
    ReadMany(Vec<EntryId>),
    /// Read a whole log position.
    ReadPosition(u64),
    /// Range scan with multiproof.
    Scan {
        /// Log position.
        log_id: u64,
        /// First offset.
        start: u32,
        /// Entries to scan.
        count: u32,
    },
    /// Log shape: positions, entries, and one position's length.
    Meta {
        /// Position whose length to report (`u64::MAX` for none).
        log_id: u64,
    },
}

/// Server → client messages.
#[derive(Debug)]
pub enum Reply {
    /// Hello reply: node public key (uncompressed) + shape.
    Hello {
        /// The node's public key bytes.
        public_key: [u8; 64],
    },
    /// A signed response (append/read/read-seq).
    Response(SignedResponse),
    /// A batch of signed responses (read-position).
    Responses(Vec<SignedResponse>),
    /// Per-entry results of a `ReadMany`.
    ManyResults(Vec<Result<SignedResponse, String>>),
    /// A range scan result.
    Scan {
        /// The raw leaves.
        leaves: Vec<Vec<u8>>,
        /// The multiproof.
        proof: RangeProof,
        /// The position's root.
        root: Hash32,
    },
    /// Log shape.
    Meta {
        /// Flushed log positions.
        positions: u64,
        /// Total entries.
        entries: u64,
        /// Length of the requested position, or `None` when it does not
        /// exist. Encoded as an explicit presence flag on the wire — an
        /// in-band `u32::MAX` sentinel would be indistinguishable from a
        /// real (capped) length.
        position_len: Option<u32>,
    },
    /// The operation failed.
    Error(String),
}

mod kind {
    pub const HELLO: u8 = 0x01;
    pub const APPEND: u8 = 0x02;
    pub const READ: u8 = 0x03;
    pub const READ_SEQ: u8 = 0x04;
    pub const READ_POSITION: u8 = 0x05;
    pub const READ_MANY: u8 = 0x08;
    pub const SCAN: u8 = 0x06;
    pub const META: u8 = 0x07;

    pub const R_HELLO: u8 = 0x81;
    pub const R_RESPONSE: u8 = 0x82;
    pub const R_RESPONSES: u8 = 0x83;
    pub const R_SCAN: u8 = 0x84;
    pub const R_META: u8 = 0x85;
    pub const R_MANY: u8 = 0x86;
    pub const R_ERROR: u8 = 0xFF;
}

fn io_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Encodes a range proof for the wire.
fn encode_range_proof(enc: &mut Encoder, proof: &RangeProof) {
    enc.u64(proof.start).u64(proof.count).u64(proof.leaf_count);
    enc.u64(proof.siblings.len() as u64);
    for sibling in &proof.siblings {
        enc.bytes(sibling.as_bytes());
    }
}

fn decode_range_proof(dec: &mut Decoder<'_>) -> io::Result<RangeProof> {
    let start = dec.u64().map_err(|_| io_err("proof.start"))?;
    let count = dec.u64().map_err(|_| io_err("proof.count"))?;
    let leaf_count = dec.u64().map_err(|_| io_err("proof.leaf_count"))?;
    let n = dec.u64().map_err(|_| io_err("proof.siblings"))?;
    if n > dec.remaining() as u64 {
        return Err(io_err("sibling count exceeds frame"));
    }
    let mut siblings = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let h: [u8; 32] = dec.bytes_fixed().map_err(|_| io_err("sibling"))?;
        siblings.push(Hash32(h));
    }
    Ok(RangeProof {
        start,
        count,
        leaf_count,
        siblings,
    })
}

impl Request {
    /// Encodes kind + body (without the frame header).
    fn encode(&self) -> (u8, Vec<u8>) {
        let mut enc = Encoder::new();
        let kind = match self {
            Request::Hello => kind::HELLO,
            Request::Append(request) => {
                enc.bytes(&request.leaf_bytes());
                kind::APPEND
            }
            Request::Read(id) => {
                enc.u64(id.log_id).u64(id.offset as u64);
                kind::READ
            }
            Request::ReadSeq(addr, seq) => {
                enc.bytes(addr.as_bytes()).u64(*seq);
                kind::READ_SEQ
            }
            Request::ReadPosition(log_id) => {
                enc.u64(*log_id);
                kind::READ_POSITION
            }
            Request::ReadMany(ids) => {
                enc.u64(ids.len() as u64);
                for id in ids {
                    enc.u64(id.log_id).u64(id.offset as u64);
                }
                kind::READ_MANY
            }
            Request::Scan {
                log_id,
                start,
                count,
            } => {
                enc.u64(*log_id).u64(*start as u64).u64(*count as u64);
                kind::SCAN
            }
            Request::Meta { log_id } => {
                enc.u64(*log_id);
                kind::META
            }
        };
        (kind, enc.finish())
    }

    /// Decodes from kind + body.
    fn decode(kind: u8, body: &[u8]) -> io::Result<Request> {
        let mut dec = Decoder::new(body);
        let request = match kind {
            kind::HELLO => Request::Hello,
            kind::APPEND => {
                let leaf = dec.bytes().map_err(|_| io_err("append leaf"))?;
                let request =
                    AppendRequest::from_leaf_bytes(leaf).map_err(|_| io_err("append request"))?;
                Request::Append(request)
            }
            kind::READ => Request::Read(EntryId {
                log_id: dec.u64().map_err(|_| io_err("log_id"))?,
                offset: dec.u64().map_err(|_| io_err("offset"))? as u32,
            }),
            kind::READ_SEQ => {
                let addr: [u8; 20] = dec.bytes_fixed().map_err(|_| io_err("addr"))?;
                let seq = dec.u64().map_err(|_| io_err("seq"))?;
                Request::ReadSeq(Address(addr), seq)
            }
            kind::READ_POSITION => Request::ReadPosition(dec.u64().map_err(|_| io_err("log_id"))?),
            kind::READ_MANY => {
                let n = dec.u64().map_err(|_| io_err("count"))?;
                if n > 1_000_000 {
                    return Err(io_err("read-many too large"));
                }
                let mut ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ids.push(EntryId {
                        log_id: dec.u64().map_err(|_| io_err("log_id"))?,
                        offset: dec.u64().map_err(|_| io_err("offset"))? as u32,
                    });
                }
                Request::ReadMany(ids)
            }
            kind::SCAN => Request::Scan {
                log_id: dec.u64().map_err(|_| io_err("log_id"))?,
                start: dec.u64().map_err(|_| io_err("start"))? as u32,
                count: dec.u64().map_err(|_| io_err("count"))? as u32,
            },
            kind::META => Request::Meta {
                log_id: dec.u64().map_err(|_| io_err("log_id"))?,
            },
            other => return Err(io_err(&format!("unknown request kind 0x{other:02x}"))),
        };
        dec.finish().map_err(|_| io_err("trailing bytes"))?;
        Ok(request)
    }
}

impl Reply {
    fn encode(&self) -> (u8, Vec<u8>) {
        let mut enc = Encoder::new();
        let kind = match self {
            Reply::Hello { public_key } => {
                enc.bytes(public_key);
                kind::R_HELLO
            }
            Reply::Response(response) => {
                enc.bytes(&response.to_bytes());
                kind::R_RESPONSE
            }
            Reply::Responses(responses) => {
                enc.u64(responses.len() as u64);
                for response in responses {
                    enc.bytes(&response.to_bytes());
                }
                kind::R_RESPONSES
            }
            Reply::ManyResults(results) => {
                enc.u64(results.len() as u64);
                for result in results {
                    match result {
                        Ok(response) => {
                            enc.u8(1).bytes(&response.to_bytes());
                        }
                        Err(message) => {
                            enc.u8(0).bytes(message.as_bytes());
                        }
                    }
                }
                kind::R_MANY
            }
            Reply::Scan {
                leaves,
                proof,
                root,
            } => {
                enc.u64(leaves.len() as u64);
                for leaf in leaves {
                    enc.bytes(leaf);
                }
                encode_range_proof(&mut enc, proof);
                enc.bytes(root.as_bytes());
                kind::R_SCAN
            }
            Reply::Meta {
                positions,
                entries,
                position_len,
            } => {
                enc.u64(*positions).u64(*entries);
                match position_len {
                    Some(len) => enc.u8(1).u64(*len as u64),
                    None => enc.u8(0),
                };
                kind::R_META
            }
            Reply::Error(message) => {
                enc.bytes(message.as_bytes());
                kind::R_ERROR
            }
        };
        (kind, enc.finish())
    }

    fn decode(kind: u8, body: &[u8]) -> io::Result<Reply> {
        let mut dec = Decoder::new(body);
        let reply = match kind {
            kind::R_HELLO => {
                let pk: [u8; 64] = dec.bytes_fixed().map_err(|_| io_err("public key"))?;
                Reply::Hello { public_key: pk }
            }
            kind::R_RESPONSE => {
                let bytes = dec.bytes().map_err(|_| io_err("response"))?;
                Reply::Response(
                    SignedResponse::from_bytes(bytes).map_err(|_| io_err("response body"))?,
                )
            }
            kind::R_RESPONSES => {
                let n = dec.u64().map_err(|_| io_err("count"))?;
                if n > dec.remaining() as u64 {
                    return Err(io_err("count exceeds frame"));
                }
                let mut responses = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let bytes = dec.bytes().map_err(|_| io_err("response"))?;
                    responses.push(
                        SignedResponse::from_bytes(bytes).map_err(|_| io_err("response body"))?,
                    );
                }
                Reply::Responses(responses)
            }
            kind::R_SCAN => {
                let n = dec.u64().map_err(|_| io_err("leaf count"))?;
                if n > dec.remaining() as u64 {
                    return Err(io_err("count exceeds frame"));
                }
                let mut leaves = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    leaves.push(dec.bytes().map_err(|_| io_err("leaf"))?.to_vec());
                }
                let proof = decode_range_proof(&mut dec)?;
                let root: [u8; 32] = dec.bytes_fixed().map_err(|_| io_err("root"))?;
                Reply::Scan {
                    leaves,
                    proof,
                    root: Hash32(root),
                }
            }
            kind::R_MANY => {
                let n = dec.u64().map_err(|_| io_err("count"))?;
                if n > dec.remaining() as u64 {
                    return Err(io_err("count exceeds frame"));
                }
                let mut results = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let ok = dec.u8().map_err(|_| io_err("flag"))?;
                    let body = dec.bytes().map_err(|_| io_err("body"))?;
                    results.push(match ok {
                        1 => Ok(SignedResponse::from_bytes(body)
                            .map_err(|_| io_err("response body"))?),
                        0 => Err(String::from_utf8_lossy(body).into_owned()),
                        _ => return Err(io_err("bad result flag")),
                    });
                }
                Reply::ManyResults(results)
            }
            kind::R_META => {
                let positions = dec.u64().map_err(|_| io_err("positions"))?;
                let entries = dec.u64().map_err(|_| io_err("entries"))?;
                let position_len = match dec.u8().map_err(|_| io_err("len flag"))? {
                    0 => None,
                    1 => Some(dec.u64().map_err(|_| io_err("len"))? as u32),
                    _ => return Err(io_err("bad len flag")),
                };
                Reply::Meta {
                    positions,
                    entries,
                    position_len,
                }
            }
            kind::R_ERROR => {
                let msg = dec.bytes().map_err(|_| io_err("error message"))?;
                Reply::Error(String::from_utf8_lossy(msg).into_owned())
            }
            other => return Err(io_err(&format!("unknown reply kind 0x{other:02x}"))),
        };
        dec.finish().map_err(|_| io_err("trailing bytes"))?;
        Ok(reply)
    }
}

/// Writes one frame.
fn write_frame(w: &mut impl Write, kind: u8, req_id: u64, body: &[u8]) -> io::Result<()> {
    let len = 1 + 8 + body.len();
    if len > MAX_FRAME {
        return Err(io_err("frame too large"));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(&req_id.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame: `(kind, req_id, body)`.
fn read_frame(r: &mut impl Read) -> io::Result<(u8, u64, Vec<u8>)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if !(9..=MAX_FRAME).contains(&len) {
        return Err(io_err("bad frame length"));
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame)?;
    let kind = frame[0];
    let req_id = u64::from_be_bytes(frame[1..9].try_into().expect("8 bytes"));
    Ok((kind, req_id, frame[9..].to_vec()))
}

/// Decodes a request from a raw frame (everything after the length prefix):
/// `kind (1) || req_id (8) || body`. Used by servers that manage framing
/// themselves (e.g. with interruptible reads).
pub fn decode_request_frame(frame: &[u8]) -> io::Result<(u64, Request)> {
    if frame.len() < 9 {
        return Err(io_err("frame too short"));
    }
    let kind = frame[0];
    let req_id = u64::from_be_bytes(frame[1..9].try_into().expect("8 bytes"));
    Ok((req_id, Request::decode(kind, &frame[9..])?))
}

/// Sends a request frame.
pub fn send_request(w: &mut impl Write, req_id: u64, request: &Request) -> io::Result<()> {
    let (kind, body) = request.encode();
    write_frame(w, kind, req_id, &body)
}

/// Receives a request frame.
pub fn recv_request(r: &mut impl Read) -> io::Result<(u64, Request)> {
    let (kind, req_id, body) = read_frame(r)?;
    Ok((req_id, Request::decode(kind, &body)?))
}

/// Sends a reply frame.
pub fn send_reply(w: &mut impl Write, req_id: u64, reply: &Reply) -> io::Result<()> {
    let (kind, body) = reply.encode();
    write_frame(w, kind, req_id, &body)
}

/// Receives a reply frame.
pub fn recv_reply(r: &mut impl Read) -> io::Result<(u64, Reply)> {
    let (kind, req_id, body) = read_frame(r)?;
    Ok((req_id, Reply::decode(kind, &body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::Keypair;
    use wedge_merkle::MerkleTree;

    #[test]
    fn request_frames_roundtrip() {
        let kp = Keypair::from_seed(b"wire");
        let append = AppendRequest::new(&kp.secret, 7, b"wire-payload".to_vec());
        let requests = [
            Request::Hello,
            Request::Append(append),
            Request::Read(EntryId {
                log_id: 3,
                offset: 9,
            }),
            Request::ReadSeq(kp.address, 42),
            Request::ReadPosition(5),
            Request::Scan {
                log_id: 1,
                start: 2,
                count: 3,
            },
            Request::Meta { log_id: u64::MAX },
        ];
        let mut buf = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            send_request(&mut buf, i as u64, request).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for (i, original) in requests.iter().enumerate() {
            let (req_id, decoded) = recv_request(&mut cursor).unwrap();
            assert_eq!(req_id, i as u64);
            assert_eq!(format!("{decoded:?}"), format!("{original:?}"));
        }
    }

    #[test]
    fn reply_frames_roundtrip() {
        let node = Keypair::from_seed(b"wire-node");
        let kp = Keypair::from_seed(b"wire-pub");
        let request = AppendRequest::new(&kp.secret, 0, b"x".to_vec());
        let leaves = vec![request.leaf_bytes(), b"other".to_vec()];
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let response = SignedResponse::sign(
            &node.secret,
            EntryId {
                log_id: 0,
                offset: 0,
            },
            tree.root(),
            tree.prove(0).unwrap(),
            leaves[0].clone(),
        );
        let scan_proof = RangeProof::generate(&tree, 0, 2).unwrap();
        let replies = [
            Reply::Hello {
                public_key: node.public.to_bytes(),
            },
            Reply::Response(response.clone()),
            Reply::Responses(vec![response.clone(), response.clone()]),
            Reply::Scan {
                leaves: leaves.clone(),
                proof: scan_proof,
                root: tree.root(),
            },
            Reply::Meta {
                positions: 1,
                entries: 2,
                position_len: Some(2),
            },
            Reply::Meta {
                positions: 1,
                entries: 2,
                position_len: None,
            },
            Reply::Meta {
                positions: 1,
                entries: 2,
                // A real length of u32::MAX must survive the round trip —
                // it used to be the in-band "absent" sentinel.
                position_len: Some(u32::MAX),
            },
            Reply::Error("nope".into()),
        ];
        let mut buf = Vec::new();
        for (i, reply) in replies.iter().enumerate() {
            send_reply(&mut buf, i as u64, reply).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for (i, _) in replies.iter().enumerate() {
            let (req_id, decoded) = recv_reply(&mut cursor).unwrap();
            assert_eq!(req_id, i as u64);
            // Deep checks for the interesting ones.
            match (i, decoded) {
                (0, Reply::Hello { public_key }) => {
                    assert_eq!(public_key, node.public.to_bytes())
                }
                (1, Reply::Response(r)) => {
                    r.verify(&node.public).unwrap();
                    assert_eq!(r.leaf, leaves[0]);
                }
                (2, Reply::Responses(rs)) => assert_eq!(rs.len(), 2),
                (
                    3,
                    Reply::Scan {
                        leaves: l,
                        proof,
                        root,
                    },
                ) => {
                    proof.verify(&l, &root).unwrap();
                }
                (
                    4,
                    Reply::Meta {
                        positions,
                        entries,
                        position_len,
                    },
                ) => {
                    assert_eq!((positions, entries, position_len), (1, 2, Some(2)));
                }
                (5, Reply::Meta { position_len, .. }) => assert_eq!(position_len, None),
                (6, Reply::Meta { position_len, .. }) => {
                    assert_eq!(position_len, Some(u32::MAX));
                }
                (7, Reply::Error(msg)) => assert_eq!(msg, "nope"),
                (i, other) => panic!("reply {i} decoded wrong: {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_frames_rejected() {
        // Oversized length prefix.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        assert!(recv_request(&mut std::io::Cursor::new(buf)).is_err());
        // Unknown kind.
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x77, 0, b"").unwrap();
        assert!(recv_request(&mut std::io::Cursor::new(buf)).is_err());
        // Truncated body.
        let mut buf = Vec::new();
        send_request(
            &mut buf,
            1,
            &Request::Read(EntryId {
                log_id: 0,
                offset: 0,
            }),
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(recv_request(&mut std::io::Cursor::new(buf)).is_err());
    }
}
