//! Merkle inclusion proofs (the "green nodes" of the paper's Figure 1).
//!
//! A proof carries the sibling hashes from a leaf to the root. Verification
//! recomputes the root and compares it with the trusted `MRoot` — either one
//! received in a stage-1 response or one read from the Root Record contract.
//! Proofs serialize to a compact byte format so they can travel inside
//! signed responses and punishment-contract calldata.

use wedge_crypto::hash::Hash32;

use crate::tree::{hash_leaf, hash_node};
use crate::MerkleError;

/// Which side of the running hash a sibling joins from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// Sibling is the left child: parent = H(sibling, acc).
    Left,
    /// Sibling is the right child: parent = H(acc, sibling).
    Right,
}

/// One step of a proof path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProofNode {
    /// The sibling digest.
    pub hash: Hash32,
    /// The sibling's side.
    pub side: Side,
}

/// An inclusion proof for a single leaf.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MerkleProof {
    /// Position of the proven leaf in the batch.
    pub leaf_index: u64,
    /// Total number of leaves in the tree (binds the proof to a shape).
    pub leaf_count: u64,
    /// Sibling path, leaf level first.
    pub path: Vec<ProofNode>,
}

impl MerkleProof {
    /// Recomputes the root implied by `leaf_data` under this proof.
    pub fn compute_root(&self, leaf_data: &[u8]) -> Hash32 {
        self.compute_root_from_hash(hash_leaf(leaf_data))
    }

    /// Recomputes the root starting from a leaf hash.
    pub fn compute_root_from_hash(&self, leaf_hash: Hash32) -> Hash32 {
        let mut acc = leaf_hash;
        for node in &self.path {
            acc = match node.side {
                Side::Left => hash_node(&node.hash, &acc),
                Side::Right => hash_node(&acc, &node.hash),
            };
        }
        acc
    }

    /// Verifies `leaf_data` against a trusted root.
    pub fn verify(&self, leaf_data: &[u8], root: &Hash32) -> Result<(), MerkleError> {
        let computed = self.compute_root(leaf_data);
        if computed == *root {
            Ok(())
        } else {
            Err(MerkleError::RootMismatch {
                computed,
                expected: *root,
            })
        }
    }

    /// Serialized byte length.
    pub fn encoded_len(&self) -> usize {
        8 + 8 + 2 + self.path.len() * 33
    }

    /// Serializes to bytes:
    /// `leaf_index (8 BE) || leaf_count (8 BE) || path_len (2 BE) ||
    ///  (side_byte || hash)*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.leaf_index.to_be_bytes());
        out.extend_from_slice(&self.leaf_count.to_be_bytes());
        out.extend_from_slice(&(self.path.len() as u16).to_be_bytes());
        for node in &self.path {
            out.push(match node.side {
                Side::Left => 0,
                Side::Right => 1,
            });
            out.extend_from_slice(node.hash.as_bytes());
        }
        out
    }

    /// Parses the serialized form.
    pub fn from_bytes(bytes: &[u8]) -> Result<MerkleProof, MerkleError> {
        let (Some(leaf_index), Some(leaf_count), Some(path_len)) = (
            be_u64(bytes),
            bytes.get(8..).and_then(be_u64),
            bytes.get(16..).and_then(be_u16),
        ) else {
            return Err(MerkleError::MalformedProof("header truncated"));
        };
        let path_len = path_len as usize;
        let body = bytes.get(18..).unwrap_or_default();
        if body.len() != path_len * 33 {
            return Err(MerkleError::MalformedProof("path length mismatch"));
        }
        let mut path = Vec::with_capacity(path_len);
        for chunk in body.chunks_exact(33) {
            let side = match chunk[0] {
                0 => Side::Left,
                1 => Side::Right,
                _ => return Err(MerkleError::MalformedProof("bad side byte")),
            };
            let mut hash = [0u8; 32];
            hash.copy_from_slice(&chunk[1..]);
            path.push(ProofNode {
                hash: Hash32(hash),
                side,
            });
        }
        Ok(MerkleProof {
            leaf_index,
            leaf_count,
            path,
        })
    }
}

/// Big-endian `u64` from the first 8 bytes of `src`; `None` if too short.
fn be_u64(src: &[u8]) -> Option<u64> {
    src.get(..8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_be_bytes)
}

/// Big-endian `u16` from the first 2 bytes of `src`; `None` if too short.
fn be_u16(src: &[u8]) -> Option<u16> {
    src.get(..2)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_be_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MerkleTree;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("entry-{i}").into_bytes()).collect()
    }

    #[test]
    fn every_leaf_verifies() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data).unwrap();
            let root = tree.root();
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                proof.verify(leaf, &root).unwrap_or_else(|e| {
                    panic!("n={n}, leaf {i}: {e}");
                });
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let data = leaves(16);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let proof = tree.prove(5).unwrap();
        assert!(proof.verify(b"tampered", &tree.root()).is_err());
    }

    #[test]
    fn proof_for_wrong_position_fails() {
        let data = leaves(16);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let proof = tree.prove(5).unwrap();
        // Leaf 6's data under leaf 5's proof must not verify.
        assert!(proof.verify(&data[6], &tree.root()).is_err());
    }

    #[test]
    fn tampered_path_fails() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let mut proof = tree.prove(3).unwrap();
        proof.path[1].hash = Hash32([0xAA; 32]);
        assert!(proof.verify(&data[3], &tree.root()).is_err());
    }

    #[test]
    fn flipped_side_fails() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let mut proof = tree.prove(3).unwrap();
        proof.path[0].side = match proof.path[0].side {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        };
        assert!(proof.verify(&data[3], &tree.root()).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let data = leaves(33);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        for i in [0usize, 1, 16, 31, 32] {
            let proof = tree.prove(i).unwrap();
            let bytes = proof.to_bytes();
            assert_eq!(bytes.len(), proof.encoded_len());
            let parsed = MerkleProof::from_bytes(&bytes).unwrap();
            assert_eq!(parsed, proof);
            parsed.verify(&data[i], &tree.root()).unwrap();
        }
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(MerkleProof::from_bytes(&[]).is_err());
        assert!(MerkleProof::from_bytes(&[0; 17]).is_err());
        // Valid header claiming 1 path node but no body.
        let mut bytes = vec![0u8; 18];
        bytes[17] = 1;
        assert!(MerkleProof::from_bytes(&bytes).is_err());
        // Bad side byte.
        let data = leaves(4);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let mut good = tree.prove(0).unwrap().to_bytes();
        good[18] = 7;
        assert!(MerkleProof::from_bytes(&good).is_err());
    }

    #[test]
    fn proof_size_grows_logarithmically() {
        let t1 = MerkleTree::from_leaves(&leaves(500)).unwrap();
        let t2 = MerkleTree::from_leaves(&leaves(10_000)).unwrap();
        let p1 = t1.prove(0).unwrap().path.len();
        let p2 = t2.prove(0).unwrap().path.len();
        assert_eq!(p1, 9); // ceil(log2(500))
        assert_eq!(p2, 14); // ceil(log2(10000))
    }
}
