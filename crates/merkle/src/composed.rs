//! Multi-level (composed) inclusion proofs for sharded deployments.
//!
//! A sharded cluster commits one *root-of-roots* on-chain per epoch: each
//! shard folds the batch roots it flushed that epoch into a shard root, and
//! the coordinator folds the shard roots into a single cluster root. An
//! entry is then proven against the on-chain digest by chaining ordinary
//! [`MerkleProof`]s: the entry's leaf under its batch root, the batch
//! root's bytes (as a leaf) under the shard root, and the shard root's
//! bytes under the cluster root.
//!
//! [`ComposedProof`] captures exactly that chain: level 0 proves the raw
//! leaf data; every level `k ≥ 1` proves `hash_leaf(root_{k-1}.as_bytes())`
//! under `root_k`. Verification succeeds only when the final recomputed
//! root equals the trusted (on-chain) root — any mutated sibling, flipped
//! side, or wrong index at *any* level changes the final digest.

use wedge_crypto::hash::Hash32;

use crate::proof::MerkleProof;
use crate::MerkleError;

/// A chain of inclusion proofs, leaf level first.
///
/// The two-level cluster path is `[entry→batch root, batch root→shard
/// root, shard root→cluster root]`, but any depth ≥ 1 composes the same
/// way.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComposedProof {
    /// The per-level proofs, innermost (raw leaf) first.
    pub levels: Vec<MerkleProof>,
}

impl ComposedProof {
    /// Chains the levels: the root recomputed at level `k` becomes the
    /// leaf *data* (root bytes, hashed with the leaf domain separator) of
    /// level `k + 1`.
    pub fn compute_root(&self, leaf_data: &[u8]) -> Result<Hash32, MerkleError> {
        let Some((first, rest)) = self.levels.split_first() else {
            return Err(MerkleError::MalformedProof("composed proof has no levels"));
        };
        let mut acc = first.compute_root(leaf_data);
        for level in rest {
            acc = level.compute_root(acc.as_bytes());
        }
        Ok(acc)
    }

    /// Verifies `leaf_data` against the trusted outermost root (for the
    /// cluster path: the root-of-roots recorded on-chain).
    pub fn verify(&self, leaf_data: &[u8], root: &Hash32) -> Result<(), MerkleError> {
        let computed = self.compute_root(leaf_data)?;
        if computed == *root {
            Ok(())
        } else {
            Err(MerkleError::RootMismatch {
                computed,
                expected: *root,
            })
        }
    }

    /// The leaf index claimed at `level` (e.g. level 2's index is the
    /// shard id in the cluster layout), if the level exists.
    pub fn index_at(&self, level: usize) -> Option<u64> {
        self.levels.get(level).map(|p| p.leaf_index)
    }

    /// Serialized byte length.
    pub fn encoded_len(&self) -> usize {
        1 + self
            .levels
            .iter()
            .map(|p| 4 + p.encoded_len())
            .sum::<usize>()
    }

    /// Serializes to `level_count (1) || (proof_len (4 BE) || proof)*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.push(self.levels.len() as u8);
        for level in &self.levels {
            let bytes = level.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Parses the serialized form.
    pub fn from_bytes(bytes: &[u8]) -> Result<ComposedProof, MerkleError> {
        let Some((&count, mut rest)) = bytes.split_first() else {
            return Err(MerkleError::MalformedProof("empty composed proof"));
        };
        if count == 0 {
            return Err(MerkleError::MalformedProof("composed proof has no levels"));
        }
        let mut levels = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let Some(len_bytes) = rest.get(..4) else {
                return Err(MerkleError::MalformedProof("level header truncated"));
            };
            let len = u32::from_be_bytes(
                len_bytes
                    .try_into()
                    .map_err(|_| MerkleError::MalformedProof("level header truncated"))?,
            ) as usize;
            let Some(body) = rest.get(4..4 + len) else {
                return Err(MerkleError::MalformedProof("level body truncated"));
            };
            levels.push(MerkleProof::from_bytes(body)?);
            rest = rest.get(4 + len..).unwrap_or_default();
        }
        if !rest.is_empty() {
            return Err(MerkleError::MalformedProof("trailing bytes"));
        }
        Ok(ComposedProof { levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MerkleTree;

    /// Builds the cluster shape: entries per batch, batch roots per shard,
    /// shard roots under one cluster root; returns the composed proof for
    /// `(shard, batch, entry)` plus the cluster root.
    fn cluster_fixture(
        shards: usize,
        batches: usize,
        entries: usize,
        pick: (usize, usize, usize),
    ) -> (Vec<u8>, ComposedProof, Hash32) {
        let (s, b, e) = pick;
        let mut shard_roots = Vec::new();
        let mut picked = None;
        for shard in 0..shards {
            let mut batch_roots = Vec::new();
            for batch in 0..batches {
                let leaves: Vec<Vec<u8>> = (0..entries)
                    .map(|i| format!("s{shard}-b{batch}-e{i}").into_bytes())
                    .collect();
                let tree = MerkleTree::from_leaves(&leaves).unwrap();
                if shard == s && batch == b {
                    picked = Some((leaves[e].clone(), tree.prove(e).unwrap()));
                }
                batch_roots.push(tree.root());
            }
            let shard_leaves: Vec<Vec<u8>> =
                batch_roots.iter().map(|r| r.as_bytes().to_vec()).collect();
            let shard_tree = MerkleTree::from_leaves(&shard_leaves).unwrap();
            shard_roots.push((shard_tree.root(), shard_tree.prove(b).unwrap()));
        }
        let cluster_leaves: Vec<Vec<u8>> = shard_roots
            .iter()
            .map(|(r, _)| r.as_bytes().to_vec())
            .collect();
        let cluster_tree = MerkleTree::from_leaves(&cluster_leaves).unwrap();
        let (leaf, entry_proof) = picked.unwrap();
        let proof = ComposedProof {
            levels: vec![
                entry_proof,
                shard_roots[s].1.clone(),
                cluster_tree.prove(s).unwrap(),
            ],
        };
        (leaf, proof, cluster_tree.root())
    }

    #[test]
    fn three_level_proof_verifies() {
        for pick in [(0, 0, 0), (1, 2, 3), (3, 1, 4)] {
            let (leaf, proof, root) = cluster_fixture(4, 3, 5, pick);
            proof.verify(&leaf, &root).unwrap();
            assert_eq!(proof.index_at(2), Some(pick.0 as u64), "shard index");
        }
    }

    #[test]
    fn mutated_level_fails() {
        let (leaf, proof, root) = cluster_fixture(4, 3, 5, (2, 1, 2));
        for level in 0..3 {
            for node in 0..proof.levels[level].path.len() {
                let mut bad = proof.clone();
                bad.levels[level].path[node].hash = Hash32([0xCC; 32]);
                assert!(
                    bad.verify(&leaf, &root).is_err(),
                    "mutation at level {level} node {node} must fail"
                );
            }
        }
    }

    #[test]
    fn cross_shard_swap_fails() {
        let (leaf_a, proof_a, root) = cluster_fixture(4, 3, 5, (0, 1, 2));
        let (_, proof_b, _) = cluster_fixture(4, 3, 5, (3, 1, 2));
        // Entry A with shard 3's upper levels: indexes and digests disagree.
        let franken = ComposedProof {
            levels: vec![
                proof_a.levels[0].clone(),
                proof_b.levels[1].clone(),
                proof_b.levels[2].clone(),
            ],
        };
        assert!(franken.verify(&leaf_a, &root).is_err());
    }

    #[test]
    fn empty_composed_proof_rejected() {
        let empty = ComposedProof { levels: vec![] };
        assert!(empty.compute_root(b"x").is_err());
        assert!(ComposedProof::from_bytes(&[0]).is_err());
        assert!(ComposedProof::from_bytes(&[]).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let (leaf, proof, root) = cluster_fixture(3, 2, 4, (1, 1, 3));
        let bytes = proof.to_bytes();
        assert_eq!(bytes.len(), proof.encoded_len());
        let parsed = ComposedProof::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, proof);
        parsed.verify(&leaf, &root).unwrap();
        // Truncations must be rejected, never panic.
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(ComposedProof::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(ComposedProof::from_bytes(&padded).is_err());
    }
}
