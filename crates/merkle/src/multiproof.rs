//! Range (multi-)proofs for auditor scans.
//!
//! An auditor reading a contiguous range of entries from one batch would
//! waste bandwidth on per-leaf proofs: adjacent leaves share most of their
//! sibling paths. A [`RangeProof`] carries each needed sibling exactly once;
//! verification reconstructs the root from the claimed leaf range plus the
//! sibling stream.

use wedge_crypto::hash::Hash32;

use crate::tree::{hash_leaf, hash_node, MerkleTree};
use crate::MerkleError;

/// A proof that a contiguous run of leaves belongs to a tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RangeProof {
    /// Index of the first proven leaf.
    pub start: u64,
    /// Number of proven leaves.
    pub count: u64,
    /// Total leaves in the tree (fixes the tree shape).
    pub leaf_count: u64,
    /// Sibling digests in deterministic (level-major, index-ascending)
    /// consumption order.
    pub siblings: Vec<Hash32>,
}

impl RangeProof {
    /// Generates a proof for leaves `[start, start + count)` of `tree`.
    pub fn generate(
        tree: &MerkleTree,
        start: usize,
        count: usize,
    ) -> Result<RangeProof, MerkleError> {
        let leaf_count = tree.leaf_count();
        if count == 0 {
            return Err(MerkleError::EmptyRange);
        }
        if start + count > leaf_count {
            return Err(MerkleError::LeafOutOfRange {
                index: start + count - 1,
                leaf_count,
            });
        }
        let mut siblings = Vec::new();
        let mut lo = start;
        let mut hi = start + count;
        let mut depth = 0;
        let mut size = leaf_count;
        while size > 1 {
            // lint: allow(panic) — `depth`/`size` track the builder's
            // reduction exactly, so every visited level exists in the tree
            let level = tree.level(depth).expect("level exists");
            debug_assert_eq!(level.len(), size);
            let parent_lo = lo / 2;
            let parent_hi = hi.div_ceil(2);
            for p in parent_lo..parent_hi {
                for c in [2 * p, 2 * p + 1] {
                    if c >= size {
                        continue; // promoted odd node: no right child
                    }
                    let covered = c >= lo && c < hi;
                    if !covered {
                        siblings.push(level[c]);
                    }
                }
            }
            lo = parent_lo;
            hi = parent_hi;
            size = size / 2 + (size & 1);
            depth += 1;
        }
        Ok(RangeProof {
            start: start as u64,
            count: count as u64,
            leaf_count: leaf_count as u64,
            siblings,
        })
    }

    /// Recomputes the root implied by `leaf_data` (the claimed range
    /// contents, in order) under this proof.
    pub fn compute_root<D: AsRef<[u8]>>(&self, leaf_data: &[D]) -> Result<Hash32, MerkleError> {
        if leaf_data.len() as u64 != self.count {
            return Err(MerkleError::MalformedProof("range length mismatch"));
        }
        if self.count == 0 || self.start + self.count > self.leaf_count {
            return Err(MerkleError::MalformedProof("range out of bounds"));
        }
        let mut covered: Vec<Hash32> = leaf_data.iter().map(|d| hash_leaf(d.as_ref())).collect();
        let mut lo = self.start as usize;
        let mut hi = lo + self.count as usize;
        let mut size = self.leaf_count as usize;
        let mut stream = self.siblings.iter();
        while size > 1 {
            let parent_lo = lo / 2;
            let parent_hi = hi.div_ceil(2);
            let mut next = Vec::with_capacity(parent_hi - parent_lo);
            for p in parent_lo..parent_hi {
                let mut children: [Option<Hash32>; 2] = [None, None];
                for (slot, c) in children.iter_mut().zip([2 * p, 2 * p + 1]) {
                    if c >= size {
                        continue;
                    }
                    let h = if c >= lo && c < hi {
                        covered[c - lo]
                    } else {
                        *stream
                            .next()
                            .ok_or(MerkleError::MalformedProof("sibling stream exhausted"))?
                    };
                    *slot = Some(h);
                }
                let parent = match children {
                    [Some(l), Some(r)] => hash_node(&l, &r),
                    [Some(l), None] => l, // promoted odd node
                    _ => return Err(MerkleError::MalformedProof("missing left child")),
                };
                next.push(parent);
            }
            covered = next;
            lo = parent_lo;
            hi = parent_hi;
            size = size / 2 + (size & 1);
        }
        if stream.next().is_some() {
            return Err(MerkleError::MalformedProof("extra siblings"));
        }
        Ok(covered[0])
    }

    /// Verifies the claimed range against a trusted root.
    pub fn verify<D: AsRef<[u8]>>(
        &self,
        leaf_data: &[D],
        root: &Hash32,
    ) -> Result<(), MerkleError> {
        let computed = self.compute_root(leaf_data)?;
        if computed == *root {
            Ok(())
        } else {
            Err(MerkleError::RootMismatch {
                computed,
                expected: *root,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("audit-{i}").into_bytes()).collect()
    }

    #[test]
    fn full_range_verifies_with_no_siblings() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let proof = RangeProof::generate(&tree, 0, 8).unwrap();
        assert!(proof.siblings.is_empty());
        proof.verify(&data, &tree.root()).unwrap();
    }

    #[test]
    fn all_subranges_verify() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 33] {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data).unwrap();
            let root = tree.root();
            for start in 0..n {
                for count in 1..=(n - start) {
                    let proof = RangeProof::generate(&tree, start, count).unwrap();
                    proof
                        .verify(&data[start..start + count], &root)
                        .unwrap_or_else(|e| panic!("n={n} start={start} count={count}: {e}"));
                }
            }
        }
    }

    #[test]
    fn tampered_entry_fails() {
        let data = leaves(20);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let proof = RangeProof::generate(&tree, 4, 6).unwrap();
        let mut window: Vec<Vec<u8>> = data[4..10].to_vec();
        window[2] = b"forged".to_vec();
        assert!(proof.verify(&window, &tree.root()).is_err());
    }

    #[test]
    fn shifted_range_fails() {
        // Claiming leaves 5..11 under a proof for 4..10 must fail.
        let data = leaves(20);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let proof = RangeProof::generate(&tree, 4, 6).unwrap();
        assert!(proof.verify(&data[5..11], &tree.root()).is_err());
    }

    #[test]
    fn wrong_length_rejected() {
        let data = leaves(10);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let proof = RangeProof::generate(&tree, 0, 4).unwrap();
        assert!(matches!(
            proof.verify(&data[0..5], &tree.root()),
            Err(MerkleError::MalformedProof(_))
        ));
    }

    #[test]
    fn empty_or_oob_range_rejected() {
        let tree = MerkleTree::from_leaves(&leaves(4)).unwrap();
        assert!(matches!(
            RangeProof::generate(&tree, 0, 0),
            Err(MerkleError::EmptyRange)
        ));
        assert!(RangeProof::generate(&tree, 2, 3).is_err());
    }

    #[test]
    fn truncated_sibling_stream_rejected() {
        let data = leaves(16);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let mut proof = RangeProof::generate(&tree, 3, 2).unwrap();
        proof.siblings.pop();
        assert!(proof.verify(&data[3..5], &tree.root()).is_err());
    }

    #[test]
    fn extra_siblings_rejected() {
        let data = leaves(16);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let mut proof = RangeProof::generate(&tree, 3, 2).unwrap();
        proof.siblings.push(Hash32([1; 32]));
        assert!(proof.verify(&data[3..5], &tree.root()).is_err());
    }

    #[test]
    fn range_proof_smaller_than_individual_proofs() {
        let data = leaves(1024);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let range = RangeProof::generate(&tree, 100, 200).unwrap();
        let individual: usize = (100..300).map(|i| tree.prove(i).unwrap().path.len()).sum();
        assert!(range.siblings.len() * 4 < individual);
    }
}
