//! # wedge-merkle
//!
//! Merkle tree substrate for WedgeBlock (paper §2.1): batch digests
//! (`MRoot`), per-leaf inclusion proofs for stage-1 responses, and range
//! multiproofs for auditor scans.
//!
//! ```
//! use wedge_merkle::{MerkleTree, RangeProof};
//!
//! let batch = vec![b"op-1".to_vec(), b"op-2".to_vec(), b"op-3".to_vec()];
//! let tree = MerkleTree::from_leaves(&batch).unwrap();
//! let root = tree.root();
//!
//! // Per-leaf proof (stage-1 response):
//! let proof = tree.prove(1).unwrap();
//! proof.verify(b"op-2", &root).unwrap();
//!
//! // Range proof (auditor):
//! let scan = RangeProof::generate(&tree, 0, 3).unwrap();
//! scan.verify(&batch, &root).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod composed;
mod multiproof;
mod proof;
mod tree;

pub use builder::TreeBuilder;
pub use composed::ComposedProof;
pub use multiproof::RangeProof;
pub use proof::{MerkleProof, ProofNode, Side};
pub use tree::{hash_leaf, hash_leaves, hash_node, hash_node_x4, MerkleTree};

use wedge_crypto::hash::Hash32;

/// Errors for tree construction and proof verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MerkleError {
    /// A tree cannot be built over zero leaves.
    EmptyTree,
    /// A range proof over zero leaves is meaningless.
    EmptyRange,
    /// A leaf index exceeded the tree size.
    LeafOutOfRange {
        /// Offending index.
        index: usize,
        /// Leaves in the tree.
        leaf_count: usize,
    },
    /// The recomputed root did not match the trusted root.
    RootMismatch {
        /// Root recomputed from the proof.
        computed: Hash32,
        /// The trusted root.
        expected: Hash32,
    },
    /// A serialized proof was structurally invalid.
    MalformedProof(&'static str),
}

impl core::fmt::Display for MerkleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MerkleError::EmptyTree => write!(f, "cannot build a Merkle tree over zero leaves"),
            MerkleError::EmptyRange => write!(f, "range proof over zero leaves"),
            MerkleError::LeafOutOfRange { index, leaf_count } => {
                write!(f, "leaf index {index} out of range for {leaf_count} leaves")
            }
            MerkleError::RootMismatch { computed, expected } => {
                write!(f, "root mismatch: computed {computed}, expected {expected}")
            }
            MerkleError::MalformedProof(what) => write!(f, "malformed proof: {what}"),
        }
    }
}

impl std::error::Error for MerkleError {}
