//! Incremental tree construction.
//!
//! The batcher accumulates entries one at a time; [`TreeBuilder`] lets it
//! hash each leaf as it arrives (spreading the hashing cost across the
//! batch window instead of paying it all at flush time) and then build the
//! tree from the precomputed leaf hashes.

use wedge_crypto::hash::Hash32;

use crate::tree::{hash_leaf, MerkleTree};
use crate::MerkleError;

/// Accumulates leaf hashes incrementally, then builds a [`MerkleTree`].
#[derive(Clone, Debug, Default)]
pub struct TreeBuilder {
    hashes: Vec<Hash32>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> TreeBuilder {
        TreeBuilder::default()
    }

    /// Pre-allocates for `capacity` leaves (use the configured batch size).
    pub fn with_capacity(capacity: usize) -> TreeBuilder {
        TreeBuilder {
            hashes: Vec::with_capacity(capacity),
        }
    }

    /// Hashes and appends one leaf, returning its index.
    pub fn push(&mut self, leaf_data: &[u8]) -> usize {
        self.hashes.push(hash_leaf(leaf_data));
        self.hashes.len() - 1
    }

    /// Appends a precomputed leaf hash.
    pub fn push_hash(&mut self, hash: Hash32) -> usize {
        self.hashes.push(hash);
        self.hashes.len() - 1
    }

    /// Leaves accumulated so far.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when no leaves have been pushed.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Consumes the builder, producing the tree.
    pub fn build(self) -> Result<MerkleTree, MerkleError> {
        MerkleTree::from_leaf_hashes(self.hashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_construction() {
        let data: Vec<Vec<u8>> = (0..37).map(|i| format!("leaf-{i}").into_bytes()).collect();
        let mut builder = TreeBuilder::with_capacity(data.len());
        for (i, leaf) in data.iter().enumerate() {
            assert_eq!(builder.push(leaf), i);
        }
        assert_eq!(builder.len(), 37);
        let incremental = builder.build().unwrap();
        let batch = MerkleTree::from_leaves(&data).unwrap();
        assert_eq!(incremental.root(), batch.root());
        // Proofs agree too.
        let p1 = incremental.prove(20).unwrap();
        p1.verify(&data[20], &batch.root()).unwrap();
    }

    #[test]
    fn mixed_push_and_push_hash() {
        let mut builder = TreeBuilder::new();
        builder.push(b"raw");
        builder.push_hash(hash_leaf(b"prehashed"));
        let tree = builder.build().unwrap();
        let reference = MerkleTree::from_leaves(&[b"raw".as_slice(), b"prehashed"]).unwrap();
        assert_eq!(tree.root(), reference.root());
    }

    #[test]
    fn empty_builder_fails_cleanly() {
        assert!(matches!(
            TreeBuilder::new().build(),
            Err(MerkleError::EmptyTree)
        ));
        assert!(TreeBuilder::new().is_empty());
    }
}
