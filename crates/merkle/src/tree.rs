//! Merkle tree construction (paper §2.1).
//!
//! The tree is built over the hashes of a batch's data objects; the root
//! (`MRoot`) is the digest committed on-chain by stage-2 commitment. All
//! levels are retained so per-leaf proof generation is O(log n) with no
//! rehashing — the hot path for stage-1 responses.
//!
//! Hashing is domain-separated (`0x00 || data` for leaves, `0x01 || l || r`
//! for internal nodes) to rule out second-preimage splices between levels.
//! An odd trailing node is promoted unchanged to the next level.

use wedge_crypto::hash::{
    keccak256_batch_prefixed, keccak256_prefixed, keccak256_x4_prefixed, Hash32,
};

use crate::proof::{MerkleProof, ProofNode, Side};
use crate::MerkleError;

/// Leaves per parallel work item: big enough that each pool task runs
/// several ×4 permutation groups, small enough to spread across workers.
const LEAF_GROUP: usize = 32;

/// Domain tag for leaf hashes.
pub(crate) const LEAF_TAG: u8 = 0x00;
/// Domain tag for internal-node hashes.
pub(crate) const NODE_TAG: u8 = 0x01;

/// Hashes a leaf's raw data.
///
/// The tagged message `0x00 || data` takes the fused single-permutation
/// path whenever it fits inside the Keccak rate (any leaf under 135 bytes
/// — every fixed digest in the workspace), falling back to the streaming
/// sponge above that.
pub fn hash_leaf(data: &[u8]) -> Hash32 {
    Hash32(keccak256_prefixed(&[LEAF_TAG], data))
}

/// Hashes two child digests into their parent.
///
/// The 65-byte preimage `0x01 || left || right` is always sub-rate, so
/// this is exactly one Keccak permutation — no sponge state machine.
pub fn hash_node(left: &Hash32, right: &Hash32) -> Hash32 {
    let mut buf = [0u8; 64];
    let (l, r) = buf.split_at_mut(32);
    l.copy_from_slice(left.as_bytes());
    r.copy_from_slice(right.as_bytes());
    Hash32(keccak256_prefixed(&[NODE_TAG], &buf))
}

/// Hashes four sibling pairs (eight child digests, `pairs.len() == 8`)
/// with one ×4 lane-interleaved permutation — four parents for the price
/// of roughly one scalar [`hash_node`]. Byte-identical to calling
/// [`hash_node`] on each pair.
pub fn hash_node_x4(pairs: &[Hash32]) -> [Hash32; 4] {
    debug_assert_eq!(pairs.len(), 8, "hash_node_x4 takes four sibling pairs");
    let mut bufs = [[0u8; 64]; 4];
    for (buf, pair) in bufs.iter_mut().zip(pairs.chunks_exact(2)) {
        let (l, r) = buf.split_at_mut(32);
        l.copy_from_slice(pair[0].as_bytes());
        r.copy_from_slice(pair[1].as_bytes());
    }
    let d = keccak256_x4_prefixed(&[NODE_TAG], [&bufs[0], &bufs[1], &bufs[2], &bufs[3]]);
    [Hash32(d[0]), Hash32(d[1]), Hash32(d[2]), Hash32(d[3])]
}

/// Hashes a slice of raw leaves through the ×4 batch path (groups of four
/// same-block-count leaves per permutation, scalar remainder), preserving
/// order. Byte-identical to mapping [`hash_leaf`].
pub fn hash_leaves<D: AsRef<[u8]>>(leaves: &[D]) -> Vec<Hash32> {
    let refs: Vec<&[u8]> = leaves.iter().map(|d| d.as_ref()).collect();
    keccak256_batch_prefixed(&[LEAF_TAG], &refs)
}

/// Folds an even-length run of sibling nodes into their parents: full
/// octets (four pairs) go through the ×4 permutation, the remaining ≤ 3
/// pairs through scalar [`hash_node`]. This is the shared level-fold core
/// of the serial and pool-parallel builders.
pub(crate) fn fold_pairs(nodes: &[Hash32]) -> Vec<Hash32> {
    debug_assert!(
        nodes.len().is_multiple_of(2),
        "fold_pairs takes whole pairs"
    );
    let mut out = Vec::with_capacity(nodes.len() / 2);
    let mut octets = nodes.chunks_exact(8);
    for oct in octets.by_ref() {
        out.extend_from_slice(&hash_node_x4(oct));
    }
    for pair in octets.remainder().chunks_exact(2) {
        out.push(hash_node(&pair[0], &pair[1]));
    }
    out
}

/// An immutable Merkle tree with all levels retained.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes; the last level has exactly one node (the
    /// root).
    levels: Vec<Vec<Hash32>>,
}

impl MerkleTree {
    /// Builds a tree from raw leaf data.
    ///
    /// Returns [`MerkleError::EmptyTree`] for an empty batch — WedgeBlock
    /// never commits an empty log position.
    pub fn from_leaves<D: AsRef<[u8]>>(leaves: &[D]) -> Result<MerkleTree, MerkleError> {
        MerkleTree::from_leaf_hashes(hash_leaves(leaves))
    }

    /// Builds a tree from precomputed leaf hashes.
    pub fn from_leaf_hashes(hashes: Vec<Hash32>) -> Result<MerkleTree, MerkleError> {
        if hashes.is_empty() {
            return Err(MerkleError::EmptyTree);
        }
        let mut levels = Vec::new();
        let mut current = hashes;
        while current.len() > 1 {
            // Fold the even prefix (×4 octets + scalar remainder pairs);
            // an odd trailing node is promoted unchanged.
            let even_len = current.len() & !1;
            let (even, odd) = current.split_at(even_len);
            let mut next = fold_pairs(even);
            if let [promoted] = odd {
                next.push(*promoted);
            }
            levels.push(current);
            current = next;
        }
        levels.push(current);
        Ok(MerkleTree { levels })
    }

    /// Builds a tree from raw leaf data, hashing leaves and interior
    /// levels on `pool` when a level holds at least `cutoff` nodes.
    ///
    /// Produces a tree **bit-identical** to [`MerkleTree::from_leaves`]:
    /// same levels, same odd-node promotion, same root, same proofs. The
    /// cutoff exists because below a few hundred nodes the serial builder
    /// wins; `usize::MAX` forces the serial path through the same API.
    pub fn from_leaves_parallel<D: AsRef<[u8]> + Sync>(
        leaves: &[D],
        pool: &wedge_pool::WorkPool,
        cutoff: usize,
    ) -> Result<MerkleTree, MerkleError> {
        MerkleTree::from_leaves_parallel_counted(leaves, pool, cutoff).map(|(tree, _)| tree)
    }

    /// [`MerkleTree::from_leaves_parallel`] plus the number of parallel
    /// chunks dispatched (0 means the build ran fully serial) — the raw
    /// material for the node's `merkle_par_chunks` stat.
    pub fn from_leaves_parallel_counted<D: AsRef<[u8]> + Sync>(
        leaves: &[D],
        pool: &wedge_pool::WorkPool,
        cutoff: usize,
    ) -> Result<(MerkleTree, u64), MerkleError> {
        if leaves.is_empty() {
            return Err(MerkleError::EmptyTree);
        }
        let mut chunks = 0u64;
        let hashes: Vec<Hash32> = if leaves.len() >= cutoff.max(2) && pool.workers() > 1 {
            // Map over *groups* of leaves so each worker drives the ×4
            // batch path instead of one scalar digest per item. Groups
            // are contiguous and order-preserving, so the concatenation
            // is byte-identical to the serial hash_leaves.
            let groups: Vec<&[D]> = leaves.chunks(LEAF_GROUP).collect();
            chunks += pool.planned_chunks(groups.len()) as u64;
            pool.map(&groups, |group| hash_leaves(group)).concat()
        } else {
            hash_leaves(leaves)
        };
        let (tree, level_chunks) = MerkleTree::build_parallel(hashes, pool, cutoff);
        Ok((tree, chunks + level_chunks))
    }

    /// Builds a tree from precomputed leaf hashes, constructing each
    /// interior level on `pool` while the level holds at least `cutoff`
    /// nodes. Bit-identical to [`MerkleTree::from_leaf_hashes`].
    pub fn from_leaf_hashes_parallel(
        hashes: Vec<Hash32>,
        pool: &wedge_pool::WorkPool,
        cutoff: usize,
    ) -> Result<MerkleTree, MerkleError> {
        if hashes.is_empty() {
            return Err(MerkleError::EmptyTree);
        }
        let (tree, _) = MerkleTree::build_parallel(hashes, pool, cutoff);
        Ok(tree)
    }

    /// Level-by-level construction mirroring [`MerkleTree::from_leaf_hashes`]
    /// exactly: full pairs are hashed (in parallel above the cutoff), an odd
    /// trailing node is promoted unchanged. Returns the tree and how many
    /// parallel chunks were dispatched across all levels.
    fn build_parallel(
        hashes: Vec<Hash32>,
        pool: &wedge_pool::WorkPool,
        cutoff: usize,
    ) -> (MerkleTree, u64) {
        let cutoff = cutoff.max(2);
        let mut chunks_dispatched = 0u64;
        let mut levels = Vec::new();
        let mut current = hashes;
        while current.len() > 1 {
            let even_len = current.len() & !1;
            let (even, odd) = current.split_at(even_len);
            let mut next = if current.len() >= cutoff && pool.workers() > 1 {
                // Map over octets (four sibling pairs) so each worker runs
                // the ×4 node permutation; an even-length ragged tail
                // chunk folds its pairs serially inside fold_pairs.
                let octets: Vec<&[Hash32]> = even.chunks(8).collect();
                chunks_dispatched += pool.planned_chunks(octets.len()) as u64;
                pool.map(&octets, |oct| fold_pairs(oct)).concat()
            } else {
                fold_pairs(even)
            };
            if let [promoted] = odd {
                // Odd trailing node is promoted unchanged, as in the serial
                // builder.
                next.push(*promoted);
            }
            levels.push(current);
            current = next;
        }
        levels.push(current);
        (MerkleTree { levels }, chunks_dispatched)
    }

    /// The Merkle root (`MRoot`).
    pub fn root(&self) -> Hash32 {
        match self.levels.last().and_then(|top| top.first()) {
            Some(h) => *h,
            None => {
                // lint: allow(panic) — constructors reject empty input, so a
                // tree always carries at least the leaf level
                unreachable!("tree has a root level")
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The hash of leaf `index`.
    pub fn leaf_hash(&self, index: usize) -> Option<Hash32> {
        self.levels[0].get(index).copied()
    }

    /// Tree height (number of levels including the leaf level).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Generates the inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Result<MerkleProof, MerkleError> {
        let leaf_count = self.leaf_count();
        if index >= leaf_count {
            return Err(MerkleError::LeafOutOfRange { index, leaf_count });
        }
        let mut path = Vec::with_capacity(self.height());
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = i ^ 1;
            if sibling < level.len() {
                let side = if sibling < i { Side::Left } else { Side::Right };
                path.push(ProofNode {
                    hash: level[sibling],
                    side,
                });
            }
            // Promoted odd nodes keep their position at index/2 with no
            // sibling contribution.
            i /= 2;
        }
        Ok(MerkleProof {
            leaf_index: index as u64,
            leaf_count: leaf_count as u64,
            path,
        })
    }

    /// Generates proofs for every leaf (the stage-1 response fan-out).
    pub fn prove_all(&self) -> Vec<MerkleProof> {
        (0..self.leaf_count())
            // lint: allow(panic) — iterating 0..leaf_count keeps every index
            // in range by construction
            .map(|i| self.prove(i).expect("index in range"))
            .collect()
    }

    /// Read access to a whole level (testing/inspection).
    pub fn level(&self, depth: usize) -> Option<&[Hash32]> {
        self.levels.get(depth).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            MerkleTree::from_leaves::<&[u8]>(&[]),
            Err(MerkleError::EmptyTree)
        ));
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves(&[b"only".as_slice()]).unwrap();
        assert_eq!(tree.root(), hash_leaf(b"only"));
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn two_leaves_root() {
        let tree = MerkleTree::from_leaves(&[b"a".as_slice(), b"b"]).unwrap();
        let expect = hash_node(&hash_leaf(b"a"), &hash_leaf(b"b"));
        assert_eq!(tree.root(), expect);
    }

    #[test]
    fn odd_leaf_promotion() {
        // Three leaves: root = H(H(l0,l1), l2) with l2 promoted.
        let tree = MerkleTree::from_leaves(&leaves(3)).unwrap();
        let l: Vec<Hash32> = leaves(3).iter().map(|d| hash_leaf(d)).collect();
        let expect = hash_node(&hash_node(&l[0], &l[1]), &l[2]);
        assert_eq!(tree.root(), expect);
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = MerkleTree::from_leaves(&leaves(8)).unwrap();
        for i in 0..8 {
            let mut data = leaves(8);
            data[i].push(b'!');
            let tree = MerkleTree::from_leaves(&data).unwrap();
            assert_ne!(tree.root(), base.root(), "leaf {i} change must alter root");
        }
    }

    #[test]
    fn root_changes_with_order() {
        // Order captured by concatenation (paper §2.1).
        let a = MerkleTree::from_leaves(&[b"x".as_slice(), b"y"]).unwrap();
        let b = MerkleTree::from_leaves(&[b"y".as_slice(), b"x"]).unwrap();
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf holding exactly "0x01 || h || h" must not collide with the
        // internal node over (h, h).
        let h = hash_leaf(b"inner");
        let mut fake = vec![NODE_TAG];
        fake.extend_from_slice(h.as_bytes());
        fake.extend_from_slice(h.as_bytes());
        assert_ne!(hash_leaf(&fake), hash_node(&h, &h));
    }

    #[test]
    fn heights() {
        for (n, h) in [(1, 1), (2, 2), (3, 3), (4, 3), (5, 4), (1000, 11)] {
            let tree = MerkleTree::from_leaves(&leaves(n)).unwrap();
            assert_eq!(tree.height(), h, "n = {n}");
        }
    }

    #[test]
    fn out_of_range_proof_rejected() {
        let tree = MerkleTree::from_leaves(&leaves(4)).unwrap();
        assert!(matches!(
            tree.prove(4),
            Err(MerkleError::LeafOutOfRange {
                index: 4,
                leaf_count: 4
            })
        ));
    }
}
