//! Property-based tests: any leaf of any tree proves against the root; any
//! tampering is detected; range proofs agree with per-leaf proofs.

use proptest::prelude::*;
use wedge_merkle::{MerkleProof, MerkleTree, RangeProof};

fn arb_leaves() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_leaf_proves(leaves in arb_leaves(), idx_seed in any::<usize>()) {
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let root = tree.root();
        let i = idx_seed % leaves.len();
        let proof = tree.prove(i).unwrap();
        prop_assert!(proof.verify(&leaves[i], &root).is_ok());
    }

    #[test]
    fn tampered_leaf_detected(leaves in arb_leaves(), idx_seed in any::<usize>(), extra in any::<u8>()) {
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let i = idx_seed % leaves.len();
        let proof = tree.prove(i).unwrap();
        let mut forged = leaves[i].clone();
        forged.push(extra);
        prop_assert!(proof.verify(&forged, &tree.root()).is_err());
    }

    #[test]
    fn proof_bytes_roundtrip(leaves in arb_leaves(), idx_seed in any::<usize>()) {
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let i = idx_seed % leaves.len();
        let proof = tree.prove(i).unwrap();
        let parsed = MerkleProof::from_bytes(&proof.to_bytes()).unwrap();
        prop_assert_eq!(parsed, proof);
    }

    #[test]
    fn reordering_changes_root(leaves in arb_leaves(), a_seed in any::<usize>(), b_seed in any::<usize>()) {
        prop_assume!(leaves.len() >= 2);
        let a = a_seed % leaves.len();
        let b = b_seed % leaves.len();
        prop_assume!(a != b && leaves[a] != leaves[b]);
        let root = MerkleTree::from_leaves(&leaves).unwrap().root();
        let mut swapped = leaves.clone();
        swapped.swap(a, b);
        let swapped_root = MerkleTree::from_leaves(&swapped).unwrap().root();
        prop_assert_ne!(root, swapped_root);
    }

    #[test]
    fn range_proofs_verify(leaves in arb_leaves(), s_seed in any::<usize>(), c_seed in any::<usize>()) {
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let start = s_seed % leaves.len();
        let count = 1 + c_seed % (leaves.len() - start);
        let proof = RangeProof::generate(&tree, start, count).unwrap();
        prop_assert!(proof.verify(&leaves[start..start + count], &tree.root()).is_ok());
    }

    #[test]
    fn range_and_leaf_proofs_agree(leaves in arb_leaves(), s_seed in any::<usize>()) {
        // A range of length 1 must accept exactly the same (leaf, root) pair
        // as the per-leaf proof.
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let i = s_seed % leaves.len();
        let leaf_root = tree.prove(i).unwrap().compute_root(&leaves[i]);
        let range_root = RangeProof::generate(&tree, i, 1)
            .unwrap()
            .compute_root(&leaves[i..i + 1])
            .unwrap();
        prop_assert_eq!(leaf_root, range_root);
        prop_assert_eq!(leaf_root, tree.root());
    }
}
