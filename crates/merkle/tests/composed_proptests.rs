//! Property-based tests for composed (multi-level) proofs in the cluster
//! shape: entry → batch root → shard root → cluster root. Any honest pick
//! verifies; any mutated sibling, wrong shard index, or cross-shard level
//! swap is rejected.

use proptest::prelude::*;
use wedge_crypto::hash::Hash32;
use wedge_merkle::{ComposedProof, MerkleTree};

/// The full cluster fixture: per-shard batch trees folded into shard
/// trees folded into one cluster tree.
struct ClusterShape {
    /// `leaves[shard][batch][entry]`
    leaves: Vec<Vec<Vec<Vec<u8>>>>,
    shard_trees: Vec<MerkleTree>,
    batch_trees: Vec<Vec<MerkleTree>>,
    cluster_tree: MerkleTree,
}

impl ClusterShape {
    fn build(shards: usize, batches: usize, entries: usize, salt: u8) -> ClusterShape {
        let mut leaves = Vec::new();
        let mut batch_trees = Vec::new();
        let mut shard_trees = Vec::new();
        for shard in 0..shards {
            let mut shard_leaves = Vec::new();
            let mut shard_batches = Vec::new();
            let mut batch_roots = Vec::new();
            for batch in 0..batches {
                let entry_leaves: Vec<Vec<u8>> = (0..entries)
                    .map(|i| format!("{salt}-s{shard}-b{batch}-e{i}").into_bytes())
                    .collect();
                let tree = MerkleTree::from_leaves(&entry_leaves).unwrap();
                batch_roots.push(tree.root().as_bytes().to_vec());
                shard_leaves.push(entry_leaves);
                shard_batches.push(tree);
            }
            shard_trees.push(MerkleTree::from_leaves(&batch_roots).unwrap());
            leaves.push(shard_leaves);
            batch_trees.push(shard_batches);
        }
        let cluster_leaves: Vec<Vec<u8>> = shard_trees
            .iter()
            .map(|t| t.root().as_bytes().to_vec())
            .collect();
        ClusterShape {
            leaves,
            shard_trees,
            batch_trees,
            cluster_tree: MerkleTree::from_leaves(&cluster_leaves).unwrap(),
        }
    }

    fn prove(&self, shard: usize, batch: usize, entry: usize) -> (Vec<u8>, ComposedProof) {
        let proof = ComposedProof {
            levels: vec![
                self.batch_trees[shard][batch].prove(entry).unwrap(),
                self.shard_trees[shard].prove(batch).unwrap(),
                self.cluster_tree.prove(shard).unwrap(),
            ],
        };
        (self.leaves[shard][batch][entry].clone(), proof)
    }
}

/// (shards, batches, entries) dimensions plus a pick inside them.
fn arb_shape() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize, u8)> {
    (
        (1usize..6, 1usize..5, 1usize..9),
        (any::<usize>(), any::<usize>(), any::<usize>(), any::<u8>()),
    )
        .prop_map(|((s, b, e), (ps, pb, pe, salt))| (s, b, e, ps % s, pb % b, pe % e, salt))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn honest_composed_proof_verifies(shape_pick in arb_shape()) {
        let (s, b, e, ps, pb, pe, salt) = shape_pick;
        let shape = ClusterShape::build(s, b, e, salt);
        let (leaf, proof) = shape.prove(ps, pb, pe);
        prop_assert!(proof.verify(&leaf, &shape.cluster_tree.root()).is_ok());
        // The outermost level's index is the shard id — the binding the
        // cluster verifier checks against the claimed shard.
        prop_assert_eq!(proof.index_at(2), Some(ps as u64));
        // Round-trips through bytes without weakening.
        let parsed = ComposedProof::from_bytes(&proof.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &proof);
        prop_assert!(parsed.verify(&leaf, &shape.cluster_tree.root()).is_ok());
    }

    #[test]
    fn mutated_node_rejected(
        shape_pick in arb_shape(),
        level_seed in any::<usize>(),
        node_seed in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let (s, b, e, ps, pb, pe, salt) = shape_pick;
        let shape = ClusterShape::build(s, b, e, salt);
        let (leaf, proof) = shape.prove(ps, pb, pe);
        let level = level_seed % proof.levels.len();
        prop_assume!(!proof.levels[level].path.is_empty());
        let node = node_seed % proof.levels[level].path.len();
        let mut bad = proof.clone();
        let mut digest = *bad.levels[level].path[node].hash.as_bytes();
        digest[byte as usize % 32] ^= 0x01 | byte;
        bad.levels[level].path[node].hash = Hash32(digest);
        prop_assert!(bad.verify(&leaf, &shape.cluster_tree.root()).is_err());
    }

    #[test]
    fn wrong_shard_index_rejected(shape_pick in arb_shape(), off in any::<usize>()) {
        let (s, b, e, ps, pb, pe, salt) = shape_pick;
        prop_assume!(s >= 2);
        let shape = ClusterShape::build(s, b, e, salt);
        let (leaf, proof) = shape.prove(ps, pb, pe);
        // Claim a different shard's slot in the cluster tree: the proof's
        // top level is replaced by a valid proof for the *wrong* leaf index.
        let other = (ps + 1 + off % (s - 1)) % s;
        let mut bad = proof.clone();
        bad.levels[2] = shape.cluster_tree.prove(other).unwrap();
        prop_assert_eq!(bad.index_at(2), Some(other as u64));
        prop_assert!(bad.verify(&leaf, &shape.cluster_tree.root()).is_err());
    }

    #[test]
    fn cross_shard_swap_rejected(shape_pick in arb_shape(), off in any::<usize>()) {
        let (s, b, e, ps, pb, pe, salt) = shape_pick;
        prop_assume!(s >= 2);
        let shape = ClusterShape::build(s, b, e, salt);
        let (leaf, proof) = shape.prove(ps, pb, pe);
        let other = (ps + 1 + off % (s - 1)) % s;
        let (_, donor) = shape.prove(other, pb % shape.batch_trees[other].len().max(1), 0);
        // Entry from shard `ps` under shard `other`'s upper levels.
        let franken = ComposedProof {
            levels: vec![
                proof.levels[0].clone(),
                donor.levels[1].clone(),
                donor.levels[2].clone(),
            ],
        };
        prop_assert!(franken.verify(&leaf, &shape.cluster_tree.root()).is_err());
    }

    #[test]
    fn truncated_bytes_never_panic(shape_pick in arb_shape(), cut_seed in any::<usize>()) {
        let (s, b, e, ps, pb, pe, salt) = shape_pick;
        let shape = ClusterShape::build(s, b, e, salt);
        let (_, proof) = shape.prove(ps, pb, pe);
        let bytes = proof.to_bytes();
        let cut = cut_seed % bytes.len();
        prop_assert!(ComposedProof::from_bytes(&bytes[..cut]).is_err());
    }
}
