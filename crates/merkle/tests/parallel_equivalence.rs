//! Equivalence suite: the parallel Merkle builders must be *bit-identical*
//! to the serial builder — same root, same per-leaf proofs, same range
//! (multi-leaf) proofs — for every leaf count and every cutoff, including
//! non-power-of-two shapes and cutoffs that disable parallelism entirely.
//!
//! The parallel builder only changes *who* hashes each node, never *what*
//! is hashed; these tests are the executable statement of that claim.
//! Since the hashing-wall rework, *both* builders also route through the
//! ×4 interleaved and fused fixed-shape Keccak paths, so this suite now
//! additionally pins them (and the public `hash_leaf`/`hash_node`/
//! `hash_node_x4`/`hash_leaves` helpers) to a naive tree built directly on
//! the frozen `wedge_crypto::hash::reference` sponge.

use proptest::prelude::*;
use wedge_crypto::hash::{reference, Hash32};
use wedge_merkle::{hash_leaf, hash_leaves, hash_node, hash_node_x4, MerkleTree, RangeProof};
use wedge_pool::WorkPool;

/// Leaf digest computed straight on the frozen reference sponge.
fn ref_leaf(data: &[u8]) -> Hash32 {
    let mut msg = vec![0x00u8];
    msg.extend_from_slice(data);
    Hash32(reference::keccak256(&msg))
}

/// Node digest computed straight on the frozen reference sponge.
fn ref_node(left: &Hash32, right: &Hash32) -> Hash32 {
    let mut msg = vec![0x01u8];
    msg.extend_from_slice(left.as_bytes());
    msg.extend_from_slice(right.as_bytes());
    Hash32(reference::keccak256(&msg))
}

/// A naive Merkle root folded with the frozen reference hash only:
/// pairwise parents, odd node promoted.
fn ref_root(leaves: &[Vec<u8>]) -> Hash32 {
    let mut level: Vec<Hash32> = leaves.iter().map(|l| ref_leaf(l)).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut pairs = level.chunks_exact(2);
        for pair in pairs.by_ref() {
            next.push(ref_node(&pair[0], &pair[1]));
        }
        if let [odd] = pairs.remainder() {
            next.push(*odd);
        }
        level = next;
    }
    level[0]
}

/// Cutoffs exercised by every test: tiny (parallelism everywhere), odd and
/// prime (non-power-of-two chunk boundaries), mid-size, and `usize::MAX`
/// (parallel path fully disabled — must still equal serial).
const CUTOFFS: &[usize] = &[0, 2, 3, 7, 100, 256, usize::MAX];

fn leaves_of(count: usize, seed: u8) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let mut leaf = vec![seed; 1 + i % 37];
            leaf.extend_from_slice(&(i as u64).to_be_bytes());
            leaf
        })
        .collect()
}

fn assert_equivalent(leaves: &[Vec<u8>], pool: &WorkPool, cutoff: usize) {
    let serial = MerkleTree::from_leaves(leaves).unwrap();
    let parallel = MerkleTree::from_leaves_parallel(leaves, pool, cutoff).unwrap();

    // Roots bit-identical.
    assert_eq!(
        serial.root(),
        parallel.root(),
        "root mismatch at cutoff {cutoff}"
    );

    // Every level of the tree identical, not just the root.
    assert_eq!(serial.height(), parallel.height());
    for depth in 0..serial.height() {
        assert_eq!(
            serial.level(depth),
            parallel.level(depth),
            "level {depth} differs"
        );
    }

    // Per-leaf proofs identical and mutually verifiable.
    for (i, leaf) in leaves.iter().enumerate() {
        let sp = serial.prove(i).unwrap();
        let pp = parallel.prove(i).unwrap();
        assert_eq!(sp, pp, "proof for leaf {i} differs at cutoff {cutoff}");
        assert!(pp.verify(leaf, &serial.root()).is_ok());
    }
}

#[test]
fn fixed_shapes_match_serial() {
    let pool = WorkPool::new(4);
    // Leaf counts chosen to hit every structural case: single leaf, odd
    // carries at multiple levels, exact powers of two, and just past them.
    for &count in &[
        1usize, 2, 3, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100, 255, 256, 257, 1024,
    ] {
        let leaves = leaves_of(count, 0xA5);
        for &cutoff in CUTOFFS {
            assert_equivalent(&leaves, &pool, cutoff);
        }
    }
}

#[test]
fn prehashed_entry_point_matches_serial() {
    let pool = WorkPool::new(3);
    for &count in &[1usize, 6, 31, 257] {
        let leaves = leaves_of(count, 0x3C);
        let hashes: Vec<_> = leaves.iter().map(|l| wedge_merkle::hash_leaf(l)).collect();
        let serial = MerkleTree::from_leaf_hashes(hashes.clone()).unwrap();
        for &cutoff in CUTOFFS {
            let parallel =
                MerkleTree::from_leaf_hashes_parallel(hashes.clone(), &pool, cutoff).unwrap();
            assert_eq!(serial.root(), parallel.root());
        }
    }
}

#[test]
fn counted_builder_reports_zero_chunks_when_disabled() {
    let pool = WorkPool::new(4);
    let leaves = leaves_of(512, 0x11);
    let (_, chunks) = MerkleTree::from_leaves_parallel_counted(&leaves, &pool, usize::MAX).unwrap();
    assert_eq!(chunks, 0, "cutoff usize::MAX must never dispatch chunks");
    // With a single-worker pool the builder must also stay inline.
    let solo = WorkPool::new(1);
    let (_, chunks) = MerkleTree::from_leaves_parallel_counted(&leaves, &solo, 2).unwrap();
    assert_eq!(chunks, 0, "single-worker pool must never dispatch chunks");
}

#[test]
fn empty_leaves_rejected_like_serial() {
    let pool = WorkPool::new(4);
    let empty: Vec<Vec<u8>> = Vec::new();
    assert!(MerkleTree::from_leaves_parallel(&empty, &pool, 2).is_err());
    assert!(MerkleTree::from_leaf_hashes_parallel(Vec::new(), &pool, 2).is_err());
}

/// Satellite regression: `hash_leaf` and `hash_node` stay byte-identical
/// to the frozen reference sponge for every sub-rate payload length
/// (0..=136 covers the fused path and its boundary fallback), and
/// `hash_node_x4`/`hash_leaves` agree with their scalar counterparts.
#[test]
fn tagged_hashes_match_reference_across_lengths() {
    for len in 0..=136usize {
        let data: Vec<u8> = (0..len).map(|i| (i * 13 + len) as u8).collect();
        assert_eq!(hash_leaf(&data), ref_leaf(&data), "leaf len {len}");
    }
    let children: Vec<Hash32> = (0..8u8).map(|i| hash_leaf(&[i; 40])).collect();
    for pair in children.chunks_exact(2) {
        assert_eq!(hash_node(&pair[0], &pair[1]), ref_node(&pair[0], &pair[1]));
    }
    let x4 = hash_node_x4(&children);
    for (pair, parent) in children.chunks_exact(2).zip(x4.iter()) {
        assert_eq!(*parent, ref_node(&pair[0], &pair[1]), "x4 parent");
    }
    let raw: Vec<Vec<u8>> = (0..13usize).map(|i| vec![i as u8; i * 11]).collect();
    let batched = hash_leaves(&raw);
    for (leaf, digest) in raw.iter().zip(batched.iter()) {
        assert_eq!(*digest, ref_leaf(leaf), "batched leaf");
    }
}

/// Serial, pool-parallel, and the naive reference-hash fold all agree on
/// the root for structurally interesting shapes (×4 octet boundaries at
/// 8/9, ragged tails, odd promotions at several levels).
#[test]
fn roots_match_naive_reference_tree() {
    let pool = WorkPool::new(4);
    for &count in &[
        1usize, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 33, 100, 257,
    ] {
        let leaves = leaves_of(count, 0x77);
        let expect = ref_root(&leaves);
        assert_eq!(
            MerkleTree::from_leaves(&leaves).unwrap().root(),
            expect,
            "serial root, {count} leaves"
        );
        for &cutoff in CUTOFFS {
            assert_eq!(
                MerkleTree::from_leaves_parallel(&leaves, &pool, cutoff)
                    .unwrap()
                    .root(),
                expect,
                "parallel root, {count} leaves, cutoff {cutoff}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes: serial, parallel, and the naive reference tree all
    /// produce the same root (so the ×4/fixed paths can never skew the
    /// on-chain commitment), and proofs verify against it.
    #[test]
    fn random_roots_match_naive_reference(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..160), 1..200),
        cutoff_seed in any::<usize>(),
    ) {
        let pool = WorkPool::new(4);
        let cutoff = CUTOFFS[cutoff_seed % CUTOFFS.len()];
        let expect = ref_root(&leaves);
        let serial = MerkleTree::from_leaves(&leaves).unwrap();
        let parallel = MerkleTree::from_leaves_parallel(&leaves, &pool, cutoff).unwrap();
        prop_assert_eq!(serial.root(), expect);
        prop_assert_eq!(parallel.root(), expect);
    }

    #[test]
    fn random_leaves_roots_and_proofs_match(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..1024),
        cutoff_seed in any::<usize>(),
        idx_seed in any::<usize>(),
    ) {
        let pool = WorkPool::new(4);
        let cutoff = CUTOFFS[cutoff_seed % CUTOFFS.len()];
        let serial = MerkleTree::from_leaves(&leaves).unwrap();
        let parallel = MerkleTree::from_leaves_parallel(&leaves, &pool, cutoff).unwrap();
        prop_assert_eq!(serial.root(), parallel.root());

        let i = idx_seed % leaves.len();
        prop_assert_eq!(serial.prove(i).unwrap(), parallel.prove(i).unwrap());
    }

    #[test]
    fn random_range_proofs_match(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..300),
        cutoff_seed in any::<usize>(),
        s_seed in any::<usize>(),
        c_seed in any::<usize>(),
    ) {
        let pool = WorkPool::new(4);
        let cutoff = CUTOFFS[cutoff_seed % CUTOFFS.len()];
        let serial = MerkleTree::from_leaves(&leaves).unwrap();
        let parallel = MerkleTree::from_leaves_parallel(&leaves, &pool, cutoff).unwrap();

        let start = s_seed % leaves.len();
        let count = 1 + c_seed % (leaves.len() - start);
        let sp = RangeProof::generate(&serial, start, count).unwrap();
        let pp = RangeProof::generate(&parallel, start, count).unwrap();
        prop_assert_eq!(sp, pp.clone());
        prop_assert!(pp.verify(&leaves[start..start + count], &serial.root()).is_ok());
    }
}
