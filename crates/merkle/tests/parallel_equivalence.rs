//! Equivalence suite: the parallel Merkle builders must be *bit-identical*
//! to the serial builder — same root, same per-leaf proofs, same range
//! (multi-leaf) proofs — for every leaf count and every cutoff, including
//! non-power-of-two shapes and cutoffs that disable parallelism entirely.
//!
//! The parallel builder only changes *who* hashes each node, never *what*
//! is hashed; these tests are the executable statement of that claim.

use proptest::prelude::*;
use wedge_merkle::{MerkleTree, RangeProof};
use wedge_pool::WorkPool;

/// Cutoffs exercised by every test: tiny (parallelism everywhere), odd and
/// prime (non-power-of-two chunk boundaries), mid-size, and `usize::MAX`
/// (parallel path fully disabled — must still equal serial).
const CUTOFFS: &[usize] = &[0, 2, 3, 7, 100, 256, usize::MAX];

fn leaves_of(count: usize, seed: u8) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let mut leaf = vec![seed; 1 + i % 37];
            leaf.extend_from_slice(&(i as u64).to_be_bytes());
            leaf
        })
        .collect()
}

fn assert_equivalent(leaves: &[Vec<u8>], pool: &WorkPool, cutoff: usize) {
    let serial = MerkleTree::from_leaves(leaves).unwrap();
    let parallel = MerkleTree::from_leaves_parallel(leaves, pool, cutoff).unwrap();

    // Roots bit-identical.
    assert_eq!(
        serial.root(),
        parallel.root(),
        "root mismatch at cutoff {cutoff}"
    );

    // Every level of the tree identical, not just the root.
    assert_eq!(serial.height(), parallel.height());
    for depth in 0..serial.height() {
        assert_eq!(
            serial.level(depth),
            parallel.level(depth),
            "level {depth} differs"
        );
    }

    // Per-leaf proofs identical and mutually verifiable.
    for (i, leaf) in leaves.iter().enumerate() {
        let sp = serial.prove(i).unwrap();
        let pp = parallel.prove(i).unwrap();
        assert_eq!(sp, pp, "proof for leaf {i} differs at cutoff {cutoff}");
        assert!(pp.verify(leaf, &serial.root()).is_ok());
    }
}

#[test]
fn fixed_shapes_match_serial() {
    let pool = WorkPool::new(4);
    // Leaf counts chosen to hit every structural case: single leaf, odd
    // carries at multiple levels, exact powers of two, and just past them.
    for &count in &[
        1usize, 2, 3, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100, 255, 256, 257, 1024,
    ] {
        let leaves = leaves_of(count, 0xA5);
        for &cutoff in CUTOFFS {
            assert_equivalent(&leaves, &pool, cutoff);
        }
    }
}

#[test]
fn prehashed_entry_point_matches_serial() {
    let pool = WorkPool::new(3);
    for &count in &[1usize, 6, 31, 257] {
        let leaves = leaves_of(count, 0x3C);
        let hashes: Vec<_> = leaves.iter().map(|l| wedge_merkle::hash_leaf(l)).collect();
        let serial = MerkleTree::from_leaf_hashes(hashes.clone()).unwrap();
        for &cutoff in CUTOFFS {
            let parallel =
                MerkleTree::from_leaf_hashes_parallel(hashes.clone(), &pool, cutoff).unwrap();
            assert_eq!(serial.root(), parallel.root());
        }
    }
}

#[test]
fn counted_builder_reports_zero_chunks_when_disabled() {
    let pool = WorkPool::new(4);
    let leaves = leaves_of(512, 0x11);
    let (_, chunks) = MerkleTree::from_leaves_parallel_counted(&leaves, &pool, usize::MAX).unwrap();
    assert_eq!(chunks, 0, "cutoff usize::MAX must never dispatch chunks");
    // With a single-worker pool the builder must also stay inline.
    let solo = WorkPool::new(1);
    let (_, chunks) = MerkleTree::from_leaves_parallel_counted(&leaves, &solo, 2).unwrap();
    assert_eq!(chunks, 0, "single-worker pool must never dispatch chunks");
}

#[test]
fn empty_leaves_rejected_like_serial() {
    let pool = WorkPool::new(4);
    let empty: Vec<Vec<u8>> = Vec::new();
    assert!(MerkleTree::from_leaves_parallel(&empty, &pool, 2).is_err());
    assert!(MerkleTree::from_leaf_hashes_parallel(Vec::new(), &pool, 2).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_leaves_roots_and_proofs_match(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..1024),
        cutoff_seed in any::<usize>(),
        idx_seed in any::<usize>(),
    ) {
        let pool = WorkPool::new(4);
        let cutoff = CUTOFFS[cutoff_seed % CUTOFFS.len()];
        let serial = MerkleTree::from_leaves(&leaves).unwrap();
        let parallel = MerkleTree::from_leaves_parallel(&leaves, &pool, cutoff).unwrap();
        prop_assert_eq!(serial.root(), parallel.root());

        let i = idx_seed % leaves.len();
        prop_assert_eq!(serial.prove(i).unwrap(), parallel.prove(i).unwrap());
    }

    #[test]
    fn random_range_proofs_match(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..300),
        cutoff_seed in any::<usize>(),
        s_seed in any::<usize>(),
        c_seed in any::<usize>(),
    ) {
        let pool = WorkPool::new(4);
        let cutoff = CUTOFFS[cutoff_seed % CUTOFFS.len()];
        let serial = MerkleTree::from_leaves(&leaves).unwrap();
        let parallel = MerkleTree::from_leaves_parallel(&leaves, &pool, cutoff).unwrap();

        let start = s_seed % leaves.len();
        let count = 1 + c_seed % (leaves.len() - start);
        let sp = RangeProof::generate(&serial, start, count).unwrap();
        let pp = RangeProof::generate(&parallel, start, count).unwrap();
        prop_assert_eq!(sp, pp.clone());
        prop_assert!(pp.verify(&leaves[start..start + count], &serial.root()).is_ok());
    }
}
