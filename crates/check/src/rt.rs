//! The deterministic scheduler and DFS explorer.
//!
//! Stateless model checking by re-execution: the model closure runs many
//! times on real OS threads, but only one model thread is ever unparked at
//! a time. Every visible operation (lock, unlock, channel op, atomic op,
//! endpoint drop, join, spawn start, nondet choice) is a *scheduling
//! point*: the thread parks, the coordinator — running on the caller's
//! thread — picks who goes next. The sequence of picks is a schedule; the
//! explorer walks the tree of schedules depth-first, replaying a recorded
//! prefix and extending it at the frontier, with sleep-set pruning
//! (Godefroid) to skip commuting interleavings it has already covered.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

// ---------------------------------------------------------------------------
// Operations and independence
// ---------------------------------------------------------------------------

/// One visible operation, as declared by a thread at its scheduling point.
/// The `usize` is the object id (or target thread for `Join`, arm count for
/// `Choice`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    Start,
    Yield,
    Lock(usize),
    Unlock(usize),
    Send(usize),
    TrySend(usize),
    Recv(usize),
    TryRecv(usize),
    Disconnect(usize),
    AtLoad(usize),
    AtStore(usize),
    AtRmw(usize),
    Join(usize),
    Choice(usize),
}

impl Op {
    /// The shared object this op touches, if any. Purely thread-local ops
    /// return `None` and commute with everything.
    fn object(self) -> Option<usize> {
        match self {
            Op::Start | Op::Yield | Op::Choice(_) => None,
            Op::Lock(o)
            | Op::Unlock(o)
            | Op::Send(o)
            | Op::TrySend(o)
            | Op::Recv(o)
            | Op::TryRecv(o)
            | Op::Disconnect(o)
            | Op::AtLoad(o)
            | Op::AtStore(o)
            | Op::AtRmw(o) => Some(o),
            // Conservative: joining observes another thread's whole life.
            Op::Join(_) => None,
        }
    }

    fn describe(self) -> String {
        match self {
            Op::Start => "start".into(),
            Op::Yield => "yield".into(),
            Op::Lock(o) => format!("lock(o{o})"),
            Op::Unlock(o) => format!("unlock(o{o})"),
            Op::Send(o) => format!("send(o{o})"),
            Op::TrySend(o) => format!("try_send(o{o})"),
            Op::Recv(o) => format!("recv(o{o})"),
            Op::TryRecv(o) => format!("try_recv(o{o})"),
            Op::Disconnect(o) => format!("disconnect(o{o})"),
            Op::AtLoad(o) => format!("load(o{o})"),
            Op::AtStore(o) => format!("store(o{o})"),
            Op::AtRmw(o) => format!("rmw(o{o})"),
            Op::Join(t) => format!("join(t{t})"),
            Op::Choice(n) => format!("choice({n})"),
        }
    }
}

/// Two ops are independent when executing them in either order reaches the
/// same state: different objects, purely local ops, or two plain loads of
/// the same atomic. `Join` is conservatively dependent with everything.
fn independent(a: Op, b: Op) -> bool {
    if matches!(a, Op::Join(_)) || matches!(b, Op::Join(_)) {
        return false;
    }
    match (a.object(), b.object()) {
        (None, _) | (_, None) => true,
        (Some(x), Some(y)) if x != y => true,
        _ => matches!((a, b), (Op::AtLoad(_), Op::AtLoad(_))),
    }
}

/// What a granted operation resolved to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) enum Outcome {
    /// The op proceeded (lock taken, message slot reserved, …).
    #[default]
    Ok,
    /// A channel op observed the other side gone.
    Disconnected,
    /// `try_send` on a full queue.
    Full,
    /// `try_recv` on an empty queue.
    Empty,
    /// The arm a `Choice` resolved to.
    Arm(usize),
    /// The run is being torn down; unwind/return quickly.
    Abort,
}

// ---------------------------------------------------------------------------
// Shared runtime state
// ---------------------------------------------------------------------------

pub(crate) enum ObjState {
    Lock {
        held: bool,
    },
    Chan {
        len: usize,
        cap: usize,
        senders: usize,
        receivers: usize,
    },
    Atomic,
}

#[derive(Default)]
struct RtState {
    objects: Vec<ObjState>,
    /// Threads parked at a scheduling point, with the op they want.
    waiting: BTreeMap<usize, Op>,
    finished: BTreeSet<usize>,
    /// Total threads registered this run (tids are 0..spawned).
    spawned: usize,
    /// The single thread currently allowed to run.
    granted: Option<usize>,
    /// Outcome for the thread being granted.
    outcome: Outcome,
    /// Tear-down mode: every scheduling point returns `Abort` immediately.
    abort: bool,
    /// First failure observed this run (later ones are tear-down noise).
    failure: Option<String>,
    /// Executed (tid, op) pairs, for the failure report.
    trace: Vec<(usize, Op)>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Runtime {
    state: StdMutex<RtState>,
    cv: Condvar,
}

fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Runtime {
    fn new() -> Arc<Runtime> {
        Arc::new(Runtime {
            state: StdMutex::new(RtState::default()),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn register_object(&self, obj: ObjState) -> usize {
        let mut st = relock(self.state.lock());
        st.objects.push(obj);
        st.objects.len() - 1
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = relock(self.state.lock());
        let tid = st.spawned;
        st.spawned += 1;
        tid
    }

    pub(crate) fn stash_handle(&self, h: std::thread::JoinHandle<()>) {
        relock(self.state.lock()).os_handles.push(h);
    }

    /// Adjusts a channel's endpoint counts without a scheduling point
    /// (cloning can never *disable* anything: counts only grow).
    pub(crate) fn chan_clone(&self, id: usize, sender: bool) {
        let mut st = relock(self.state.lock());
        if let ObjState::Chan {
            senders, receivers, ..
        } = &mut st.objects[id]
        {
            if sender {
                *senders += 1;
            } else {
                *receivers += 1;
            }
        }
    }

    /// Parks the calling thread at a scheduling point and blocks until the
    /// coordinator grants it. Object-state effects of the op are applied
    /// here, under the state lock, before user code continues.
    pub(crate) fn sched_point(&self, me: usize, op: Op) -> Outcome {
        let mut st = relock(self.state.lock());
        if st.abort {
            return Outcome::Abort;
        }
        st.waiting.insert(me, op);
        st.granted = None;
        self.cv.notify_all();
        loop {
            if st.abort {
                st.waiting.remove(&me);
                self.cv.notify_all();
                return Outcome::Abort;
            }
            if st.granted == Some(me) {
                break;
            }
            st = relock(self.cv.wait(st));
        }
        st.waiting.remove(&me);
        let outcome = st.outcome;
        Self::apply(&mut st, op, outcome);
        outcome
    }

    /// Applies the coordinator-visible effect of a granted op.
    fn apply(st: &mut RtState, op: Op, outcome: Outcome) {
        match op {
            Op::Lock(id) => {
                if let ObjState::Lock { held } = &mut st.objects[id] {
                    *held = true;
                }
            }
            Op::Unlock(id) => {
                if let ObjState::Lock { held } = &mut st.objects[id] {
                    *held = false;
                }
            }
            Op::Send(id) | Op::TrySend(id) if outcome == Outcome::Ok => {
                if let ObjState::Chan { len, .. } = &mut st.objects[id] {
                    *len += 1;
                }
            }
            Op::Send(_) | Op::TrySend(_) => {}
            Op::Recv(id) | Op::TryRecv(id) if outcome == Outcome::Ok => {
                if let ObjState::Chan { len, .. } = &mut st.objects[id] {
                    *len -= 1;
                }
            }
            Op::Recv(_) | Op::TryRecv(_) => {}
            Op::Disconnect(id) => {
                if let ObjState::Chan {
                    senders, receivers, ..
                } = &mut st.objects[id]
                {
                    // The endpoint records which side it is via outcome-free
                    // convention: Disconnect is emitted by Sender and
                    // Receiver drops; the caller adjusts counts directly.
                    let _ = (senders, receivers);
                }
            }
            _ => {}
        }
    }

    /// Directly decrements an endpoint count (called by the endpoint drop
    /// *after* its `Disconnect` scheduling point was granted).
    pub(crate) fn chan_drop(&self, id: usize, sender: bool) {
        let mut st = relock(self.state.lock());
        if let ObjState::Chan {
            senders, receivers, ..
        } = &mut st.objects[id]
        {
            if sender {
                *senders = senders.saturating_sub(1);
            } else {
                *receivers = receivers.saturating_sub(1);
            }
        }
    }

    pub(crate) fn thread_finished(&self, me: usize) {
        let mut st = relock(self.state.lock());
        st.finished.insert(me);
        st.waiting.remove(&me);
        if st.granted == Some(me) {
            st.granted = None;
        }
        self.cv.notify_all();
    }

    pub(crate) fn record_panic(&self, me: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut st = relock(self.state.lock());
        if st.abort || st.failure.is_some() {
            return; // tear-down noise
        }
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic>".to_string());
        st.failure = Some(format!("thread t{me} panicked: {msg}"));
        st.abort = true;
        self.cv.notify_all();
    }

    /// Whether an op could proceed right now if granted.
    fn enabled(st: &RtState, op: Op) -> bool {
        match op {
            Op::Lock(id) => matches!(st.objects[id], ObjState::Lock { held: false }),
            Op::Send(id) => match st.objects[id] {
                ObjState::Chan {
                    len,
                    cap,
                    receivers,
                    ..
                } => receivers == 0 || len < cap,
                _ => true,
            },
            Op::Recv(id) => match st.objects[id] {
                ObjState::Chan { len, senders, .. } => len > 0 || senders == 0,
                _ => true,
            },
            Op::Join(tid) => st.finished.contains(&tid),
            _ => true,
        }
    }

    /// The outcome a (currently enabled) op resolves to.
    fn resolve(st: &RtState, op: Op) -> Outcome {
        match op {
            Op::Send(id) | Op::TrySend(id) => match st.objects[id] {
                ObjState::Chan {
                    len,
                    cap,
                    receivers,
                    ..
                } => {
                    if receivers == 0 {
                        Outcome::Disconnected
                    } else if len < cap {
                        Outcome::Ok
                    } else {
                        Outcome::Full
                    }
                }
                _ => Outcome::Ok,
            },
            Op::Recv(id) | Op::TryRecv(id) => match st.objects[id] {
                ObjState::Chan { len, senders, .. } => {
                    if len > 0 {
                        Outcome::Ok
                    } else if senders == 0 {
                        Outcome::Disconnected
                    } else {
                        Outcome::Empty
                    }
                }
                _ => Outcome::Ok,
            },
            _ => Outcome::Ok,
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local current runtime
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Runtime>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> (Arc<Runtime>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("check:: primitives may only be used inside check::explore")
    })
}

fn set_current(rt: Arc<Runtime>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

/// Runs `f` as model thread `tid`: registers the runtime in TLS, parks at
/// the `Start` scheduling point, and reports finish/panic to the runtime.
pub(crate) fn run_model_thread<T, F>(
    rt: Arc<Runtime>,
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
    f: F,
) where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    set_current(rt.clone(), tid);
    let result = catch_unwind(AssertUnwindSafe(|| {
        if rt.sched_point(tid, Op::Start) == Outcome::Abort {
            return None;
        }
        Some(f())
    }));
    match result {
        Ok(Some(v)) => *relock(slot.lock()) = Some(v),
        Ok(None) => {}
        Err(payload) => rt.record_panic(tid, payload),
    }
    rt.thread_finished(tid);
}

// ---------------------------------------------------------------------------
// The DFS explorer
// ---------------------------------------------------------------------------

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Stop after this many completed schedules.
    pub max_schedules: usize,
    /// Fail a run that makes more scheduling decisions than this (a model
    /// that spins forever would otherwise hang the explorer).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 1_000_000,
            max_steps: 20_000,
        }
    }
}

/// What exploring a model produced.
#[derive(Clone, Debug)]
pub struct Report {
    /// Complete schedules executed.
    pub explored: usize,
    /// Alternatives skipped by sleep-set pruning (plus sleep-blocked runs).
    pub pruned: usize,
    /// The first invariant violation, deadlock, or panic found, with the
    /// schedule that produced it. `None` means every explored interleaving
    /// upheld the model's asserts.
    pub failure: Option<String>,
}

impl Report {
    /// Panics with the failure message if any interleaving failed.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model checking failed after {} schedules: {f}",
                self.explored
            );
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            None => write!(
                f,
                "ok: {} schedules explored, {} pruned, all invariants held",
                self.explored, self.pruned
            ),
            Some(err) => write!(
                f,
                "FAILED after {} schedules ({} pruned): {err}",
                self.explored, self.pruned
            ),
        }
    }
}

/// One decision node in the schedule tree.
enum Node {
    Sched {
        /// Threads enabled at this state, in tid order.
        enabled: Vec<usize>,
        /// The op each parked thread would run (for independence checks).
        ops: BTreeMap<usize, Op>,
        /// Threads whose subtrees are already covered; never (re)picked.
        sleep: BTreeSet<usize>,
        /// Threads actually explored from here.
        tried: BTreeSet<usize>,
        /// The pick for the run in progress.
        cur: usize,
    },
    Arm {
        arms: usize,
        cur: usize,
    },
}

/// Explores every schedule of `model` within `config`'s bounds.
pub fn explore<F>(config: Config, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut stack: Vec<Node> = Vec::new();
    let mut explored = 0usize;
    let mut pruned = 0usize;
    let mut failure = None;

    loop {
        let rt = Runtime::new();
        let run = run_once(&rt, &mut stack, &model, &config);
        match run {
            RunResult::Complete => explored += 1,
            RunResult::SleepBlocked => pruned += 1,
            RunResult::Failed(msg) => {
                explored += 1;
                failure = Some(msg);
                break;
            }
        }
        if explored >= config.max_schedules {
            break;
        }
        if !advance(&mut stack, &mut pruned) {
            break;
        }
    }
    Report {
        explored,
        pruned,
        failure,
    }
}

/// Explores with default bounds.
pub fn check<F>(model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    explore(Config::default(), model)
}

enum RunResult {
    Complete,
    /// Every enabled thread was asleep at a fresh node: this run is a
    /// permutation of one already explored.
    SleepBlocked,
    Failed(String),
}

/// Executes one run, replaying `stack[..]`'s picks and extending the stack
/// at the frontier.
fn run_once(
    rt: &Arc<Runtime>,
    stack: &mut Vec<Node>,
    model: &Arc<dyn Fn() + Send + Sync>,
    config: &Config,
) -> RunResult {
    // Thread 0 runs the model closure itself.
    let tid = rt.register_thread();
    debug_assert_eq!(tid, 0);
    let slot = Arc::new(StdMutex::new(None::<()>));
    {
        let rt2 = rt.clone();
        let model = model.clone();
        let slot = slot.clone();
        let h = std::thread::Builder::new()
            .name("model-t0".into())
            .spawn(move || run_model_thread(rt2, 0, slot, move || model()))
            .expect("spawn model thread");
        rt.stash_handle(h);
    }

    let mut depth = 0usize;
    let mut sleep_blocked = false;
    let mut st = relock(rt.state.lock());
    loop {
        // Wait until every registered thread is parked or finished.
        while st.granted.is_some() || st.waiting.len() + st.finished.len() < st.spawned {
            st = relock(rt.cv.wait(st));
        }
        if st.finished.len() == st.spawned {
            break; // run over (normally or after abort drain)
        }
        if st.abort {
            // Threads only park before abort flips; wake any stragglers.
            rt.cv.notify_all();
            st = relock(rt.cv.wait(st));
            continue;
        }
        let enabled: Vec<usize> = st
            .waiting
            .iter()
            .filter(|(_, &op)| Runtime::enabled(&st, op))
            .map(|(&tid, _)| tid)
            .collect();
        if enabled.is_empty() {
            let parked: Vec<String> = st
                .waiting
                .iter()
                .map(|(t, op)| format!("t{t}:{}", op.describe()))
                .collect();
            st.failure = Some(format!(
                "deadlock: every thread is blocked ({})",
                parked.join(", ")
            ));
            st.abort = true;
            rt.cv.notify_all();
            continue;
        }
        if st.trace.len() >= config.max_steps {
            st.failure = Some(format!(
                "model exceeded max_steps ({}): likely non-termination",
                config.max_steps
            ));
            st.abort = true;
            rt.cv.notify_all();
            continue;
        }

        // Pick the next thread: replay the stack, or extend it.
        let pick = if depth < stack.len() {
            match &stack[depth] {
                Node::Sched { cur, .. } => *cur,
                Node::Arm { .. } => unreachable!("Arm node at a thread decision"),
            }
        } else {
            let sleep0 = inherited_sleep(stack, &st.waiting);
            match enabled.iter().copied().find(|t| !sleep0.contains(t)) {
                Some(t) => {
                    let ops = st.waiting.clone();
                    let mut tried = BTreeSet::new();
                    tried.insert(t);
                    stack.push(Node::Sched {
                        enabled: enabled.clone(),
                        ops,
                        sleep: sleep0,
                        tried,
                        cur: t,
                    });
                    t
                }
                None => {
                    // All enabled threads are asleep: nothing new down here.
                    sleep_blocked = true;
                    st.abort = true;
                    rt.cv.notify_all();
                    continue;
                }
            }
        };
        depth += 1;
        let op = st.waiting[&pick];

        // A Choice op carries a second, arm-level decision.
        let mut outcome = Runtime::resolve(&st, op);
        if let Op::Choice(arms) = op {
            let arm = if depth < stack.len() {
                match &stack[depth] {
                    Node::Arm { cur, .. } => *cur,
                    Node::Sched { .. } => unreachable!("Sched node at an arm decision"),
                }
            } else {
                stack.push(Node::Arm { arms, cur: 0 });
                0
            };
            depth += 1;
            outcome = Outcome::Arm(arm);
        }

        st.trace.push((pick, op));
        st.outcome = outcome;
        st.granted = Some(pick);
        rt.cv.notify_all();
    }

    let failure = st.failure.take();
    let trace = std::mem::take(&mut st.trace);
    let handles = std::mem::take(&mut st.os_handles);
    drop(st);
    for h in handles {
        let _ = h.join();
    }

    if let Some(msg) = failure {
        if sleep_blocked {
            // A failure after the run was already being torn down as
            // redundant cannot happen (abort suppresses later failures),
            // but keep the branch total.
            return RunResult::SleepBlocked;
        }
        let shown: Vec<String> = trace
            .iter()
            .rev()
            .take(40)
            .rev()
            .map(|(t, op)| format!("t{t}:{}", op.describe()))
            .collect();
        let ellipsis = if trace.len() > 40 { "… " } else { "" };
        return RunResult::Failed(format!(
            "{msg}\n  schedule: {ellipsis}{}",
            shown.join(" → ")
        ));
    }
    if sleep_blocked {
        return RunResult::SleepBlocked;
    }
    RunResult::Complete
}

/// The sleep set a fresh node inherits: every thread asleep at the nearest
/// `Sched` ancestor whose pending op is independent of the op that ancestor
/// just ran (Godefroid's sleep-set propagation). Threads that moved since
/// (no longer parked on the same op) are dropped conservatively.
fn inherited_sleep(stack: &[Node], waiting: &BTreeMap<usize, Op>) -> BTreeSet<usize> {
    for node in stack.iter().rev() {
        if let Node::Sched {
            ops, sleep, cur, ..
        } = node
        {
            let cur_op = ops[cur];
            return sleep
                .iter()
                .copied()
                .filter(|s| waiting.get(s) == Some(&ops[s]) && independent(ops[s], cur_op))
                .collect();
        }
    }
    BTreeSet::new()
}

/// Moves the stack to the next unexplored schedule; false when exhausted.
fn advance(stack: &mut Vec<Node>, pruned: &mut usize) -> bool {
    loop {
        let Some(top) = stack.last_mut() else {
            return false;
        };
        match top {
            Node::Arm { arms, cur } => {
                *cur += 1;
                if *cur < *arms {
                    return true;
                }
                stack.pop();
            }
            Node::Sched {
                enabled,
                sleep,
                tried,
                cur,
                ..
            } => {
                sleep.insert(*cur);
                if let Some(next) = enabled.iter().copied().find(|t| !sleep.contains(t)) {
                    tried.insert(next);
                    *cur = next;
                    return true;
                }
                *pruned += enabled.iter().filter(|t| !tried.contains(t)).count();
                stack.pop();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Nondeterministic choice
// ---------------------------------------------------------------------------

/// Explores every value in `0..n` as a separate branch.
pub fn nondet(n: usize) -> usize {
    assert!(n > 0, "nondet(0) has no arms");
    let (rt, me) = current();
    match rt.sched_point(me, Op::Choice(n)) {
        Outcome::Arm(k) => k,
        _ => 0, // abort tear-down: any arm will do
    }
}

/// Explores both booleans as separate branches.
pub fn nondet_bool() -> bool {
    nondet(2) == 1
}

/// A scheduling point with no effect: lets the explorer interleave here.
pub fn yield_now() {
    let (rt, me) = current();
    let _ = rt.sched_point(me, Op::Yield);
}
