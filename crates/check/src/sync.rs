//! Model-checked synchronization primitives: `Mutex` and sequentially
//! consistent atomics. Every acquire, release, load, store, and RMW is a
//! scheduling point, so the explorer can interleave other threads there.

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use crate::rt::{current, ObjState, Op, Outcome, Runtime};

/// A mutex whose lock/unlock points the explorer schedules around. The
/// payload lives in a real `std` mutex, which is never contended: the
/// scheduler only ever grants the lock to one thread at a time.
pub struct Mutex<T> {
    rt: Arc<Runtime>,
    id: usize,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let (rt, _) = current();
        let id = rt.register_object(ObjState::Lock { held: false });
        Mutex {
            rt,
            id,
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking (in model time) until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (_, me) = current();
        let outcome = self.rt.sched_point(me, Op::Lock(self.id));
        let inner = if outcome == Outcome::Abort {
            // Tear-down: the model lock state is no longer authoritative,
            // so don't risk blocking. Guard derefs will panic (suppressed).
            self.inner.try_lock().ok()
        } else {
            match self.inner.try_lock() {
                Ok(g) => Some(g),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => {
                    unreachable!("scheduler granted a held lock")
                }
            }
        };
        MutexGuard {
            rt: &self.rt,
            id: self.id,
            inner,
        }
    }
}

/// RAII guard; releasing is itself a scheduling point.
pub struct MutexGuard<'a, T> {
    rt: &'a Arc<Runtime>,
    id: usize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("lock aborted during tear-down")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("lock aborted during tear-down")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            let (_, me) = current();
            let _ = self.rt.sched_point(me, Op::Unlock(self.id));
        }
    }
}

pub mod atomic {
    //! Sequentially consistent model atomics. Orderings are accepted for
    //! API familiarity but the checker serializes everything anyway.

    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    use crate::rt::{current, ObjState, Op, Runtime};

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            pub struct $name {
                rt: Arc<Runtime>,
                id: usize,
                cell: $std,
            }

            impl $name {
                pub fn new(v: $val) -> Self {
                    let (rt, _) = current();
                    let id = rt.register_object(ObjState::Atomic);
                    Self {
                        rt,
                        id,
                        cell: <$std>::new(v),
                    }
                }

                pub fn load(&self, _order: Ordering) -> $val {
                    let (_, me) = current();
                    let _ = self.rt.sched_point(me, Op::AtLoad(self.id));
                    self.cell.load(Ordering::SeqCst)
                }

                pub fn store(&self, v: $val, _order: Ordering) {
                    let (_, me) = current();
                    let _ = self.rt.sched_point(me, Op::AtStore(self.id));
                    self.cell.store(v, Ordering::SeqCst);
                }

                pub fn swap(&self, v: $val, _order: Ordering) -> $val {
                    let (_, me) = current();
                    let _ = self.rt.sched_point(me, Op::AtRmw(self.id));
                    self.cell.swap(v, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $val,
                    new: $val,
                    _ok: Ordering,
                    _err: Ordering,
                ) -> Result<$val, $val> {
                    let (_, me) = current();
                    let _ = self.rt.sched_point(me, Op::AtRmw(self.id));
                    self.cell
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

    impl AtomicUsize {
        pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
            let (_, me) = current();
            let _ = self.rt.sched_point(me, Op::AtRmw(self.id));
            self.cell.fetch_add(v, std::sync::atomic::Ordering::SeqCst)
        }
    }

    impl AtomicU64 {
        pub fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
            let (_, me) = current();
            let _ = self.rt.sched_point(me, Op::AtRmw(self.id));
            self.cell.fetch_add(v, std::sync::atomic::Ordering::SeqCst)
        }
    }
}
