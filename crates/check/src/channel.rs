//! Model-checked MPMC channels mirroring the crossbeam API the node uses:
//! `bounded`/`unbounded`, blocking and `try_` sends/receives, and
//! disconnect-on-last-drop — every operation (including endpoint drops,
//! which change disconnect state) is a scheduling point.

use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use crate::rt::{current, ObjState, Op, Outcome, Runtime};

#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct Shared<T> {
    rt: Arc<Runtime>,
    id: usize,
    queue: StdMutex<VecDeque<T>>,
}

/// Creates a channel with capacity `cap` (blocking sends park when full).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(cap.max(1))
}

/// Creates a channel that never applies backpressure.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(usize::MAX)
}

fn make<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (rt, _) = current();
    let id = rt.register_object(ObjState::Chan {
        len: 0,
        cap,
        senders: 1,
        receivers: 1,
    });
    let shared = Arc::new(Shared {
        rt,
        id,
        queue: StdMutex::new(VecDeque::new()),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

fn push<T>(shared: &Shared<T>, value: T) {
    shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push_back(value);
}

fn pop<T>(shared: &Shared<T>) -> Option<T> {
    shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .pop_front()
}

impl<T> Sender<T> {
    /// Blocks (in model time) until there is room or every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let (_, me) = current();
        match self.shared.rt.sched_point(me, Op::Send(self.shared.id)) {
            Outcome::Ok => {
                push(&self.shared, value);
                Ok(())
            }
            _ => Err(SendError(value)),
        }
    }

    /// Never blocks: sheds when the queue is full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let (_, me) = current();
        match self.shared.rt.sched_point(me, Op::TrySend(self.shared.id)) {
            Outcome::Ok => {
                push(&self.shared, value);
                Ok(())
            }
            Outcome::Full => Err(TrySendError::Full(value)),
            _ => Err(TrySendError::Disconnected(value)),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.rt.chan_clone(self.shared.id, true);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Dropping the last sender flips receivers to "disconnected", which
        // is exactly the kind of ordering the shutdown model checks — so
        // the drop itself is a visible, schedulable event.
        let (_, me) = current();
        let _ = self
            .shared
            .rt
            .sched_point(me, Op::Disconnect(self.shared.id));
        self.shared.rt.chan_drop(self.shared.id, true);
    }
}

impl<T> Receiver<T> {
    /// Blocks (in model time) until a message arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let (_, me) = current();
        match self.shared.rt.sched_point(me, Op::Recv(self.shared.id)) {
            Outcome::Ok => pop(&self.shared).ok_or(RecvError),
            _ => Err(RecvError),
        }
    }

    /// Never blocks: reports an empty queue instead.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let (_, me) = current();
        match self.shared.rt.sched_point(me, Op::TryRecv(self.shared.id)) {
            Outcome::Ok => pop(&self.shared).ok_or(TryRecvError::Disconnected),
            Outcome::Empty => Err(TryRecvError::Empty),
            _ => Err(TryRecvError::Disconnected),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.rt.chan_clone(self.shared.id, false);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let (_, me) = current();
        let _ = self
            .shared
            .rt
            .sched_point(me, Op::Disconnect(self.shared.id));
        self.shared.rt.chan_drop(self.shared.id, false);
    }
}
