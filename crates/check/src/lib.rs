//! `wedge-check` — a vendored, dependency-free "loom-lite": a deterministic
//! scheduler that exhaustively explores thread interleavings of small
//! executable models, with DPOR-style sleep-set pruning.
//!
//! WedgeBlock's safety story (reply ⇒ durable, exactly-once stage-2 commit,
//! gapless positions) rests on the Offchain Node never wedging or racing.
//! The static rules in `wedge-lint` (L7–L9) catch structural hazards; this
//! crate *executes* the three riskiest protocols under every schedule up to
//! a bound and asserts their invariants in each one:
//!
//! - [`models::snapshot`] — snapshot publication vs. hot readers,
//! - [`models::shutdown`] — pipeline shutdown drain via sender-drop order,
//! - [`models::slow_client`] — `deliver_append` grace-then-kill vs. the
//!   coalescing writer's drain.
//!
//! Models are plain closures using `check::` primitives in place of `std`/
//! `crossbeam` ones: [`sync::Mutex`], [`sync::atomic`], [`channel`],
//! [`thread::spawn`], plus [`nondet`] for explicit decision points. Run one
//! with [`explore`] (bounded) or [`check`] (default bounds); the returned
//! [`Report`] carries explored/pruned schedule counts and the first failing
//! schedule, if any. See `docs/model-checking.md` for how to write a model.
//!
//! This crate is deliberately NOT covered by the workspace's panic-freedom
//! lint: a model checker *reports* bugs by panicking the failing schedule.

#![forbid(unsafe_code)]

mod rt;

pub mod channel;
pub mod models;
pub mod sync;
pub mod thread;

pub use rt::{check, explore, nondet, nondet_bool, yield_now, Config, Report};
