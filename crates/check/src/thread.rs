//! Model threads: real OS threads driven one-at-a-time by the scheduler.

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use crate::rt::{current, run_model_thread, Op};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    rt: Arc<crate::rt::Runtime>,
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
}

/// Spawns a model thread. The closure runs under the deterministic
/// scheduler like every other model thread; its first action is a `start`
/// scheduling point, so the explorer also interleaves thread startup.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (rt, _) = current();
    let tid = rt.register_thread();
    let slot = Arc::new(StdMutex::new(None));
    let rt2 = rt.clone();
    let slot2 = slot.clone();
    let h = std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || run_model_thread(rt2, tid, slot2, f))
        .expect("spawn model thread");
    rt.stash_handle(h);
    JoinHandle { rt, tid, slot }
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the thread to finish and returns its
    /// value. `None` only during tear-down or if the thread panicked —
    /// both of which already recorded a failure.
    pub fn join(self) -> Option<T> {
        let (_, me) = current();
        let _ = self.rt.sched_point(me, Op::Join(self.tid));
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// A pure scheduling point, re-exported here to mirror `std::thread`.
pub use crate::rt::yield_now;
