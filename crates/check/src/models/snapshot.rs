//! Snapshot publication vs. hot readers.
//!
//! Mirrors `SnapshotCell` in `crates/core/src/node/snapshot.rs`: the
//! publisher (holding the write-plane mutex) installs a new snapshot into
//! the cold slot and *then* bumps the version counter; readers do one
//! atomic version load and refresh from the slot only when the version
//! moved, otherwise serving a per-reader cache.
//!
//! Invariants asserted in every interleaving:
//! - **no torn snapshot**: the two fields of a snapshot are always
//!   mutually consistent (`derived == 10 * publication`);
//! - **no stale-beyond-current read**: a reader that observed version `v`
//!   never gets a snapshot older than `v` (slot-before-version ordering);
//! - **per-reader monotonicity**: repeated loads never go backwards.
//!
//! `broken: true` swaps the publication order — version bump *before* the
//! slot write — which lets a reader observe a fresh version with the old
//! snapshot still in the slot.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::sync::atomic::AtomicU64;
use crate::sync::Mutex;
use crate::{explore, thread, Config, Report};

/// The published state: `(publication number, derived value)` — readers
/// must never see the pair disagree.
type Snap = (u64, u64);

struct Cell {
    version: AtomicU64,
    slot: Mutex<Snap>,
    write_plane: Mutex<()>,
}

impl Cell {
    fn publish(&self, publication: u64, broken: bool) {
        let _plane = self.write_plane.lock();
        if broken {
            // The hazard: readers can now observe `version == publication`
            // while the slot still holds the previous snapshot.
            self.version.fetch_add(1, Ordering::Release);
            *self.slot.lock() = (publication, publication * 10);
        } else {
            *self.slot.lock() = (publication, publication * 10);
            self.version.fetch_add(1, Ordering::Release);
        }
    }

    /// One hot-path read with the per-reader cache, returning the snapshot
    /// and asserting the freshness invariant.
    fn load(&self, cache: &mut Option<(u64, Snap)>) -> Snap {
        let v = self.version.load(Ordering::Acquire);
        let snap = match cache {
            Some((cached_v, cached_snap)) if *cached_v == v => *cached_snap,
            _ => {
                let snap = *self.slot.lock();
                *cache = Some((v, snap));
                snap
            }
        };
        assert_eq!(snap.1, snap.0 * 10, "torn snapshot: {snap:?}");
        assert!(
            snap.0 >= v,
            "stale snapshot: observed version {v} but slot publication {}",
            snap.0
        );
        snap
    }
}

const PUBLICATIONS: u64 = 2;
const READERS: usize = 2;

fn model(broken: bool) {
    let cell = Arc::new(Cell {
        version: AtomicU64::new(0),
        slot: Mutex::new((0, 0)),
        write_plane: Mutex::new(()),
    });

    let publisher = {
        let cell = cell.clone();
        thread::spawn(move || {
            for p in 1..=PUBLICATIONS {
                cell.publish(p, broken);
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cell = cell.clone();
            thread::spawn(move || {
                let mut cache = None;
                let first = cell.load(&mut cache);
                let second = cell.load(&mut cache);
                assert!(
                    second.0 >= first.0,
                    "reader went backwards: {first:?} then {second:?}"
                );
            })
        })
        .collect();

    publisher.join();
    for r in readers {
        r.join();
    }
}

/// Explores the snapshot-publication model under `config`.
pub fn run(broken: bool, config: Config) -> Report {
    explore(config, move || model(broken))
}
