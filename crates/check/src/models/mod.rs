//! Executable models of the system's riskiest concurrent protocols.
//!
//! Each model mirrors one protocol from `crates/core`/`crates/net`/
//! `crates/cluster` using
//! `check::` primitives, asserts the protocol's invariants, and takes a
//! `broken` flag that re-introduces the hazard the real code is built to
//! avoid — proving the checker finds the bug, not just that the fixed
//! protocol passes.

pub mod epoch;
pub mod shutdown;
pub mod slow_client;
pub mod snapshot;
