//! Pipeline shutdown drain via sender-drop ordering.
//!
//! Mirrors the batcher pipeline in `crates/core/src/node/batcher.rs`:
//! collect → persist → deliver stages joined by bounded channels, shut down
//! by dropping the upstream sender so each stage drains to disconnect and
//! its own sender drop cascades the shutdown downstream.
//!
//! Invariants asserted in every interleaving:
//! - **no reply lost**: every request accepted before shutdown is
//!   delivered downstream exactly once, in order;
//! - **no double delivery**: (covered by the exact-sequence assert);
//! - **termination**: the pipeline always drains and joins (a wedge shows
//!   up as a deadlock, which the checker reports).
//!
//! `broken: true` replaces stage 1's drain-to-disconnect loop with a
//! `try_recv`-until-empty loop — the stage can observe a momentarily empty
//! queue and shut down while requests are still in flight, losing replies.

use crate::channel::bounded;
use crate::{explore, thread, Config, Report};

const REQUESTS: u64 = 3;

fn model(broken: bool) {
    // The broken variant loses a reply the moment stage 1 observes "empty"
    // before the producer's first send — a root-level scheduling choice.
    // One request keeps that losing branch within the DFS budget; the
    // fixed variant keeps the full load to maximise explored interleavings.
    let requests = if broken { 1 } else { REQUESTS };
    let (req_tx, req_rx) = bounded::<u64>(2);
    let (mid_tx, mid_rx) = bounded::<u64>(2);
    let (out_tx, out_rx) = bounded::<u64>(2);

    // Stage 1 (collect): forwards requests downstream; its sender drop on
    // exit is what tells the persist stage the pipeline is closed.
    let stage1 = thread::spawn(move || {
        if broken {
            // The hazard: "empty right now" is not "closed".
            while let Ok(v) = req_rx.try_recv() {
                if mid_tx.send(v).is_err() {
                    break;
                }
            }
        } else {
            while let Ok(v) = req_rx.recv() {
                if mid_tx.send(v).is_err() {
                    break;
                }
            }
        }
    });

    // Stage 2 (persist): drains to disconnect, cascading the shutdown.
    let stage2 = thread::spawn(move || {
        while let Ok(v) = mid_rx.recv() {
            if out_tx.send(v).is_err() {
                break;
            }
        }
    });

    // Stage 3 (deliver): collects everything until its upstream closes.
    let stage3 = thread::spawn(move || {
        let mut delivered = Vec::new();
        while let Ok(v) = out_rx.recv() {
            delivered.push(v);
        }
        delivered
    });

    // The producer accepts the requests, then shuts down by dropping its
    // sender; stage 1's recv loop sees the disconnect after draining.
    for v in 1..=requests {
        req_tx.send(v).expect("pipeline accepts before shutdown");
    }
    drop(req_tx);

    stage1.join();
    stage2.join();
    let delivered = stage3.join().unwrap_or_default();
    let expected: Vec<u64> = (1..=requests).collect();
    assert_eq!(
        delivered, expected,
        "shutdown drain lost or duplicated replies"
    );
}

/// Explores the shutdown-drain model under `config`.
pub fn run(broken: bool, config: Config) -> Report {
    explore(config, move || model(broken))
}
