//! `deliver_append` grace-then-kill vs. the coalescing writer's drain.
//!
//! Mirrors the RPC plane in `crates/net/src/server.rs`: append callbacks
//! `try_send` replies into the session's bounded reply queue; when the
//! queue is full (a peer too slow to drain its socket), the session is
//! marked dead and the writer is kicked so it stops waiting on the stalled
//! socket and drains what is left. The PR 5 slow-client hang — a blocking
//! `send` into a full queue whose consumer is itself stuck on the slow
//! socket — is the exact wedge this protocol exists to prevent.
//!
//! Invariants asserted in every interleaving:
//! - **no wedge**: callbacks, writer, and the session owner always
//!   terminate (a wedge is a deadlock, which the checker reports);
//! - **no reply lost silently**: every reply is either delivered or
//!   counted as shed — `delivered + shed` equals the replies produced;
//! - **no invented reply**: the writer delivers each callback worker's
//!   replies as a strictly increasing subsequence, nothing else.
//!
//! `broken: true` re-creates the PR 5 bug: callbacks use a blocking `send`
//! with no kill path, so a stalled writer wedges the whole plane.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::channel::{bounded, Sender, TrySendError};
use crate::sync::atomic::AtomicBool;
use crate::{explore, nondet_bool, thread, Config, Report};

/// Replies each callback worker completes toward the session.
const REPLIES_PER_WORKER: u64 = 2;
/// Value bases keeping the two workers' replies disjoint (1,2 vs 11,12).
const BASES: [u64; 2] = [0, 10];

fn model(broken: bool) {
    // The session's bounded reply queue (depth 1, like a minimal
    // reply_queue_depth) and the kill path that pokes a writer stuck in a
    // write to a slow peer, the way `SessionSender::kill` shuts the socket
    // down. The `dead` flag is the session tombstone callbacks check.
    let (reply_tx, reply_rx) = bounded::<u64>(1);
    let (kill_tx, kill_rx) = bounded::<()>(1);
    let dead = Arc::new(AtomicBool::new(false));

    // The coalescing writer: always delivers the first reply, then the
    // peer either drains promptly or stalls (both worlds are explored).
    let writer = thread::spawn(move || {
        let mut delivered = Vec::new();
        let slow_peer = nondet_bool();
        if !slow_peer {
            // Fast peer: drain the queue until the callbacks hang up.
            while let Ok(v) = reply_rx.recv() {
                delivered.push(v);
            }
            return delivered;
        }
        if let Ok(v) = reply_rx.recv() {
            delivered.push(v);
        }
        // Stuck writing to the slow peer until the kill path fires (or the
        // callbacks finish and drop their kill handles).
        let _ = kill_rx.recv();
        // Killed: drain whatever is still queued, then hang up.
        while let Ok(v) = reply_rx.try_recv() {
            delivered.push(v);
        }
        delivered
    });

    // Two append-callback workers completing replies toward the same
    // session concurrently — they race on the reply queue, the tombstone,
    // and the kill path, exactly like parallel stage-2 completions.
    let spawn_worker = |base: u64| {
        let dead = dead.clone();
        let reply_tx: Sender<u64> = reply_tx.clone();
        let kill_tx = kill_tx.clone();
        thread::spawn(move || {
            let mut shed = 0u64;
            for i in 1..=REPLIES_PER_WORKER {
                let v = base + i;
                if dead.load(Ordering::Acquire) {
                    shed += 1; // session already killed: reply discarded
                    continue;
                }
                if broken {
                    // The PR 5 bug: block on a full queue whose consumer is
                    // stuck on the peer this queue is backed up behind.
                    if reply_tx.send(v).is_err() {
                        shed += 1;
                    }
                } else {
                    match reply_tx.try_send(v) {
                        Ok(()) => {}
                        Err(TrySendError::Full(_)) => {
                            // Grace exhausted: mark dead, kick the writer.
                            dead.store(true, Ordering::Release);
                            let _ = kill_tx.try_send(());
                            shed += 1;
                        }
                        Err(TrySendError::Disconnected(_)) => shed += 1,
                    }
                }
            }
            shed
        })
    };
    let worker_a = spawn_worker(BASES[0]);
    let worker_b = spawn_worker(BASES[1]);
    // Only the workers may keep the reply/kill channels open: the writer's
    // drain-to-disconnect path relies on the sender count hitting zero.
    drop(reply_tx);
    drop(kill_tx);

    let shed = worker_a.join().unwrap_or(0) + worker_b.join().unwrap_or(0);
    let delivered = writer.join().unwrap_or_default();
    assert_eq!(
        delivered.len() as u64 + shed,
        2 * REPLIES_PER_WORKER,
        "replies neither delivered nor accounted as shed: {delivered:?} + {shed}"
    );
    assert!(
        delivered.iter().all(|v| BASES
            .iter()
            .any(|b| (b + 1..=b + REPLIES_PER_WORKER).contains(v))),
        "invented reply: {delivered:?}"
    );
    for base in BASES {
        let sub: Vec<u64> = delivered
            .iter()
            .copied()
            .filter(|v| (base + 1..=base + REPLIES_PER_WORKER).contains(v))
            .collect();
        assert!(
            sub.windows(2).all(|w| w[0] < w[1]),
            "duplicated or reordered reply from worker base {base}: {delivered:?}"
        );
    }
}

/// Explores the grace-then-kill model under `config`.
pub fn run(broken: bool, config: Config) -> Report {
    explore(config, move || model(broken))
}
