//! Epoch root-collection: coordinator vs. late shard reports.
//!
//! Mirrors the cluster epoch protocol (`crates/cluster/src/epoch.rs` +
//! `crates/core/src/node/epoch.rs`): each epoch the coordinator asks every
//! shard for its pending batch roots, folds the shard roots into one
//! cluster root, and commits it on-chain. Reports travel over an async
//! reply channel, and a shard retried near an epoch boundary can put *two*
//! reports in flight — one tagged with the previous epoch still sitting in
//! the channel when the next epoch starts collecting.
//!
//! The real protocol defends by tagging every report with the epoch it was
//! produced for and having the coordinator discard any reply whose tag is
//! not the epoch being folded (the shard side independently guards with
//! `epoch_seen` against stale *commits*). Invariants asserted in every
//! interleaving:
//! - **no stale fold**: every root folded into epoch `e`'s cluster root is
//!   tagged `e`;
//! - **per-shard exactly-once**: each shard contributes exactly one root
//!   per epoch it reported for.
//!
//! `broken: true` drops the tag check — the coordinator folds the first
//! `SHARDS` replies it pops, so a duplicated epoch-0 report can displace a
//! shard's epoch-1 root and a stale shard root lands under the on-chain
//! cluster root.

use crate::channel::{unbounded, Receiver, Sender};
use crate::{explore, thread, Config, Report};

const SHARDS: usize = 2;
const EPOCHS: u64 = 3;

/// A shard's reply: (shard id, epoch the report was produced for, the
/// shard root — encoded so stale and fresh roots are distinguishable).
type ShardReport = (usize, u64, u64);

fn shard_root(shard: usize, epoch: u64) -> u64 {
    (shard as u64 + 1) * 100 + epoch
}

/// One shard: answers each epoch request with a tagged report. Shard 0
/// models the retry hazard by re-sending its epoch-0 report — the
/// duplicate stays in flight and can arrive during epoch 1's collection.
fn shard(id: usize, requests: Receiver<u64>, replies: Sender<ShardReport>) {
    while let Ok(epoch) = requests.recv() {
        let _ = replies.send((id, epoch, shard_root(id, epoch)));
        if id == 0 && epoch == 0 {
            thread::yield_now();
            let _ = replies.send((id, epoch, shard_root(id, epoch)));
        }
    }
}

/// The coordinator: per epoch, request every shard's report and fold the
/// collected roots, asserting freshness and per-shard exactly-once.
fn coordinator(requests: Vec<Sender<u64>>, replies: Receiver<ShardReport>, broken: bool) {
    for epoch in 0..EPOCHS {
        for tx in &requests {
            let _ = tx.send(epoch);
        }
        let mut fold: Vec<Option<u64>> = vec![None; SHARDS];
        let mut collected = 0;
        while collected < SHARDS {
            let Ok((shard, tag, root)) = replies.recv() else {
                // Only happens when the explorer aborts a redundant
                // schedule mid-run; bail out without tripping the fold
                // asserts below on a half-collected epoch.
                return;
            };
            if !broken && tag != epoch {
                // The fix: a report is only valid for the epoch it was
                // produced for; anything else is a stale retry in flight.
                continue;
            }
            if fold[shard].is_none() {
                fold[shard] = Some(root);
                collected += 1;
            }
            // Invariant: nothing stale is ever folded into this epoch's
            // cluster root.
            assert_eq!(
                tag, epoch,
                "stale shard root folded: epoch {epoch} accepted shard {shard}'s report tagged {tag}"
            );
        }
        for (shard, root) in fold.iter().enumerate() {
            assert_eq!(
                *root,
                Some(shard_root(shard, epoch)),
                "epoch {epoch} folded the wrong root for shard {shard}"
            );
        }
    }
}

fn model(broken: bool) {
    let (reply_tx, reply_rx) = unbounded();
    let mut request_txs = Vec::new();
    let mut workers = Vec::new();
    for id in 0..SHARDS {
        let (tx, rx) = unbounded();
        request_txs.push(tx);
        let replies = reply_tx.clone();
        workers.push(thread::spawn(move || shard(id, rx, replies)));
    }
    drop(reply_tx);

    let driver = {
        let requests = request_txs.clone();
        thread::spawn(move || coordinator(requests, reply_rx, broken))
    };
    driver.join();
    drop(request_txs);
    for w in workers {
        w.join();
    }
}

/// Explores the epoch root-collection model under `config`.
pub fn run(broken: bool, config: Config) -> Report {
    explore(config, move || model(broken))
}
