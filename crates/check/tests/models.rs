//! Drives the protocol models through the explorer: the fixed
//! protocols must hold their invariants across every explored interleaving
//! (>1,000 of them), and each deliberately broken variant must fail —
//! proving the checker can actually find the bugs it exists to find.

use check::Config;

fn cfg() -> Config {
    Config {
        max_schedules: 8_000,
        max_steps: 2_000,
    }
}

#[test]
fn snapshot_invariants_hold_in_every_interleaving() {
    let report = check::models::snapshot::run(false, cfg());
    println!("snapshot: {report}");
    assert!(report.failure.is_none(), "{report}");
    assert!(
        report.explored > 1_000,
        "state space too small to be meaningful: {report}"
    );
}

#[test]
fn snapshot_version_before_slot_write_is_caught() {
    let report = check::models::snapshot::run(true, cfg());
    println!("snapshot(broken): {report}");
    let failure = report.failure.expect("reordered publication must fail");
    assert!(
        failure.contains("stale snapshot"),
        "wrong failure: {failure}"
    );
}

#[test]
fn shutdown_drain_holds_in_every_interleaving() {
    let report = check::models::shutdown::run(false, cfg());
    println!("shutdown: {report}");
    assert!(report.failure.is_none(), "{report}");
    assert!(
        report.explored > 1_000,
        "state space too small to be meaningful: {report}"
    );
}

#[test]
fn shutdown_try_recv_drain_loses_replies() {
    let report = check::models::shutdown::run(true, cfg());
    println!("shutdown(broken): {report}");
    assert!(
        report.failure.is_some(),
        "dropping the drain-to-disconnect ordering must fail: {report}"
    );
}

#[test]
fn slow_client_grace_then_kill_holds_in_every_interleaving() {
    let report = check::models::slow_client::run(false, cfg());
    println!("slow_client: {report}");
    assert!(report.failure.is_none(), "{report}");
    assert!(
        report.explored > 1_000,
        "state space too small to be meaningful: {report}"
    );
}

#[test]
fn slow_client_blocking_send_wedges() {
    let report = check::models::slow_client::run(true, cfg());
    println!("slow_client(broken): {report}");
    let failure = report.failure.expect("the PR 5 blocking send must wedge");
    assert!(failure.contains("deadlock"), "wrong failure: {failure}");
}

#[test]
fn epoch_collection_holds_in_every_interleaving() {
    let report = check::models::epoch::run(false, cfg());
    println!("epoch: {report}");
    assert!(report.failure.is_none(), "{report}");
    assert!(
        report.explored > 1_000,
        "state space too small to be meaningful: {report}"
    );
}

#[test]
fn epoch_untagged_collection_folds_stale_roots() {
    let report = check::models::epoch::run(true, cfg());
    println!("epoch(broken): {report}");
    let failure = report
        .failure
        .expect("dropping the epoch-tag check must fold a stale root");
    assert!(
        failure.contains("stale shard root"),
        "wrong failure: {failure}"
    );
}
