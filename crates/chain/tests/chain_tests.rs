//! End-to-end tests for the simulated chain: funding, transfers, mining,
//! deploys, calls with revert rollback, events, confirmations, and the
//! miner thread on a compressed clock.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{
    CallContext, Chain, ChainConfig, ChainError, Contract, ExecStatus, Gas, Revert, Wei,
};
use wedge_crypto::Keypair;
use wedge_sim::Clock;

/// A toy key-value vault used to exercise the contract host.
///
/// Calldata: `[0x01, key, value]` stores; `[0x02, key]` loads;
/// `[0x03]` reverts after attempting a (rolled-back) store;
/// `[0x04, 20-byte addr]` sends 100 wei out; `[0x05]` emits an event.
#[derive(Clone, Default)]
struct Vault {
    slots: std::collections::HashMap<u8, u8>,
}

impl Contract for Vault {
    fn type_name(&self) -> &'static str {
        "Vault"
    }
    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        match input {
            [0x01, key, value] => {
                ctx.charge_storage_set(1)?;
                self.slots.insert(*key, *value);
                Ok(vec![])
            }
            [0x02, key] => {
                ctx.charge_storage_read(1)?;
                Ok(vec![self.slots.get(key).copied().unwrap_or(0)])
            }
            [0x03] => {
                ctx.charge_storage_set(1)?;
                self.slots.insert(0xFF, 0xFF); // must be rolled back
                Err(Revert::new("deliberate failure"))
            }
            [0x04, rest @ ..] if rest.len() == 20 => {
                let mut addr = [0u8; 20];
                addr.copy_from_slice(rest);
                ctx.transfer_out(wedge_chain::Address(addr), Wei(100))?;
                Ok(vec![])
            }
            [0x05] => {
                ctx.emit("Ping", b"pong".to_vec())?;
                Ok(vec![])
            }
            _ => Err(Revert::new("unknown selector")),
        }
    }
    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}

fn setup() -> (Arc<Chain>, Keypair) {
    let chain = Chain::with_defaults(Clock::manual());
    let user = Keypair::from_seed(b"chain-test-user");
    chain.fund(user.address, Wei::from_eth(100));
    (chain, user)
}

#[test]
fn transfer_moves_value_and_charges_fee() {
    let (chain, user) = setup();
    let bob = Keypair::from_seed(b"bob").address;
    let hash = chain.transfer(&user.secret, bob, Wei::from_eth(1)).unwrap();
    assert_eq!(chain.pending_count(), 1);
    chain.mine_block();
    let receipt = chain.receipt(hash).expect("mined");
    assert!(receipt.status.is_success());
    assert_eq!(receipt.gas_used, Gas(21_000));
    assert_eq!(chain.balance(bob), Wei::from_eth(1));
    let expected_fee = Gas(21_000).cost_at(chain.config().gas_price);
    assert_eq!(receipt.fee, expected_fee);
    assert_eq!(
        chain.balance(user.address),
        Wei::from_eth(99).checked_sub(expected_fee).unwrap()
    );
    assert_eq!(chain.total_fees_paid(user.address), expected_fee);
}

#[test]
fn unfunded_sender_rejected_at_submit() {
    let chain = Chain::with_defaults(Clock::manual());
    let poor = Keypair::from_seed(b"poor");
    let err = chain
        .transfer(&poor.secret, Keypair::from_seed(b"x").address, Wei(1))
        .unwrap_err();
    assert!(matches!(err, ChainError::InsufficientBalance { .. }));
}

#[test]
fn nonces_sequence_across_mempool() {
    let (chain, user) = setup();
    let bob = Keypair::from_seed(b"bob2").address;
    // Three transfers in-flight simultaneously must take nonces 0, 1, 2.
    for _ in 0..3 {
        chain.transfer(&user.secret, bob, Wei(10)).unwrap();
    }
    assert_eq!(chain.next_nonce(user.address), 3);
    chain.mine_block();
    assert_eq!(chain.balance(bob), Wei(30));
    assert_eq!(chain.next_nonce(user.address), 3);
}

#[test]
fn deploy_and_call_roundtrip() {
    let (chain, user) = setup();
    let (addr, deploy_hash) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 500)
        .unwrap();
    chain.mine_block();
    let receipt = chain.receipt(deploy_hash).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(receipt.contract_address, Some(addr));
    assert!(chain.contract_exists(addr));

    let call = chain
        .call_contract(
            &user.secret,
            addr,
            Wei::ZERO,
            vec![0x01, 7, 42],
            Gas(100_000),
        )
        .unwrap();
    chain.mine_block();
    assert!(chain.receipt(call).unwrap().status.is_success());
    // Read back through a view call (free).
    assert_eq!(chain.view(addr, &[0x02, 7]).unwrap(), vec![42]);
    assert_eq!(chain.view(addr, &[0x02, 8]).unwrap(), vec![0]);
}

#[test]
fn revert_rolls_back_contract_state_but_charges_fee() {
    let (chain, user) = setup();
    let (addr, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    let before = chain.balance(user.address);
    let call = chain
        .call_contract(&user.secret, addr, Wei::ZERO, vec![0x03], Gas(100_000))
        .unwrap();
    chain.mine_block();
    let receipt = chain.receipt(call).unwrap();
    assert!(matches!(receipt.status, ExecStatus::Reverted(ref r) if r.contains("deliberate")));
    // Slot 0xFF must not exist (rollback).
    assert_eq!(chain.view(addr, &[0x02, 0xFF]).unwrap(), vec![0]);
    // Fee was still charged.
    assert!(chain.balance(user.address) < before);
    assert_eq!(
        receipt.fee,
        receipt.gas_used.cost_at(chain.config().gas_price)
    );
}

#[test]
fn value_attached_to_reverted_call_is_returned() {
    let (chain, user) = setup();
    let (addr, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    let call = chain
        .call_contract(
            &user.secret,
            addr,
            Wei::from_eth(5),
            vec![0x03],
            Gas(100_000),
        )
        .unwrap();
    chain.mine_block();
    assert!(!chain.receipt(call).unwrap().status.is_success());
    assert_eq!(chain.balance(addr), Wei::ZERO, "endowment rolled back");
}

#[test]
fn contract_can_pay_out_its_balance() {
    let (chain, user) = setup();
    let (addr, _) = chain
        .deploy(
            &user.secret,
            Box::new(Vault::default()),
            Wei::from_eth(1),
            100,
        )
        .unwrap();
    chain.mine_block();
    assert_eq!(chain.balance(addr), Wei::from_eth(1));
    let payee = Keypair::from_seed(b"payee").address;
    let mut data = vec![0x04];
    data.extend_from_slice(&payee.0);
    chain
        .call_contract(&user.secret, addr, Wei::ZERO, data, Gas(100_000))
        .unwrap();
    chain.mine_block();
    assert_eq!(chain.balance(payee), Wei(100));
    assert_eq!(
        chain.balance(addr),
        Wei::from_eth(1).checked_sub(Wei(100)).unwrap()
    );
}

#[test]
fn events_reach_subscribers() {
    let (chain, user) = setup();
    let (addr, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    let events = chain.subscribe_events();
    chain
        .call_contract(&user.secret, addr, Wei::ZERO, vec![0x05], Gas(100_000))
        .unwrap();
    chain.mine_block();
    let log = events.try_recv().expect("event delivered at mining");
    assert_eq!(log.name, "Ping");
    assert_eq!(log.data, b"pong");
    assert_eq!(log.contract, addr);
}

#[test]
fn view_calls_never_persist_or_cost() {
    let (chain, user) = setup();
    let (addr, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    let balance_before = chain.balance(user.address);
    // A view of the store selector would mutate a clone only.
    let _ = chain.view(addr, &[0x01, 1, 1]);
    assert_eq!(chain.view(addr, &[0x02, 1]).unwrap(), vec![0]);
    assert_eq!(chain.balance(user.address), balance_before);
    // Unknown contract.
    assert!(matches!(
        chain.view(wedge_chain::Address([0xAB; 20]), &[]),
        Err(ChainError::UnknownContract(_))
    ));
}

#[test]
fn out_of_gas_reverts() {
    let (chain, user) = setup();
    let (addr, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    // Storage set costs 20k on top of 21k intrinsic; 30k total is too low.
    let call = chain
        .call_contract(&user.secret, addr, Wei::ZERO, vec![0x01, 1, 1], Gas(30_000))
        .unwrap();
    chain.mine_block();
    let receipt = chain.receipt(call).unwrap();
    assert!(matches!(receipt.status, ExecStatus::Reverted(ref r) if r.contains("gas")));
    assert_eq!(chain.view(addr, &[0x02, 1]).unwrap(), vec![0]);
}

#[test]
fn block_timestamps_follow_the_clock() {
    let clock = Clock::manual();
    let chain = Chain::with_defaults(clock.clone());
    clock.advance(Duration::from_secs(100));
    let b1 = chain.mine_block();
    assert_eq!(b1.timestamp, 100);
    clock.advance(Duration::from_secs(13));
    let b2 = chain.mine_block();
    assert_eq!(b2.timestamp, 113);
    assert_eq!(b2.parent, b1.hash);
    assert_eq!(chain.block_number(), 2);
}

#[test]
fn miner_thread_and_confirmations_on_compressed_clock() {
    // 1000x compression: 13 s blocks run every 13 ms of wall time.
    let clock = Clock::compressed(1000.0);
    let config = ChainConfig::default();
    let chain = Chain::new(clock.clone(), config);
    let user = Keypair::from_seed(b"miner-test");
    chain.fund(user.address, Wei::from_eth(10));
    let miner = chain.start_miner();

    let t0 = clock.now();
    let hash = chain
        .transfer(&user.secret, Keypair::from_seed(b"to").address, Wei(5))
        .unwrap();
    let receipt = chain.wait_for_receipt(hash).unwrap();
    let latency = clock.now().since(t0);
    assert!(receipt.status.is_success());
    // Inclusion (≤ 13 s) + 2 confirmations (26 s) ≈ 26–45 simulated seconds.
    assert!(
        latency >= Duration::from_secs(20) && latency <= Duration::from_secs(80),
        "unexpected stage-2-style latency: {latency:?}"
    );
    miner.stop();
}

#[test]
fn replay_rejected() {
    let (chain, user) = setup();
    let bob = Keypair::from_seed(b"replay-bob").address;
    let tx = wedge_chain::Transaction {
        nonce: 0,
        to: bob,
        value: Wei(1),
        data: vec![],
        gas_limit: Gas(21_000),
        gas_price: chain.config().gas_price,
        kind: wedge_chain::TxKind::Transfer,
    };
    let signed = tx.sign(&user.secret);
    chain.submit(signed.clone()).unwrap();
    chain.mine_block();
    assert_eq!(chain.balance(bob), Wei(1));
    // Same nonce again: rejected at submit.
    assert!(matches!(
        chain.submit(signed),
        Err(ChainError::NonceTooLow { .. })
    ));
}

#[test]
fn block_gas_limit_defers_overflow_txs() {
    let clock = Clock::manual();
    // The transfer helper reserves a 30k gas limit per tx; two fit in 70k.
    let config = ChainConfig {
        block_gas_limit: Gas(70_000),
        ..Default::default()
    };
    let chain = Chain::new(clock, config);
    let user = Keypair::from_seed(b"full-block");
    chain.fund(user.address, Wei::from_eth(10));
    let bob = Keypair::from_seed(b"bob3").address;
    for _ in 0..3 {
        chain.transfer(&user.secret, bob, Wei(1)).unwrap();
    }
    // Only two 21k transfers fit into a 50k block.
    let b1 = chain.mine_block();
    assert_eq!(b1.tx_hashes.len(), 2);
    let b2 = chain.mine_block();
    assert_eq!(b2.tx_hashes.len(), 1);
    assert_eq!(chain.balance(bob), Wei(3));
}

#[test]
fn filtered_event_subscription_only_sees_its_contract() {
    let (chain, user) = setup();
    let (vault_a, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    let (vault_b, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    let only_a = chain.subscribe_contract_events(vault_a);
    let everything = chain.subscribe_events();
    // Ping both contracts.
    chain
        .call_contract(&user.secret, vault_a, Wei::ZERO, vec![0x05], Gas(100_000))
        .unwrap();
    chain
        .call_contract(&user.secret, vault_b, Wei::ZERO, vec![0x05], Gas(100_000))
        .unwrap();
    chain.mine_block();
    // Filtered channel: exactly one event, from vault A.
    let log = only_a.try_recv().unwrap();
    assert_eq!(log.contract, vault_a);
    assert!(only_a.try_recv().is_err(), "no cross-contract leakage");
    // Unfiltered channel: both.
    assert_eq!(everything.try_recv().unwrap().contract, vault_a);
    assert_eq!(everything.try_recv().unwrap().contract, vault_b);
}

#[test]
fn explorer_queries() {
    let (chain, user) = setup();
    let bob = Keypair::from_seed(b"explorer-bob").address;
    chain.transfer(&user.secret, bob, Wei(1)).unwrap();
    chain.transfer(&user.secret, bob, Wei(2)).unwrap();
    chain.mine_block(); // block 1: two txs
    chain.transfer(&user.secret, bob, Wei(3)).unwrap();
    chain.mine_block(); // block 2: one tx
    chain.mine_block(); // block 3: empty

    assert_eq!(chain.head().number, 3);
    assert_eq!(chain.total_transactions(), 3);
    let range = chain.block_range(1, 2);
    assert_eq!(range.len(), 2);
    assert_eq!(range[0].tx_hashes.len(), 2);
    assert_eq!(range[1].tx_hashes.len(), 1);
    // Out-of-range queries clamp instead of panicking.
    assert_eq!(chain.block_range(10, 20).len(), 0);
    let receipts = chain.block_receipts(1);
    assert_eq!(receipts.len(), 2);
    assert!(receipts.iter().all(|r| r.status.is_success()));
    assert!(chain.block_receipts(99).is_empty());
}

#[test]
fn dropped_subscriber_is_pruned() {
    let (chain, user) = setup();
    let (vault, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    {
        let _short_lived = chain.subscribe_events();
        // Receiver dropped here.
    }
    chain
        .call_contract(&user.secret, vault, Wei::ZERO, vec![0x05], Gas(100_000))
        .unwrap();
    // Mining with a dead subscriber must not fail or leak.
    let block = chain.mine_block();
    assert_eq!(block.tx_hashes.len(), 1);
}

#[test]
fn gas_estimation_matches_execution() {
    let (chain, user) = setup();
    let (addr, _) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    let calldata = vec![0x01, 3, 9];
    let estimate = chain
        .estimate_gas(user.address, addr, Wei::ZERO, &calldata)
        .unwrap();
    // Estimation leaves no trace.
    assert_eq!(chain.view(addr, &[0x02, 3]).unwrap(), vec![0]);
    // Real execution uses exactly the estimated gas.
    let tx = chain
        .call_contract(&user.secret, addr, Wei::ZERO, calldata, estimate)
        .unwrap();
    chain.mine_block();
    let receipt = chain.receipt(tx).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(receipt.gas_used, estimate);
    // Reverting calls estimate as errors.
    assert!(matches!(
        chain.estimate_gas(user.address, addr, Wei::ZERO, &[0x03]),
        Err(ChainError::Reverted(_))
    ));
    assert!(chain
        .estimate_gas(user.address, wedge_chain::Address([9; 20]), Wei::ZERO, &[])
        .is_err());
}

#[test]
fn deploy_charges_code_deposit_gas() {
    let (chain, user) = setup();
    let (small, tx_small) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 100)
        .unwrap();
    let (large, tx_large) = chain
        .deploy(&user.secret, Box::new(Vault::default()), Wei::ZERO, 3000)
        .unwrap();
    chain.mine_block();
    assert_ne!(small, large);
    let g_small = chain.receipt(tx_small).unwrap().gas_used.0;
    let g_large = chain.receipt(tx_large).unwrap().gas_used.0;
    // 2900 extra bytes × (200 deposit + 16 calldata) = 626,400 extra gas.
    assert_eq!(g_large - g_small, 2900 * 216);
}

#[test]
fn call_to_missing_contract_reverts_with_fee() {
    let (chain, user) = setup();
    let ghost = wedge_chain::Address([0xAA; 20]);
    let tx = chain
        .call_contract(&user.secret, ghost, Wei::ZERO, vec![1, 2, 3], Gas(100_000))
        .unwrap();
    chain.mine_block();
    let receipt = chain.receipt(tx).unwrap();
    assert!(matches!(receipt.status, ExecStatus::Reverted(ref r) if r.contains("no contract")));
    assert!(receipt.fee > Wei::ZERO, "intrinsic gas still charged");
}

#[test]
fn wait_for_receipt_times_out_without_miner() {
    let clock = Clock::manual();
    let config = ChainConfig {
        receipt_timeout: Duration::from_secs(5),
        receipt_poll: Duration::from_secs(1),
        ..Default::default()
    };
    let chain = Chain::new(clock.clone(), config);
    let user = Keypair::from_seed(b"timeout-user");
    chain.fund(user.address, Wei::from_eth(1));
    let hash = chain
        .transfer(&user.secret, Keypair::from_seed(b"x").address, Wei(1))
        .unwrap();
    // Drive the clock from another thread so the poll loop advances.
    let driver = std::thread::spawn({
        let clock = clock.clone();
        move || {
            for _ in 0..10 {
                std::thread::sleep(Duration::from_millis(5));
                clock.advance(Duration::from_secs(1));
            }
        }
    });
    let result = chain.wait_for_receipt(hash);
    driver.join().unwrap();
    assert!(matches!(result, Err(ChainError::ReceiptTimeout(_))));
}

#[test]
fn gas_price_jitter_wobbles_fees_within_bounds() {
    let config = ChainConfig {
        gas_price_jitter: 0.2,
        ..Default::default()
    };
    let chain = Chain::new(Clock::manual(), config);
    let user = Keypair::from_seed(b"jitter");
    chain.fund(user.address, Wei::from_eth(100));
    let bob = Keypair::from_seed(b"jitter-bob").address;
    let base_fee = Gas(21_000).cost_at(wedge_chain::DEFAULT_GAS_PRICE);
    let mut fees = Vec::new();
    for _ in 0..20 {
        let tx = chain.transfer(&user.secret, bob, Wei(1)).unwrap();
        chain.mine_block();
        fees.push(chain.receipt(tx).unwrap().fee);
    }
    // All fees within ±20% of the base; not all identical.
    for fee in &fees {
        let ratio = fee.0 as f64 / base_fee.0 as f64;
        assert!((0.79..=1.21).contains(&ratio), "fee ratio {ratio}");
    }
    assert!(
        fees.windows(2).any(|w| w[0] != w[1]),
        "jitter must vary fees"
    );
    // With jitter off, fees are exact.
    let chain2 = Chain::with_defaults(Clock::manual());
    chain2.fund(user.address, Wei::from_eth(1));
    let tx = chain2.transfer(&user.secret, bob, Wei(1)).unwrap();
    chain2.mine_block();
    assert_eq!(chain2.receipt(tx).unwrap().fee, base_fee);
}
