//! Deterministic fault-injection tests: armed faults fire exactly N times,
//! then the chain heals; counters account for every fired fault.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{CallContext, Chain, ChainConfig, ChainError, Contract, Gas, Revert, Wei};
use wedge_crypto::Keypair;
use wedge_sim::Clock;

/// A trivial contract that records how many times it ran.
#[derive(Clone, Default)]
struct Counter {
    calls: u64,
}

impl Contract for Counter {
    fn type_name(&self) -> &'static str {
        "Counter"
    }

    fn call(&mut self, _ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        // Empty input is a read-only getter (usable via `view`).
        if !input.is_empty() {
            self.calls += 1;
        }
        Ok(self.calls.to_be_bytes().to_vec())
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}

fn setup(config: ChainConfig) -> (Arc<Chain>, Keypair, wedge_chain::Address) {
    let chain = Chain::new(Clock::compressed(2000.0), config);
    let key = Keypair::from_seed(b"faults");
    chain.fund(key.address, Wei::from_eth(100));
    let (addr, _) = chain
        .deploy(&key.secret, Box::<Counter>::default(), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    (chain, key, addr)
}

#[test]
fn dropped_submissions_fire_exactly_n_times() {
    let (chain, key, _) = setup(ChainConfig::default());
    let other = Keypair::from_seed(b"faults-other");
    chain.faults().drop_next_submissions(2);
    for _ in 0..2 {
        let err = chain
            .transfer(&key.secret, other.address, Wei(1))
            .unwrap_err();
        assert!(matches!(err, ChainError::SubmissionDropped(_)), "{err}");
    }
    // Fault exhausted: the third submission goes through.
    chain.transfer(&key.secret, other.address, Wei(1)).unwrap();
    assert_eq!(chain.faults().submissions_dropped(), 2);
    assert_eq!(chain.pending_count(), 1, "only the healthy tx enqueued");
}

#[test]
fn forced_reverts_fire_exactly_n_times_and_charge_gas() {
    let (chain, key, addr) = setup(ChainConfig::default());
    chain.faults().revert_next_calls(1);
    let reverted = chain
        .call_contract(&key.secret, addr, Wei::ZERO, vec![1], Gas(100_000))
        .unwrap();
    let healthy = chain
        .call_contract(&key.secret, addr, Wei::ZERO, vec![1], Gas(100_000))
        .unwrap();
    chain.mine_block();
    let r1 = chain.receipt(reverted).unwrap();
    assert!(!r1.status.is_success(), "first call force-reverted");
    assert!(
        r1.gas_used > Gas::ZERO,
        "revert still charges intrinsic gas"
    );
    let r2 = chain.receipt(healthy).unwrap();
    assert!(r2.status.is_success(), "fault exhausted, contract ran");
    assert_eq!(chain.faults().calls_reverted(), 1);
    // The contract itself never executed during the forced revert.
    let out = chain.view(addr, &[]).unwrap();
    assert_eq!(out, 1u64.to_be_bytes().to_vec());
}

#[test]
fn delayed_receipt_hides_a_landed_transaction() {
    let config = ChainConfig {
        // Short patience so the delay manifests as a timeout.
        receipt_timeout: Duration::from_secs(40),
        ..Default::default()
    };
    let (chain, key, addr) = setup(config);
    let miner = chain.start_miner();
    // 60 s hiding window: longer than one 40 s patience window (so the
    // first wait times out) but short enough that a second wait sees the
    // receipt before its own timeout.
    chain
        .faults()
        .delay_next_receipts(1, Duration::from_secs(60));
    let hash = chain
        .call_contract(&key.secret, addr, Wei::ZERO, vec![1], Gas(100_000))
        .unwrap();
    // The transaction lands, but the receipt stays hidden past the
    // timeout: the caller sees congestion, not success.
    let err = chain.wait_for_receipt(hash).unwrap_err();
    assert!(matches!(err, ChainError::ReceiptTimeout(_)), "{err}");
    assert_eq!(chain.faults().receipts_delayed(), 1);
    // Direct receipt lookup proves the transaction actually executed —
    // exactly the partial-progress case a retrying submitter must
    // reconcile instead of re-sending.
    let receipt = chain.receipt(hash).unwrap();
    assert!(receipt.status.is_success());
    // Once the hiding window passes, waiting succeeds again.
    let receipt = chain.wait_for_receipt(hash).unwrap();
    assert!(receipt.status.is_success());
    miner.stop();
}

#[test]
fn clear_disarms_pending_faults() {
    let (chain, key, _) = setup(ChainConfig::default());
    let other = Keypair::from_seed(b"faults-clear");
    chain.faults().drop_next_submissions(5);
    chain.faults().revert_next_calls(5);
    chain.faults().clear();
    chain.transfer(&key.secret, other.address, Wei(1)).unwrap();
    assert_eq!(chain.faults().submissions_dropped(), 0);
}
