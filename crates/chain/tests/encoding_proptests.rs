//! Property-based tests for the canonical encoding: arbitrary field
//! sequences roundtrip, truncation is always detected, and encodings are
//! prefix-free per field sequence.

use proptest::prelude::*;
use wedge_chain::{Decoder, Encoder};

/// A field to encode.
#[derive(Clone, Debug)]
enum Field {
    Bytes(Vec<u8>),
    U64(u64),
    U128(u128),
    U8(u8),
}

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
        any::<u64>().prop_map(Field::U64),
        any::<u128>().prop_map(Field::U128),
        any::<u8>().prop_map(Field::U8),
    ]
}

fn encode(fields: &[Field]) -> Vec<u8> {
    let mut enc = Encoder::new();
    for field in fields {
        match field {
            Field::Bytes(b) => {
                enc.bytes(b);
            }
            Field::U64(v) => {
                enc.u64(*v);
            }
            Field::U128(v) => {
                enc.u128(*v);
            }
            Field::U8(v) => {
                enc.u8(*v);
            }
        }
    }
    enc.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip(fields in prop::collection::vec(arb_field(), 0..16)) {
        let buf = encode(&fields);
        let mut dec = Decoder::new(&buf);
        for field in &fields {
            match field {
                Field::Bytes(b) => prop_assert_eq!(dec.bytes().unwrap(), b.as_slice()),
                Field::U64(v) => prop_assert_eq!(dec.u64().unwrap(), *v),
                Field::U128(v) => prop_assert_eq!(dec.u128().unwrap(), *v),
                Field::U8(v) => prop_assert_eq!(dec.u8().unwrap(), *v),
            }
        }
        dec.finish().unwrap();
    }

    #[test]
    fn truncation_always_detected(fields in prop::collection::vec(arb_field(), 1..8), cut in 1usize..32) {
        let buf = encode(&fields);
        prop_assume!(cut < buf.len());
        let truncated = &buf[..buf.len() - cut];
        let mut dec = Decoder::new(truncated);
        // Decoding the same schema must fail at some field OR leave the
        // final finish() unsatisfied — it can never silently succeed.
        let mut failed = false;
        for field in &fields {
            let ok = match field {
                Field::Bytes(b) => dec.bytes().map(|x| x == b.as_slice()).unwrap_or_else(|_| { failed = true; true }),
                Field::U64(v) => dec.u64().map(|x| x == *v).unwrap_or_else(|_| { failed = true; true }),
                Field::U128(v) => dec.u128().map(|x| x == *v).unwrap_or_else(|_| { failed = true; true }),
                Field::U8(v) => dec.u8().map(|x| x == *v).unwrap_or_else(|_| { failed = true; true }),
            };
            prop_assert!(ok, "decoded value changed under truncation");
            if failed {
                break;
            }
        }
        prop_assert!(failed || dec.finish().is_err(), "truncation went unnoticed");
    }

    #[test]
    fn appended_garbage_detected(fields in prop::collection::vec(arb_field(), 0..8), tail in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut buf = encode(&fields);
        buf.extend_from_slice(&tail);
        let mut dec = Decoder::new(&buf);
        for field in &fields {
            match field {
                Field::Bytes(b) => { let _ = b; let _ = dec.bytes(); }
                Field::U64(_) => { let _ = dec.u64(); }
                Field::U128(_) => { let _ = dec.u128(); }
                Field::U8(_) => { let _ = dec.u8(); }
            }
        }
        // Either a field decode consumed garbage bytes as a length prefix
        // and failed, or finish() flags the leftovers.
        prop_assert!(dec.remaining() == 0 || dec.finish().is_err());
    }
}
