//! Model-based conservation testing for the chain: under arbitrary
//! interleavings of transfers, deploys, contract calls (some reverting) and
//! mining, the total supply is conserved:
//!
//! `Σ balances + Σ burned fees == Σ faucet funding`

use proptest::prelude::*;
use wedge_chain::{CallContext, Chain, Contract, Gas, Revert, Wei};
use wedge_crypto::Keypair;
use wedge_sim::Clock;

/// A contract that stores, pays out, or reverts depending on calldata.
#[derive(Clone, Default)]
struct Sink {
    stored: u64,
}

impl Contract for Sink {
    fn type_name(&self) -> &'static str {
        "Sink"
    }
    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        match input.first() {
            Some(1) => {
                ctx.charge_storage_set(1)?;
                self.stored += 1;
                Ok(vec![])
            }
            Some(2) => {
                // Pay half the balance back to the caller.
                let half = Wei(ctx.contract_balance().0 / 2);
                ctx.transfer_out(ctx.sender, half)?;
                Ok(vec![])
            }
            _ => Err(Revert::new("boom")),
        }
    }
    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Debug)]
enum Op {
    Transfer {
        from: usize,
        to: usize,
        amount: u64,
    },
    Deploy {
        from: usize,
        endowment: u64,
    },
    Call {
        from: usize,
        selector: u8,
        value: u64,
    },
    Mine,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0usize..3, 0u64..1_000_000).prop_map(|(from, to, amount)| Op::Transfer {
            from,
            to,
            amount
        }),
        (0usize..3, 0u64..1_000_000).prop_map(|(from, endowment)| Op::Deploy { from, endowment }),
        (0usize..3, 0u8..4, 0u64..1_000_000).prop_map(|(from, selector, value)| Op::Call {
            from,
            selector,
            value
        }),
        Just(Op::Mine),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn supply_is_conserved(ops in prop::collection::vec(arb_op(), 1..40)) {
        let chain = Chain::with_defaults(Clock::manual());
        let accounts: Vec<Keypair> = (0..3)
            .map(|i| Keypair::from_seed(format!("conserve-{i}").as_bytes()))
            .collect();
        let funding = Wei::from_eth(100);
        for account in &accounts {
            chain.fund(account.address, funding);
        }
        let total_supply = Wei(funding.0 * accounts.len() as u128);

        let mut contracts: Vec<wedge_chain::Address> = Vec::new();
        for op in &ops {
            match op {
                Op::Transfer { from, to, amount } => {
                    let _ = chain.transfer(
                        &accounts[*from].secret,
                        accounts[*to].address,
                        Wei(*amount as u128),
                    );
                }
                Op::Deploy { from, endowment } => {
                    if let Ok((addr, _)) = chain.deploy(
                        &accounts[*from].secret,
                        Box::new(Sink::default()),
                        Wei(*endowment as u128),
                        200,
                    ) {
                        contracts.push(addr);
                    }
                }
                Op::Call { from, selector, value } => {
                    if let Some(&addr) = contracts.first() {
                        let _ = chain.call_contract(
                            &accounts[*from].secret,
                            addr,
                            Wei(*value as u128),
                            vec![*selector],
                            Gas(200_000),
                        );
                    }
                }
                Op::Mine => {
                    chain.mine_block();
                }
            }
        }
        // Drain the mempool.
        while chain.pending_count() > 0 {
            chain.mine_block();
        }
        // Conservation: account balances + contract balances + burned fees.
        let mut circulating = Wei::ZERO;
        for account in &accounts {
            circulating = circulating.checked_add(chain.balance(account.address)).unwrap();
        }
        for addr in &contracts {
            circulating = circulating.checked_add(chain.balance(*addr)).unwrap();
        }
        let total = circulating.checked_add(chain.total_fees_burned()).unwrap();
        prop_assert_eq!(total, total_supply, "supply leaked or was minted");
    }
}

/// Deterministic regression: a reverting call with attached value conserves
/// supply exactly (the rollback path refunds the endowment, the fee burns).
#[test]
fn reverting_call_conserves_supply() {
    let chain = Chain::with_defaults(Clock::manual());
    let user = Keypair::from_seed(b"conserve-revert");
    chain.fund(user.address, Wei::from_eth(10));
    let (addr, _) = chain
        .deploy(&user.secret, Box::new(Sink::default()), Wei::ZERO, 100)
        .unwrap();
    chain.mine_block();
    chain
        .call_contract(&user.secret, addr, Wei::from_eth(3), vec![9], Gas(200_000))
        .unwrap();
    chain.mine_block();
    let total = chain
        .balance(user.address)
        .checked_add(chain.balance(addr))
        .unwrap()
        .checked_add(chain.total_fees_burned())
        .unwrap();
    assert_eq!(total, Wei::from_eth(10));
}
