//! Gas schedule calibrated to Ethereum's published costs.
//!
//! The paper's monetary results (Figures 3/5, Table 1) are driven entirely
//! by how many bytes land in calldata and how many 32-byte words land in
//! contract storage. Those are the costs this schedule reproduces:
//!
//! | Operation | Gas | Source |
//! |---|---|---|
//! | transaction base | 21 000 | Ethereum yellow paper `G_transaction` |
//! | calldata, non-zero byte | 16 | EIP-2028 |
//! | calldata, zero byte | 4 | EIP-2028 |
//! | storage word, first write | 20 000 | `G_sset` |
//! | storage word, rewrite | 5 000 | `G_sreset` |
//! | storage read | 800 | `G_sload` (Istanbul) |
//! | log base / per byte | 375 / 8 | `G_log`, `G_logdata` |
//! | value transfer to a contract | 9 000 | `G_callvalue` |
//! | contract deployment | 32 000 + 200/byte | `G_create`, `G_codedeposit` |
//!
//! Gas price defaults to 100 gwei — a deliberately fixed stand-in for the
//! fluctuating Ropsten fee the paper observed (§6 notes cost irregularities
//! were "mostly a reflection of the fluctuation in the Ropsten network's
//! transaction fee"). Absolute ETH numbers therefore differ from Table 1;
//! every ratio the paper reports is preserved.

use crate::types::{Gas, Wei};

/// Per-operation gas costs (see module docs for calibration sources).
#[derive(Clone, Copy, Debug)]
pub struct GasSchedule {
    /// Base cost of any transaction.
    pub tx_base: u64,
    /// Per non-zero calldata byte.
    pub calldata_nonzero_byte: u64,
    /// Per zero calldata byte.
    pub calldata_zero_byte: u64,
    /// First write to a storage word.
    pub sstore_set: u64,
    /// Rewrite of an existing storage word.
    pub sstore_reset: u64,
    /// Read of a storage word.
    pub sload: u64,
    /// Base cost of emitting an event.
    pub log_base: u64,
    /// Per byte of event data.
    pub log_data_byte: u64,
    /// Surcharge for transferring value into a contract call.
    pub call_value: u64,
    /// Base cost of deploying a contract.
    pub create_base: u64,
    /// Per byte of deployed code.
    pub code_deposit_byte: u64,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            tx_base: 21_000,
            calldata_nonzero_byte: 16,
            calldata_zero_byte: 4,
            sstore_set: 20_000,
            sstore_reset: 5_000,
            sload: 800,
            log_base: 375,
            log_data_byte: 8,
            call_value: 9_000,
            create_base: 32_000,
            code_deposit_byte: 200,
        }
    }
}

impl GasSchedule {
    /// Intrinsic gas of a transaction carrying `data` as calldata.
    pub fn intrinsic(&self, data: &[u8]) -> Gas {
        let mut gas = self.tx_base;
        for &b in data {
            let byte_cost = if b == 0 {
                self.calldata_zero_byte
            } else {
                self.calldata_nonzero_byte
            };
            gas = gas.saturating_add(byte_cost);
        }
        Gas(gas)
    }

    /// Gas for writing `words` fresh 32-byte storage words.
    pub fn storage_set(&self, words: usize) -> Gas {
        Gas(self.sstore_set.saturating_mul(words as u64))
    }

    /// Gas for rewriting `words` existing storage words.
    pub fn storage_reset(&self, words: usize) -> Gas {
        Gas(self.sstore_reset.saturating_mul(words as u64))
    }

    /// Gas for reading `words` storage words.
    pub fn storage_read(&self, words: usize) -> Gas {
        Gas(self.sload.saturating_mul(words as u64))
    }

    /// Gas for emitting an event with `data_len` bytes of payload.
    pub fn log(&self, data_len: usize) -> Gas {
        Gas(self
            .log_base
            .saturating_add(self.log_data_byte.saturating_mul(data_len as u64)))
    }

    /// Gas for deploying a contract whose notional code is `code_len` bytes.
    pub fn deploy(&self, code_len: usize) -> Gas {
        Gas(self
            .create_base
            .saturating_add(self.code_deposit_byte.saturating_mul(code_len as u64)))
    }
}

/// The default gas price used across benchmarks (100 gwei).
pub const DEFAULT_GAS_PRICE: Wei = Wei::from_gwei(100);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_counts_zero_and_nonzero() {
        let s = GasSchedule::default();
        assert_eq!(s.intrinsic(&[]), Gas(21_000));
        // 2 non-zero + 2 zero bytes.
        assert_eq!(s.intrinsic(&[1, 0, 2, 0]), Gas(21_000 + 16 * 2 + 4 * 2));
    }

    #[test]
    fn storage_costs_scale() {
        let s = GasSchedule::default();
        assert_eq!(s.storage_set(2), Gas(40_000));
        assert_eq!(s.storage_reset(3), Gas(15_000));
        assert_eq!(s.storage_read(2), Gas(1_600));
    }

    #[test]
    fn log_and_deploy() {
        let s = GasSchedule::default();
        assert_eq!(s.log(10), Gas(375 + 80));
        assert_eq!(s.deploy(100), Gas(32_000 + 20_000));
    }

    #[test]
    fn a_raw_1kb_write_costs_orders_more_than_a_digest() {
        // The economic heart of the paper: on-chain cost of a 1 KB entry
        // (OCL) vs a 32-byte digest amortized over a 2000-entry batch (WB).
        let s = GasSchedule::default();
        let entry = vec![0xABu8; 1088];
        let ocl = s.intrinsic(&entry).0 + s.storage_set(1088usize.div_ceil(32)).0;
        let digest = vec![0xCDu8; 32];
        let wb_batch = s.intrinsic(&digest).0 + s.storage_set(1).0;
        let wb_per_op = wb_batch as f64 / 2000.0;
        let ratio = ocl as f64 / wb_per_op;
        assert!(ratio > 100.0, "expected >100x cost gap, got {ratio:.0}x");
    }
}
