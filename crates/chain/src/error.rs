//! Error type for the simulated chain.

use std::fmt;

use crate::types::{Address, Gas, TxHash, Wei};

/// Errors surfaced by chain operations (submission, execution, queries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Transaction signature invalid or sender mismatch.
    BadSignature {
        /// Offending transaction.
        tx: TxHash,
    },
    /// Transaction nonce below the account's next nonce.
    NonceTooLow {
        /// Next valid nonce.
        expected: u64,
        /// Nonce supplied.
        got: u64,
    },
    /// Sender cannot cover `value + gas_limit * gas_price`.
    InsufficientBalance {
        /// The account.
        address: Address,
        /// Wei required.
        needed: Wei,
        /// Wei available.
        available: Wei,
    },
    /// Call target has no deployed contract.
    UnknownContract(Address),
    /// A view call reverted.
    Reverted(String),
    /// Execution exceeded the transaction gas limit.
    OutOfGas {
        /// The configured limit.
        limit: Gas,
    },
    /// `wait_for_receipt` gave up (no miner running?).
    ReceiptTimeout(TxHash),
    /// The transaction was rejected before reaching the mempool (injected
    /// via [`crate::ChainFaults`], standing in for RPC outages and full
    /// mempools).
    SubmissionDropped(TxHash),
    /// A deploy transaction's predicted address did not match.
    DeployAddressMismatch,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadSignature { tx } => write!(f, "bad signature on tx {tx}"),
            ChainError::NonceTooLow { expected, got } => {
                write!(f, "nonce too low: expected {expected}, got {got}")
            }
            ChainError::InsufficientBalance {
                address,
                needed,
                available,
            } => write!(
                f,
                "insufficient balance for {address}: need {needed}, have {available}"
            ),
            ChainError::UnknownContract(addr) => write!(f, "no contract at {addr}"),
            ChainError::Reverted(reason) => write!(f, "execution reverted: {reason}"),
            ChainError::OutOfGas { limit } => write!(f, "out of gas (limit {limit})"),
            ChainError::ReceiptTimeout(tx) => {
                write!(
                    f,
                    "timed out waiting for receipt of {tx} (is a miner running?)"
                )
            }
            ChainError::SubmissionDropped(tx) => {
                write!(f, "submission of {tx} dropped before the mempool")
            }
            ChainError::DeployAddressMismatch => write!(f, "deploy address mismatch"),
        }
    }
}

impl std::error::Error for ChainError {}
