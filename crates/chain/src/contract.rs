//! The contract host: how Rust-native "smart contracts" execute inside the
//! simulated chain.
//!
//! Contracts are Rust state machines implementing [`Contract`]. They receive
//! ABI-encoded calldata (so intrinsic gas sees realistic byte counts) and a
//! [`CallContext`] through which every externally visible effect flows:
//! balance transfers, event emission, storage-gas charging, and read-only
//! cross-contract calls. The executor snapshots contract + balances before a
//! call and rolls both back on revert, so contracts get transactional
//! semantics just like the EVM.

use std::collections::HashMap;

use crate::block::EventLog;
use crate::gas::GasSchedule;
use crate::types::{Address, Gas, Wei};

/// A revert: execution failed, all effects are rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Revert {
    /// Human-readable reason (mirrors Solidity's revert strings).
    pub reason: String,
}

impl Revert {
    /// Creates a revert with the given reason.
    pub fn new(reason: impl Into<String>) -> Revert {
        Revert {
            reason: reason.into(),
        }
    }
}

impl core::fmt::Display for Revert {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "revert: {}", self.reason)
    }
}

/// A deployable contract.
pub trait Contract: Send {
    /// Short type name for logs and receipts.
    fn type_name(&self) -> &'static str;

    /// Handles one call. `input` is the ABI-encoded calldata; the returned
    /// bytes are the ABI-encoded result.
    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert>;

    /// Clones the contract state (used for revert snapshots and view calls).
    fn clone_box(&self) -> Box<dyn Contract>;
}

/// Account balances and nonces.
#[derive(Default, Clone, Debug)]
pub struct WorldState {
    balances: HashMap<Address, Wei>,
    nonces: HashMap<Address, u64>,
}

impl WorldState {
    /// Balance of `addr` (zero if untouched).
    pub fn balance(&self, addr: Address) -> Wei {
        self.balances.get(&addr).copied().unwrap_or(Wei::ZERO)
    }

    /// Next nonce for `addr`.
    pub fn nonce(&self, addr: Address) -> u64 {
        self.nonces.get(&addr).copied().unwrap_or(0)
    }

    /// Credits `addr` with `amount`, saturating at the `u128` ceiling (the
    /// simulated economy mints nowhere near it).
    pub fn credit(&mut self, addr: Address, amount: Wei) {
        let entry = self.balances.entry(addr).or_insert(Wei::ZERO);
        *entry = entry.saturating_add(amount);
    }

    /// Debits `addr`, failing if the balance is insufficient.
    pub fn debit(&mut self, addr: Address, amount: Wei) -> Result<(), (Wei, Wei)> {
        let available = self.balance(addr);
        match available.checked_sub(amount) {
            Some(rest) => {
                self.balances.insert(addr, rest);
                Ok(())
            }
            None => Err((amount, available)),
        }
    }

    /// Increments and returns the previous nonce.
    pub fn bump_nonce(&mut self, addr: Address) -> u64 {
        let entry = self.nonces.entry(addr).or_insert(0);
        let prev = *entry;
        *entry += 1;
        prev
    }

    /// Snapshot for revert handling.
    pub(crate) fn snapshot(&self) -> WorldState {
        self.clone()
    }
}

/// The registry of deployed contracts.
pub type ContractRegistry = HashMap<Address, Box<dyn Contract>>;

/// Everything a contract can see and touch during one call.
pub struct CallContext<'a> {
    /// The calling account (`Txn.sender` in the paper's algorithms).
    pub sender: Address,
    /// Wei attached to the call (already credited to the contract).
    pub value: Wei,
    /// The contract's own address.
    pub contract: Address,
    /// Number of the block executing this call.
    pub block_number: u64,
    /// Block timestamp in simulated seconds (the paper's Payment contract
    /// reads exactly this).
    pub timestamp: u64,
    /// Gas schedule for metered operations.
    pub schedule: &'a GasSchedule,
    /// Gas consumed so far (starts at the intrinsic cost).
    gas_used: Gas,
    /// Gas ceiling.
    gas_limit: Gas,
    /// Shared account state.
    state: &'a mut WorldState,
    /// All *other* contracts (the executing one is temporarily removed),
    /// for read-only cross-contract calls.
    others: &'a mut ContractRegistry,
    /// Events emitted by this call (discarded on revert).
    logs: Vec<EventLog>,
    /// True inside view calls: all mutation attempts revert.
    view_only: bool,
    /// Nesting depth (cross-contract view calls).
    depth: u32,
}

impl<'a> CallContext<'a> {
    /// Builds a context (host-internal).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        sender: Address,
        value: Wei,
        contract: Address,
        block_number: u64,
        timestamp: u64,
        schedule: &'a GasSchedule,
        intrinsic: Gas,
        gas_limit: Gas,
        state: &'a mut WorldState,
        others: &'a mut ContractRegistry,
        view_only: bool,
    ) -> CallContext<'a> {
        CallContext {
            sender,
            value,
            contract,
            block_number,
            timestamp,
            schedule,
            gas_used: intrinsic,
            gas_limit,
            state,
            others,
            logs: Vec::new(),
            view_only,
            depth: 0,
        }
    }

    /// Charges `gas`, reverting on exhaustion.
    pub fn charge(&mut self, gas: Gas) -> Result<(), Revert> {
        self.gas_used = self.gas_used.saturating_add(gas);
        if self.gas_used > self.gas_limit {
            Err(Revert::new("out of gas"))
        } else {
            Ok(())
        }
    }

    /// Charges for `words` fresh storage words.
    pub fn charge_storage_set(&mut self, words: usize) -> Result<(), Revert> {
        let gas = self.schedule.storage_set(words);
        self.charge(gas)
    }

    /// Charges for rewriting `words` existing storage words.
    pub fn charge_storage_reset(&mut self, words: usize) -> Result<(), Revert> {
        let gas = self.schedule.storage_reset(words);
        self.charge(gas)
    }

    /// Charges for reading `words` storage words.
    pub fn charge_storage_read(&mut self, words: usize) -> Result<(), Revert> {
        let gas = self.schedule.storage_read(words);
        self.charge(gas)
    }

    /// Emits an event (buffered; lands in the receipt on success).
    pub fn emit(&mut self, name: &'static str, data: Vec<u8>) -> Result<(), Revert> {
        let gas = self.schedule.log(data.len());
        self.charge(gas)?;
        if self.view_only {
            return Err(Revert::new("event emission in view call"));
        }
        self.logs.push(EventLog {
            contract: self.contract,
            name,
            data,
        });
        Ok(())
    }

    /// The contract's own balance.
    pub fn contract_balance(&self) -> Wei {
        self.state.balance(self.contract)
    }

    /// Any account's balance.
    pub fn balance_of(&self, addr: Address) -> Wei {
        self.state.balance(addr)
    }

    /// Transfers `amount` out of the contract's balance (the
    /// `clientAddress.call{value: ...}` pattern of Algorithm 2).
    pub fn transfer_out(&mut self, to: Address, amount: Wei) -> Result<(), Revert> {
        if self.view_only {
            return Err(Revert::new("transfer in view call"));
        }
        self.charge(Gas(self.schedule.call_value))?;
        self.state
            .debit(self.contract, amount)
            .map_err(|(needed, available)| {
                Revert::new(format!(
                    "contract balance too low: need {needed}, have {available}"
                ))
            })?;
        self.state.credit(to, amount);
        Ok(())
    }

    /// Read-only call into another contract (the Punishment contract calling
    /// `rootContract.getRootAtIndex`, Algorithm 2 line 5).
    ///
    /// Executes against a clone of the target, so any mutation the target
    /// attempts is discarded; gas is charged to this call.
    pub fn call_view(&mut self, target: Address, input: &[u8]) -> Result<Vec<u8>, Revert> {
        if self.depth >= 4 {
            return Err(Revert::new("call depth exceeded"));
        }
        self.charge(Gas(700))?; // CALL base cost
        let callee = self
            .others
            .get(&target)
            .ok_or_else(|| Revert::new(format!("no contract at {target}")))?;
        let mut clone = callee.clone_box();
        let mut sub = CallContext {
            sender: self.contract,
            value: Wei::ZERO,
            contract: target,
            block_number: self.block_number,
            timestamp: self.timestamp,
            schedule: self.schedule,
            gas_used: self.gas_used,
            gas_limit: self.gas_limit,
            state: self.state,
            others: self.others,
            logs: Vec::new(),
            view_only: true,
            depth: self.depth + 1,
        };
        let result = clone.call(&mut sub, input);
        let sub_gas = sub.gas_used;
        self.gas_used = sub_gas;
        result
    }

    /// Gas consumed so far.
    pub fn gas_used(&self) -> Gas {
        self.gas_used
    }

    /// Takes the buffered event logs (host-internal).
    pub(crate) fn take_logs(&mut self) -> Vec<EventLog> {
        std::mem::take(&mut self.logs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal counter contract used to exercise the host.
    #[derive(Clone, Default)]
    struct Counter {
        count: u64,
    }

    impl Contract for Counter {
        fn type_name(&self) -> &'static str {
            "Counter"
        }
        fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
            match input.first() {
                Some(1) => {
                    ctx.charge_storage_reset(1)?;
                    self.count += 1;
                    ctx.emit("Incremented", self.count.to_be_bytes().to_vec())?;
                    Ok(self.count.to_be_bytes().to_vec())
                }
                Some(2) => Ok(self.count.to_be_bytes().to_vec()),
                _ => Err(Revert::new("unknown selector")),
            }
        }
        fn clone_box(&self) -> Box<dyn Contract> {
            Box::new(self.clone())
        }
    }

    fn harness() -> (WorldState, ContractRegistry, GasSchedule) {
        (
            WorldState::default(),
            ContractRegistry::new(),
            GasSchedule::default(),
        )
    }

    #[test]
    fn charge_respects_limit() {
        let (mut state, mut others, schedule) = harness();
        let mut ctx = CallContext::new(
            Address([1; 20]),
            Wei::ZERO,
            Address([2; 20]),
            1,
            10,
            &schedule,
            Gas(21_000),
            Gas(22_000),
            &mut state,
            &mut others,
            false,
        );
        assert!(ctx.charge(Gas(900)).is_ok());
        assert!(ctx.charge(Gas(200)).is_err());
    }

    #[test]
    fn transfer_out_moves_balance() {
        let (mut state, mut others, schedule) = harness();
        let contract = Address([2; 20]);
        let user = Address([3; 20]);
        state.credit(contract, Wei(1000));
        let mut ctx = CallContext::new(
            user,
            Wei::ZERO,
            contract,
            1,
            10,
            &schedule,
            Gas::ZERO,
            Gas(1_000_000),
            &mut state,
            &mut others,
            false,
        );
        ctx.transfer_out(user, Wei(400)).unwrap();
        assert_eq!(ctx.contract_balance(), Wei(600));
        assert_eq!(ctx.balance_of(user), Wei(400));
        assert!(ctx.transfer_out(user, Wei(601)).is_err());
    }

    #[test]
    fn view_context_blocks_mutation() {
        let (mut state, mut others, schedule) = harness();
        let contract = Address([2; 20]);
        state.credit(contract, Wei(1000));
        let mut ctx = CallContext::new(
            Address([1; 20]),
            Wei::ZERO,
            contract,
            1,
            10,
            &schedule,
            Gas::ZERO,
            Gas(1_000_000),
            &mut state,
            &mut others,
            true,
        );
        assert!(ctx.transfer_out(Address([3; 20]), Wei(1)).is_err());
        assert!(ctx.emit("X", vec![]).is_err());
    }

    #[test]
    fn cross_contract_view_reads_state() {
        let (mut state, mut others, schedule) = harness();
        let counter_addr = Address([9; 20]);
        let counter = Counter { count: 42 };
        others.insert(counter_addr, Box::new(counter));
        let mut ctx = CallContext::new(
            Address([1; 20]),
            Wei::ZERO,
            Address([2; 20]),
            1,
            10,
            &schedule,
            Gas::ZERO,
            Gas(1_000_000),
            &mut state,
            &mut others,
            false,
        );
        let out = ctx.call_view(counter_addr, &[2]).unwrap();
        assert_eq!(out, 42u64.to_be_bytes());
        // Mutating through a view call is discarded: increment then re-read.
        let _ = ctx.call_view(counter_addr, &[1]);
        let out = ctx.call_view(counter_addr, &[2]).unwrap();
        assert_eq!(out, 42u64.to_be_bytes(), "view mutation must not persist");
    }

    #[test]
    fn missing_view_target_reverts() {
        let (mut state, mut others, schedule) = harness();
        let mut ctx = CallContext::new(
            Address([1; 20]),
            Wei::ZERO,
            Address([2; 20]),
            1,
            10,
            &schedule,
            Gas::ZERO,
            Gas(1_000_000),
            &mut state,
            &mut others,
            false,
        );
        assert!(ctx.call_view(Address([0xEE; 20]), &[2]).is_err());
    }

    #[test]
    fn world_state_accounting() {
        let mut state = WorldState::default();
        let a = Address([1; 20]);
        state.credit(a, Wei(50));
        assert_eq!(state.balance(a), Wei(50));
        assert!(state.debit(a, Wei(60)).is_err());
        state.debit(a, Wei(20)).unwrap();
        assert_eq!(state.balance(a), Wei(30));
        assert_eq!(state.bump_nonce(a), 0);
        assert_eq!(state.bump_nonce(a), 1);
        assert_eq!(state.nonce(a), 2);
    }
}
