//! Monetary and identity newtypes for the simulated chain.

use std::fmt;
use std::iter::Sum;

pub use wedge_crypto::hash::Hash32;
pub use wedge_crypto::keys::Address;

/// An amount of currency in wei (10^-18 ETH), the unit the paper's Payment
/// contract is denominated in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Wei(pub u128);

impl Wei {
    /// Zero wei.
    pub const ZERO: Wei = Wei(0);

    /// Constructs from whole gwei (10^9 wei).
    pub const fn from_gwei(gwei: u128) -> Wei {
        Wei(gwei.saturating_mul(1_000_000_000))
    }

    /// Constructs from whole ETH (10^18 wei).
    pub const fn from_eth(eth: u128) -> Wei {
        Wei(eth.saturating_mul(1_000_000_000_000_000_000))
    }

    /// Constructs from a fractional ETH amount (benchmark convenience; not
    /// for ledger arithmetic).
    pub fn from_eth_f64(eth: f64) -> Wei {
        // lint: allow(arith) — float scaling for benchmark display, not
        // ledger arithmetic
        Wei((eth * 1e18) as u128)
    }

    /// This amount as fractional ETH (lossy; for reporting only).
    pub fn as_eth_f64(&self) -> f64 {
        self.0 as f64 / 1e18
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_add(rhs.0).map(Wei)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_sub(rhs.0).map(Wei)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a scalar count (e.g. gas × price).
    pub fn saturating_mul(self, count: u128) -> Wei {
        Wei(self.0.saturating_mul(count))
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Sum for Wei {
    fn sum<I: Iterator<Item = Wei>>(iter: I) -> Wei {
        Wei(iter.map(|w| w.0).sum())
    }
}

impl fmt::Debug for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wei({})", self.0)
    }
}

impl fmt::Display for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            return write!(f, "0 ETH");
        }
        write!(f, "{:.9} ETH", self.as_eth_f64())
    }
}

/// An amount of gas.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Gas(pub u64);

impl Gas {
    /// Zero gas.
    pub const ZERO: Gas = Gas(0);

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Gas) -> Gas {
        Gas(self.0.saturating_add(rhs.0))
    }

    /// Multiplies gas by a wei-per-gas price.
    pub fn cost_at(self, price: Wei) -> Wei {
        price.saturating_mul(self.0 as u128)
    }
}

impl Sum for Gas {
    fn sum<I: Iterator<Item = Gas>>(iter: I) -> Gas {
        Gas(iter.map(|g| g.0).sum())
    }
}

impl fmt::Display for Gas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} gas", self.0)
    }
}

/// A transaction hash.
pub type TxHash = Hash32;

/// A block number (0 = genesis).
pub type BlockNumber = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wei_conversions() {
        assert_eq!(Wei::from_gwei(1), Wei(1_000_000_000));
        assert_eq!(Wei::from_eth(2), Wei(2_000_000_000_000_000_000));
        assert!((Wei::from_eth(1).as_eth_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wei_checked_math() {
        let a = Wei(100);
        assert_eq!(a.checked_add(Wei(20)), Some(Wei(120)));
        assert_eq!(a.checked_sub(Wei(120)), None);
        assert_eq!(a.saturating_sub(Wei(120)), Wei::ZERO);
        assert_eq!(Wei(u128::MAX).checked_add(Wei(1)), None);
    }

    #[test]
    fn gas_cost() {
        let g = Gas(21_000);
        let price = Wei::from_gwei(100);
        assert_eq!(g.cost_at(price), Wei(2_100_000_000_000_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Wei::ZERO.to_string(), "0 ETH");
        assert!(Wei::from_eth(1).to_string().starts_with("1.0"));
        assert_eq!(Gas(5).to_string(), "5 gas");
    }
}
