//! Deterministic chain fault injection.
//!
//! Real deployments fail in three distinct ways the happy-path simulator
//! never exercised: a transaction can be **dropped** before it reaches the
//! mempool (RPC outage, full mempool), it can be mined but **reverted**
//! (another writer advanced the contract's tail first, gas griefing), or
//! its receipt can be **delayed** past the submitter's patience window
//! (congestion). [`ChainFaults`] arms a bounded number of each, entirely
//! deterministically: the next *N* matching operations fail, then the chain
//! heals. Tests toggle faults through [`crate::Chain::faults`] and assert
//! exact counts afterwards.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;
use wedge_sim::SimInstant;

use crate::types::TxHash;

#[derive(Default)]
struct FaultState {
    /// Remaining submissions to reject at the mempool door.
    drop_submissions: u64,
    /// Remaining contract-call executions to force-revert.
    revert_calls: u64,
    /// Remaining receipts to hide for `receipt_delay` after first query.
    delay_receipts: u64,
    /// How long a delayed receipt stays hidden (simulated time).
    receipt_delay: Duration,
    /// Hidden receipts and the instant they become visible again.
    hidden_until: HashMap<TxHash, SimInstant>,
    // Lifetime counters (never reset by `clear`).
    submissions_dropped: u64,
    calls_reverted: u64,
    receipts_delayed: u64,
}

/// Deterministic fault-injection hooks for one [`crate::Chain`].
///
/// All faults are counted down: arming `drop_next_submissions(2)` makes
/// exactly the next two [`crate::Chain::submit`] calls fail, after which
/// submission succeeds again. Counters accumulate across arms so tests can
/// assert precisely how many faults actually fired.
#[derive(Default)]
pub struct ChainFaults {
    state: Mutex<FaultState>,
}

impl ChainFaults {
    /// Arms the chain to reject the next `n` transaction submissions with
    /// [`crate::ChainError::SubmissionDropped`] (the transaction never
    /// enters the mempool).
    pub fn drop_next_submissions(&self, n: u64) {
        self.state.lock().drop_submissions = n;
    }

    /// Arms the chain to force-revert the next `n` contract-call
    /// executions at mining time (the transaction is mined, charged
    /// intrinsic gas, and its receipt reports a revert).
    pub fn revert_next_calls(&self, n: u64) {
        self.state.lock().revert_calls = n;
    }

    /// Arms the chain to hide the receipts of the next `n` distinct
    /// transactions queried via [`crate::Chain::wait_for_receipt`] for
    /// `delay` of *simulated* time after the first query. A delay beyond
    /// the configured receipt timeout turns into a
    /// [`crate::ChainError::ReceiptTimeout`] for a transaction that in
    /// fact landed — the partial-progress case a fault-tolerant submitter
    /// must reconcile.
    pub fn delay_next_receipts(&self, n: u64, delay: Duration) {
        let mut s = self.state.lock();
        s.delay_receipts = n;
        s.receipt_delay = delay;
    }

    /// Disarms every pending fault (lifetime counters are preserved).
    pub fn clear(&self) {
        let mut s = self.state.lock();
        s.drop_submissions = 0;
        s.revert_calls = 0;
        s.delay_receipts = 0;
        s.hidden_until.clear();
    }

    /// Total submissions dropped so far.
    pub fn submissions_dropped(&self) -> u64 {
        self.state.lock().submissions_dropped
    }

    /// Total contract calls force-reverted so far.
    pub fn calls_reverted(&self) -> u64 {
        self.state.lock().calls_reverted
    }

    /// Total receipts delayed so far.
    pub fn receipts_delayed(&self) -> u64 {
        self.state.lock().receipts_delayed
    }

    /// Consumes one armed submission drop, if any.
    pub(crate) fn take_submission_drop(&self) -> bool {
        let mut s = self.state.lock();
        if s.drop_submissions == 0 {
            return false;
        }
        s.drop_submissions -= 1;
        s.submissions_dropped = s.submissions_dropped.saturating_add(1);
        true
    }

    /// Consumes one armed call revert, if any.
    pub(crate) fn take_call_revert(&self) -> bool {
        let mut s = self.state.lock();
        if s.revert_calls == 0 {
            return false;
        }
        s.revert_calls -= 1;
        s.calls_reverted = s.calls_reverted.saturating_add(1);
        true
    }

    /// Whether `hash`'s confirmed receipt is currently hidden by a delay
    /// fault. The first query of a hash while a delay is armed starts that
    /// hash's hiding window.
    pub(crate) fn receipt_hidden(&self, hash: TxHash, now: SimInstant) -> bool {
        let mut s = self.state.lock();
        if let Some(&until) = s.hidden_until.get(&hash) {
            if now < until {
                return true;
            }
            s.hidden_until.remove(&hash);
            return false;
        }
        if s.delay_receipts == 0 {
            return false;
        }
        s.delay_receipts -= 1;
        s.receipts_delayed = s.receipts_delayed.saturating_add(1);
        let until = now.add(s.receipt_delay);
        s.hidden_until.insert(hash, until);
        now < until
    }
}
