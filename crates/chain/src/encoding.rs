//! Canonical byte encoding for signed structures.
//!
//! A minimal, deterministic, length-prefixed format (in the spirit of RLP
//! but simpler): every field is written as `len (u32 BE) || bytes`, integers
//! big-endian fixed-width. Used for transaction hashing/signing and for the
//! signed request/response tuples of the WedgeBlock protocol, so that two
//! parties always hash identical bytes.

/// An append-only canonical encoder.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with a capacity hint.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer, appending to whatever it already holds.
    /// Lets callers encode into a reused (pooled) allocation; [`finish`]
    /// returns the same buffer back.
    ///
    /// [`finish`]: Encoder::finish
    pub fn from_vec(buf: Vec<u8>) -> Encoder {
        Encoder { buf }
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&(v.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a fixed-width u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a fixed-width u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a fixed-width u128.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor over canonically encoded bytes.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decoding failure (truncated or malformed input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub at: usize,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "malformed encoding at byte {}", self.at)
    }
}

impl std::error::Error for DecodeError {}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError { at: self.pos })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(DecodeError { at: self.pos })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into a fixed array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let at = self.pos;
        self.take(N)?.try_into().map_err(|_| DecodeError { at })
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = u32::from_be_bytes(self.take_array::<4>()?) as usize;
        self.take(len)
    }

    /// Reads a length-prefixed byte string into a fixed array.
    pub fn bytes_fixed<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let at = self.pos;
        let slice = self.bytes()?;
        slice.try_into().map_err(|_| DecodeError { at })
    }

    /// Reads a fixed-width u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take_array::<4>()?))
    }

    /// Reads a fixed-width u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take_array::<8>()?))
    }

    /// Reads a fixed-width u128.
    pub fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_be_bytes(self.take_array::<16>()?))
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Ensures the input is fully consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError { at: self.pos })
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_fields() {
        let mut enc = Encoder::new();
        enc.u64(42)
            .bytes(b"payload")
            .u8(7)
            .u128(1 << 100)
            .bytes(b"");
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.u64().unwrap(), 42);
        assert_eq!(dec.bytes().unwrap(), b"payload");
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u128().unwrap(), 1 << 100);
        assert_eq!(dec.bytes().unwrap(), b"");
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_input_detected() {
        let mut enc = Encoder::new();
        enc.bytes(b"hello");
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf[..buf.len() - 1]);
        assert!(dec.bytes().is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut enc = Encoder::new();
        enc.u8(1);
        let mut buf = enc.finish();
        buf.push(0xFF);
        let mut dec = Decoder::new(&buf);
        dec.u8().unwrap();
        assert!(dec.finish().is_err());
    }

    #[test]
    fn fixed_array_length_enforced() {
        let mut enc = Encoder::new();
        enc.bytes(&[1, 2, 3]);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert!(dec.bytes_fixed::<4>().is_err());
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.bytes_fixed::<3>().unwrap(), [1, 2, 3]);
    }

    #[test]
    fn encoding_is_unambiguous() {
        // ("ab", "c") and ("a", "bc") must encode differently.
        let mut e1 = Encoder::new();
        e1.bytes(b"ab").bytes(b"c");
        let mut e2 = Encoder::new();
        e2.bytes(b"a").bytes(b"bc");
        assert_ne!(e1.finish(), e2.finish());
    }
}
