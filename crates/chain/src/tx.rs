//! Transactions: signed, nonce-ordered state transitions.

use wedge_crypto::ecdsa::{recover_prehashed, sign_prehashed, Signature};
use wedge_crypto::hash::{keccak256, keccak256_fixed, Hash32};
use wedge_crypto::keys::{Address, SecretKey};

use crate::encoding::Encoder;
use crate::error::ChainError;
use crate::types::{Gas, TxHash, Wei};

/// What a transaction acts on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxKind {
    /// Plain value transfer to an account (or a contract's receive hook).
    Transfer,
    /// Call a deployed contract; `data` is the ABI-encoded input.
    Call,
    /// Deploy a contract (the contract object travels out-of-band in the
    /// simulator; `data` stands in for init code so intrinsic gas is
    /// realistic).
    Deploy,
}

/// An unsigned transaction body.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// Sender's account nonce.
    pub nonce: u64,
    /// Call/transfer target. For deploys this is the *predicted* contract
    /// address (assigned by the sender from `keccak(sender || nonce)`).
    pub to: Address,
    /// Wei transferred to the target.
    pub value: Wei,
    /// Calldata (or notional init code for deploys).
    pub data: Vec<u8>,
    /// Gas ceiling for execution.
    pub gas_limit: Gas,
    /// Price per unit of gas.
    pub gas_price: Wei,
    /// Kind of state transition.
    pub kind: TxKind,
}

impl Transaction {
    /// The canonical signing payload.
    fn signing_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(64 + self.data.len());
        enc.u64(self.nonce)
            .bytes(self.to.as_bytes())
            .u128(self.value.0)
            .bytes(&self.data)
            .u64(self.gas_limit.0)
            .u128(self.gas_price.0)
            .u8(match self.kind {
                TxKind::Transfer => 0,
                TxKind::Call => 1,
                TxKind::Deploy => 2,
            });
        enc.finish()
    }

    /// The hash signed by the sender.
    pub fn signing_hash(&self) -> [u8; 32] {
        keccak256(&self.signing_bytes())
    }

    /// Signs the transaction with `key`.
    pub fn sign(self, key: &SecretKey) -> SignedTransaction {
        let signing_hash = self.signing_hash();
        let signature = sign_prehashed(key, &signing_hash);
        let from = key.public_key().address();
        // The tx hash commits to the signature as well. Its preimage
        // (32-byte hash + 65-byte signature + length framing) is always
        // sub-rate, so this is a single fused Keccak permutation.
        let mut enc = Encoder::with_capacity(96);
        enc.bytes(&signing_hash).bytes(&signature.to_bytes());
        let hash = Hash32(keccak256_fixed(&enc.finish()));
        SignedTransaction {
            tx: self,
            signature,
            from,
            hash,
        }
    }
}

/// A signed transaction with its cached sender and hash.
#[derive(Clone, Debug)]
pub struct SignedTransaction {
    /// The transaction body.
    pub tx: Transaction,
    /// Sender's signature over [`Transaction::signing_hash`].
    pub signature: Signature,
    /// Sender address (cached at signing; re-derived on submission).
    pub from: Address,
    /// Transaction hash.
    pub hash: TxHash,
}

impl SignedTransaction {
    /// Verifies the signature and that the cached sender matches the
    /// recovered one. The chain runs this on submission — a mismatched or
    /// forged sender is rejected before reaching the mempool.
    pub fn verify(&self) -> Result<(), ChainError> {
        let recovered = recover_prehashed(&self.tx.signing_hash(), &self.signature)
            .map_err(|_| ChainError::BadSignature { tx: self.hash })?;
        if recovered.address() != self.from {
            return Err(ChainError::BadSignature { tx: self.hash });
        }
        Ok(())
    }
}

/// Computes the deterministic contract address for a deployment by
/// `deployer` at `nonce` (Ethereum-style `keccak(sender || nonce)[12..]`).
pub fn contract_address(deployer: Address, nonce: u64) -> Address {
    let mut enc = Encoder::with_capacity(32);
    enc.bytes(deployer.as_bytes()).u64(nonce);
    // Always sub-rate: one fused permutation.
    let digest = keccak256_fixed(&enc.finish());
    let mut out = [0u8; 20];
    // lint: allow(panic) — a keccak digest is always exactly 32 bytes
    out.copy_from_slice(&digest[12..]);
    Address(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::keys::Keypair;

    fn tx(nonce: u64) -> Transaction {
        Transaction {
            nonce,
            to: Address([7; 20]),
            value: Wei(100),
            data: vec![1, 2, 3],
            gas_limit: Gas(50_000),
            gas_price: Wei::from_gwei(100),
            kind: TxKind::Transfer,
        }
    }

    #[test]
    fn sign_and_verify() {
        let kp = Keypair::from_seed(b"sender");
        let signed = tx(0).sign(&kp.secret);
        assert_eq!(signed.from, kp.address);
        signed.verify().unwrap();
    }

    #[test]
    fn forged_sender_rejected() {
        let kp = Keypair::from_seed(b"honest");
        let mut signed = tx(0).sign(&kp.secret);
        signed.from = Address([9; 20]);
        assert!(matches!(
            signed.verify(),
            Err(ChainError::BadSignature { .. })
        ));
    }

    #[test]
    fn tampered_body_rejected() {
        let kp = Keypair::from_seed(b"body");
        let mut signed = tx(0).sign(&kp.secret);
        signed.tx.value = Wei(1_000_000);
        assert!(signed.verify().is_err());
    }

    #[test]
    fn distinct_nonces_distinct_hashes() {
        let kp = Keypair::from_seed(b"nonce");
        let a = tx(0).sign(&kp.secret);
        let b = tx(1).sign(&kp.secret);
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn contract_addresses_are_deterministic() {
        let d = Address([1; 20]);
        assert_eq!(contract_address(d, 5), contract_address(d, 5));
        assert_ne!(contract_address(d, 5), contract_address(d, 6));
        assert_ne!(
            contract_address(d, 5),
            contract_address(Address([2; 20]), 5)
        );
    }
}
