//! # wedge-chain
//!
//! A simulated Ethereum-style blockchain substrate: funded accounts, signed
//! nonce-ordered transactions, a gas schedule calibrated to Ethereum's
//! published costs, block production on a (compressible) simulation clock,
//! confirmations, receipts, contract events — and a contract host that runs
//! Rust-native smart contracts with transactional (snapshot/rollback)
//! semantics.
//!
//! This replaces the Ropsten test network used by the paper; see DESIGN.md
//! §1 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod chain;
mod contract;
mod encoding;
mod error;
mod faults;
mod gas;
mod tx;
mod types;

pub use block::{Block, EventLog, ExecStatus, Receipt};
pub use chain::{Chain, ChainConfig, MinerHandle};
pub use contract::{CallContext, Contract, ContractRegistry, Revert, WorldState};
pub use encoding::{DecodeError, Decoder, Encoder};
pub use error::ChainError;
pub use faults::ChainFaults;
pub use gas::{GasSchedule, DEFAULT_GAS_PRICE};
pub use tx::{contract_address, SignedTransaction, Transaction, TxKind};
pub use types::{Address, BlockNumber, Gas, Hash32, TxHash, Wei};
