//! The simulated blockchain: mempool, mining, execution, receipts, events.
//!
//! One [`Chain`] stands in for the Ethereum Ropsten network the paper
//! deployed against. Blocks are produced by a miner thread on the
//! simulation clock (default every 13 simulated seconds, the paper-era
//! Ethereum average); a transaction is *confirmed* once `confirmations`
//! further blocks exist, which is what [`Chain::wait_for_receipt`] waits
//! for — together these reproduce the paper's ~43 s stage-2 commitment
//! latency when run in real time, and the same figure in simulated seconds
//! when the clock is compressed.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::SecretKey;
use wedge_sim::Clock;

use crate::block::{Block, EventLog, ExecStatus, Receipt};
use crate::contract::{CallContext, Contract, ContractRegistry, WorldState};
use crate::error::ChainError;
use crate::faults::ChainFaults;
use crate::gas::{GasSchedule, DEFAULT_GAS_PRICE};
use crate::tx::{contract_address, SignedTransaction, Transaction, TxKind};
use crate::types::{Address, BlockNumber, Gas, TxHash, Wei};

/// Chain behaviour knobs.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Simulated time between blocks (Ethereum paper-era average: ~13 s).
    pub block_interval: Duration,
    /// Blocks that must sit on top of a transaction before
    /// [`Chain::wait_for_receipt`] reports it committed.
    pub confirmations: u64,
    /// Per-block gas ceiling (Ethereum: 30M).
    pub block_gas_limit: Gas,
    /// Gas cost table.
    pub schedule: GasSchedule,
    /// Default gas price applied by the convenience transaction builders.
    pub gas_price: Wei,
    /// Simulated interval between receipt polls.
    pub receipt_poll: Duration,
    /// Simulated deadline for [`Chain::wait_for_receipt`].
    pub receipt_timeout: Duration,
    /// Relative gas-price jitter applied by the convenience builders
    /// (0.0 = deterministic). The paper observed its Table-1 cost
    /// irregularities came from Ropsten fee fluctuation; setting e.g. 0.2
    /// reproduces that ±20% wobble.
    pub gas_price_jitter: f64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            block_interval: Duration::from_secs(13),
            confirmations: 2,
            block_gas_limit: Gas(30_000_000),
            schedule: GasSchedule::default(),
            gas_price: DEFAULT_GAS_PRICE,
            receipt_poll: Duration::from_millis(500),
            receipt_timeout: Duration::from_secs(3600),
            gas_price_jitter: 0.0,
        }
    }
}

struct Inner {
    state: WorldState,
    contracts: ContractRegistry,
    pending: VecDeque<SignedTransaction>,
    /// Contract objects travelling alongside their deploy transactions.
    pending_deploys: HashMap<TxHash, Box<dyn Contract>>,
    blocks: Vec<Block>,
    receipts: HashMap<TxHash, Receipt>,
    /// Cumulative fees paid per account — the bench cost metric.
    fees_paid: HashMap<Address, Wei>,
    total_gas: Gas,
}

/// An event subscription: optional contract filter + delivery channel.
struct Subscriber {
    filter: Option<Address>,
    sender: Sender<EventLog>,
}

/// The simulated chain. Cheap to share via `Arc`.
pub struct Chain {
    inner: Mutex<Inner>,
    clock: Clock,
    config: ChainConfig,
    subscribers: Mutex<Vec<Subscriber>>,
    /// Seeded RNG for gas-price jitter (deterministic across runs).
    price_rng: Mutex<rand::rngs::StdRng>,
    /// Deterministic fault injection (drops, reverts, receipt delays).
    faults: ChainFaults,
}

impl Chain {
    /// Creates a chain with a genesis block at the clock's current time.
    pub fn new(clock: Clock, config: ChainConfig) -> Arc<Chain> {
        let genesis = Block {
            number: 0,
            timestamp: clock.now().as_secs(),
            parent: Hash32::ZERO,
            tx_hashes: Vec::new(),
            gas_used: Gas::ZERO,
            hash: Block::compute_hash(0, clock.now().as_secs(), &Hash32::ZERO, &[]),
        };
        Arc::new(Chain {
            inner: Mutex::new(Inner {
                state: WorldState::default(),
                contracts: ContractRegistry::new(),
                pending: VecDeque::new(),
                pending_deploys: HashMap::new(),
                blocks: vec![genesis],
                receipts: HashMap::new(),
                fees_paid: HashMap::new(),
                total_gas: Gas::ZERO,
            }),
            clock,
            config,
            subscribers: Mutex::new(Vec::new()),
            price_rng: Mutex::new(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                0x5745_4447_4550_5243,
            )),
            faults: ChainFaults::default(),
        })
    }

    /// The gas price the convenience builders will use for the next
    /// transaction: the configured base, optionally jittered.
    fn effective_gas_price(&self) -> Wei {
        if self.config.gas_price_jitter <= 0.0 {
            return self.config.gas_price;
        }
        use rand::Rng;
        let jitter = self.config.gas_price_jitter.min(0.95);
        let factor = 1.0 + self.price_rng.lock().gen_range(-jitter..=jitter);
        Wei((self.config.gas_price.0 as f64 * factor) as u128)
    }

    /// Convenience: default config on the given clock.
    pub fn with_defaults(clock: Clock) -> Arc<Chain> {
        Chain::new(clock, ChainConfig::default())
    }

    /// The chain's clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The chain's configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// The chain's fault-injection hooks (see [`ChainFaults`]).
    pub fn faults(&self) -> &ChainFaults {
        &self.faults
    }

    // ---------------------------------------------------------------- fund

    /// Genesis faucet: credits `addr` with `amount` (test/bench setup).
    pub fn fund(&self, addr: Address, amount: Wei) {
        self.inner.lock().state.credit(addr, amount);
    }

    // -------------------------------------------------------------- submit

    /// Validates and enqueues a signed transaction.
    pub fn submit(&self, signed: SignedTransaction) -> Result<TxHash, ChainError> {
        signed.verify()?;
        if self.faults.take_submission_drop() {
            return Err(ChainError::SubmissionDropped(signed.hash));
        }
        let mut inner = self.inner.lock();
        let next = Self::next_nonce_locked(&inner, signed.from);
        if signed.tx.nonce < inner.state.nonce(signed.from) {
            return Err(ChainError::NonceTooLow {
                expected: next,
                got: signed.tx.nonce,
            });
        }
        let needed = signed
            .tx
            .gas_limit
            .cost_at(signed.tx.gas_price)
            .checked_add(signed.tx.value)
            .unwrap_or(Wei(u128::MAX));
        let available = inner.state.balance(signed.from);
        if available < needed {
            return Err(ChainError::InsufficientBalance {
                address: signed.from,
                needed,
                available,
            });
        }
        let hash = signed.hash;
        inner.pending.push_back(signed);
        Ok(hash)
    }

    fn next_nonce_locked(inner: &Inner, addr: Address) -> u64 {
        let base = inner.state.nonce(addr);
        let in_flight = inner.pending.iter().filter(|t| t.from == addr).count() as u64;
        base + in_flight
    }

    /// The next nonce `addr` should sign with (accounts for mempool
    /// residents).
    pub fn next_nonce(&self, addr: Address) -> u64 {
        Self::next_nonce_locked(&self.inner.lock(), addr)
    }

    // --------------------------------------------- convenience tx builders

    /// Builds, signs and submits a value transfer.
    pub fn transfer(&self, key: &SecretKey, to: Address, value: Wei) -> Result<TxHash, ChainError> {
        let from = key.public_key().address();
        let tx = Transaction {
            nonce: self.next_nonce(from),
            to,
            value,
            data: Vec::new(),
            gas_limit: Gas(30_000),
            gas_price: self.effective_gas_price(),
            kind: TxKind::Transfer,
        };
        self.submit(tx.sign(key))
    }

    /// Builds, signs and submits a contract call.
    pub fn call_contract(
        &self,
        key: &SecretKey,
        to: Address,
        value: Wei,
        data: Vec<u8>,
        gas_limit: Gas,
    ) -> Result<TxHash, ChainError> {
        let from = key.public_key().address();
        let tx = Transaction {
            nonce: self.next_nonce(from),
            to,
            value,
            data,
            gas_limit,
            gas_price: self.effective_gas_price(),
            kind: TxKind::Call,
        };
        self.submit(tx.sign(key))
    }

    /// Builds, signs and submits a contract deployment.
    ///
    /// `code_len` is the notional init-code size used for gas realism.
    /// Returns the contract's (deterministic) address and the deploy tx
    /// hash.
    pub fn deploy(
        &self,
        key: &SecretKey,
        contract: Box<dyn Contract>,
        endowment: Wei,
        code_len: usize,
    ) -> Result<(Address, TxHash), ChainError> {
        let from = key.public_key().address();
        let nonce = self.next_nonce(from);
        let addr = contract_address(from, nonce);
        let tx = Transaction {
            nonce,
            to: addr,
            value: endowment,
            // Synthetic non-zero init-code bytes so intrinsic gas scales
            // with the declared code size.
            data: vec![0xC5; code_len],
            gas_limit: Gas(3_000_000u64.saturating_add((code_len as u64).saturating_mul(200))),
            gas_price: self.effective_gas_price(),
            kind: TxKind::Deploy,
        };
        let signed = tx.sign(key);
        let hash = signed.hash;
        {
            // Stash the contract object before submission so mining can
            // never observe a deploy tx without its object.
            self.inner.lock().pending_deploys.insert(hash, contract);
        }
        match self.submit(signed) {
            Ok(h) => Ok((addr, h)),
            Err(e) => {
                self.inner.lock().pending_deploys.remove(&hash);
                Err(e)
            }
        }
    }

    // -------------------------------------------------------------- mining

    /// Mines one block from the mempool. Returns the new block.
    pub fn mine_block(&self) -> Block {
        let mut inner = self.inner.lock();
        let timestamp = self.clock.now().as_secs();
        let number = inner.blocks.len() as BlockNumber;
        // lint: allow(panic) — `blocks` starts with genesis and only grows
        let parent = inner.blocks.last().expect("genesis exists").hash;

        let mut tx_hashes = Vec::new();
        let mut block_gas = Gas::ZERO;
        let mut all_logs = Vec::new();
        while let Some(candidate) = inner.pending.front() {
            if block_gas.saturating_add(candidate.tx.gas_limit) > self.config.block_gas_limit
                && !tx_hashes.is_empty()
            {
                break; // block full; head-of-line waits for the next block
            }
            let Some(signed) = inner.pending.pop_front() else {
                break;
            };
            let receipt = self.execute(&mut inner, &signed, number, timestamp);
            block_gas = block_gas.saturating_add(receipt.gas_used);
            all_logs.extend(receipt.logs.iter().cloned());
            tx_hashes.push(signed.hash);
            inner.receipts.insert(signed.hash, receipt);
        }
        inner.total_gas = inner.total_gas.saturating_add(block_gas);
        let block = Block {
            number,
            timestamp,
            parent,
            hash: Block::compute_hash(number, timestamp, &parent, &tx_hashes),
            tx_hashes,
            gas_used: block_gas,
        };
        inner.blocks.push(block.clone());
        drop(inner);
        // Fan events out to subscribers after releasing the chain lock;
        // drop subscribers whose receiver hung up.
        let mut subs = self.subscribers.lock();
        subs.retain(|sub| {
            all_logs
                .iter()
                .filter(|log| sub.filter.is_none_or(|addr| addr == log.contract))
                .all(|log| sub.sender.send(log.clone()).is_ok())
        });
        block
    }

    /// Executes one transaction against the locked state.
    fn execute(
        &self,
        inner: &mut Inner,
        signed: &SignedTransaction,
        block_number: BlockNumber,
        timestamp: u64,
    ) -> Receipt {
        let schedule = &self.config.schedule;
        let from = signed.from;
        let tx = &signed.tx;
        let fail = |status: ExecStatus| Receipt {
            tx_hash: signed.hash,
            status,
            gas_used: Gas::ZERO,
            fee: Wei::ZERO,
            block_number,
            output: Vec::new(),
            logs: Vec::new(),
            contract_address: None,
        };

        // Nonce must match exactly at execution time.
        if tx.nonce != inner.state.nonce(from) {
            return fail(ExecStatus::Reverted(format!(
                "invalid nonce {} (expected {})",
                tx.nonce,
                inner.state.nonce(from)
            )));
        }
        // Upfront solvency: worst-case fee + value.
        let upfront = tx
            .gas_limit
            .cost_at(tx.gas_price)
            .checked_add(tx.value)
            .unwrap_or(Wei(u128::MAX));
        if inner.state.balance(from) < upfront {
            return fail(ExecStatus::Reverted("insufficient balance".into()));
        }

        inner.state.bump_nonce(from);
        let intrinsic = schedule.intrinsic(&tx.data);
        let (status, gas_used, output, logs, created) = match tx.kind {
            TxKind::Transfer => {
                // lint: allow(panic) — solvency verified by the upfront
                // check at the top of execute()
                inner.state.debit(from, tx.value).expect("upfront-checked");
                inner.state.credit(tx.to, tx.value);
                (ExecStatus::Success, intrinsic, Vec::new(), Vec::new(), None)
            }
            TxKind::Deploy => {
                let gas = intrinsic.saturating_add(schedule.deploy(tx.data.len()));
                match inner.pending_deploys.remove(&signed.hash) {
                    Some(contract) => {
                        // lint: allow(panic) — solvency verified by the
                        // upfront check at the top of execute()
                        inner.state.debit(from, tx.value).expect("upfront-checked");
                        inner.state.credit(tx.to, tx.value);
                        inner.contracts.insert(tx.to, contract);
                        (
                            ExecStatus::Success,
                            gas,
                            Vec::new(),
                            Vec::new(),
                            Some(tx.to),
                        )
                    }
                    None => (
                        ExecStatus::Reverted("deploy object missing".into()),
                        intrinsic,
                        Vec::new(),
                        Vec::new(),
                        None,
                    ),
                }
            }
            TxKind::Call if self.faults.take_call_revert() => (
                ExecStatus::Reverted("injected fault: forced revert".into()),
                intrinsic,
                Vec::new(),
                Vec::new(),
                None,
            ),
            TxKind::Call => {
                match inner.contracts.remove(&tx.to) {
                    None => (
                        ExecStatus::Reverted(format!("no contract at {}", tx.to)),
                        intrinsic,
                        Vec::new(),
                        Vec::new(),
                        None,
                    ),
                    Some(mut contract) => {
                        // Snapshot for rollback.
                        let state_snapshot = inner.state.snapshot();
                        let contract_snapshot = contract.clone_box();
                        // Value moves before the call, as on Ethereum.
                        // lint: allow(panic) — solvency verified by the
                        // upfront check at the top of execute()
                        inner.state.debit(from, tx.value).expect("upfront-checked");
                        inner.state.credit(tx.to, tx.value);
                        let mut base = intrinsic;
                        if !tx.value.is_zero() {
                            base = base.saturating_add(Gas(schedule.call_value));
                        }
                        let mut ctx = CallContext::new(
                            from,
                            tx.value,
                            tx.to,
                            block_number,
                            timestamp,
                            schedule,
                            base,
                            tx.gas_limit,
                            &mut inner.state,
                            &mut inner.contracts,
                            false,
                        );
                        match contract.call(&mut ctx, &tx.data) {
                            Ok(output) => {
                                let logs = ctx.take_logs();
                                let gas = ctx.gas_used();
                                inner.contracts.insert(tx.to, contract);
                                (ExecStatus::Success, gas, output, logs, None)
                            }
                            Err(revert) => {
                                let gas = ctx.gas_used().min(tx.gas_limit);
                                drop(ctx);
                                inner.state = state_snapshot;
                                inner.contracts.insert(tx.to, contract_snapshot);
                                (
                                    ExecStatus::Reverted(revert.reason),
                                    gas,
                                    Vec::new(),
                                    Vec::new(),
                                    None,
                                )
                            }
                        }
                    }
                }
            }
        };

        // Fee is charged on success *and* revert (as on Ethereum).
        let fee = gas_used.cost_at(tx.gas_price);
        inner
            .state
            .debit(from, fee)
            // lint: allow(panic) — `gas_used <= gas_limit`, so the fee is
            // covered by the upfront `gas_limit × price + value` check
            .expect("fee covered by upfront check");
        let paid = inner.fees_paid.entry(from).or_insert(Wei::ZERO);
        *paid = paid.saturating_add(fee);

        Receipt {
            tx_hash: signed.hash,
            status,
            gas_used,
            fee,
            block_number,
            output,
            logs,
            contract_address: created,
        }
    }

    // -------------------------------------------------------------- miners

    /// Spawns a miner thread producing a block every
    /// [`ChainConfig::block_interval`] (simulated). The returned handle
    /// stops the miner on drop.
    pub fn start_miner(self: &Arc<Chain>) -> MinerHandle {
        let chain = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("wedge-miner".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    chain.clock.sleep(chain.config.block_interval);
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    chain.mine_block();
                }
            })
            // lint: allow(panic) — thread spawn fails only under resource
            // exhaustion at startup; no miner means no chain progress anyway
            .expect("spawn miner");
        MinerHandle {
            stop,
            handle: Some(handle),
        }
    }

    // ------------------------------------------------------------- queries

    /// Current head block number.
    pub fn block_number(&self) -> BlockNumber {
        self.inner.lock().blocks.len() as BlockNumber - 1
    }

    /// A block by number.
    pub fn block(&self, number: BlockNumber) -> Option<Block> {
        self.inner.lock().blocks.get(number as usize).cloned()
    }

    /// Account balance.
    pub fn balance(&self, addr: Address) -> Wei {
        self.inner.lock().state.balance(addr)
    }

    /// Receipt of a mined transaction, if any.
    pub fn receipt(&self, hash: TxHash) -> Option<Receipt> {
        self.inner.lock().receipts.get(&hash).cloned()
    }

    /// Cumulative fees paid by `addr` (the bench monetary-cost metric).
    pub fn total_fees_paid(&self, addr: Address) -> Wei {
        self.inner
            .lock()
            .fees_paid
            .get(&addr)
            .copied()
            .unwrap_or(Wei::ZERO)
    }

    /// Total gas consumed across all blocks.
    pub fn total_gas_used(&self) -> Gas {
        self.inner.lock().total_gas
    }

    /// Total fees burned across all accounts (fees leave circulation; this
    /// is the conservation-law counterpart of the faucet).
    pub fn total_fees_burned(&self) -> Wei {
        Wei(self.inner.lock().fees_paid.values().map(|w| w.0).sum())
    }

    /// Transactions waiting in the mempool.
    pub fn pending_count(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Whether a contract exists at `addr`.
    pub fn contract_exists(&self, addr: Address) -> bool {
        self.inner.lock().contracts.contains_key(&addr)
    }

    /// Estimates the gas a contract call would consume (Ethereum
    /// `eth_estimateGas`): executes against clones of the contract and
    /// state, discards all effects, and returns the metered gas.
    pub fn estimate_gas(
        &self,
        from: Address,
        to: Address,
        value: Wei,
        data: &[u8],
    ) -> Result<Gas, ChainError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let block_number = inner.blocks.len() as BlockNumber - 1;
        let timestamp = self.clock.now().as_secs();
        let mut contract = inner
            .contracts
            .remove(&to)
            .ok_or(ChainError::UnknownContract(to))?;
        let pristine = contract.clone_box();
        let state_snapshot = inner.state.snapshot();
        // Credit the call value as execution would, so balance-dependent
        // paths meter realistically.
        inner.state.credit(to, value);
        let schedule = self.config.schedule;
        let intrinsic = schedule.intrinsic(data);
        let mut ctx = CallContext::new(
            from,
            value,
            to,
            block_number,
            timestamp,
            &schedule,
            intrinsic,
            self.config.block_gas_limit,
            &mut inner.state,
            &mut inner.contracts,
            false,
        );
        let result = contract.call(&mut ctx, data);
        let gas = ctx.gas_used();
        drop(ctx);
        // Discard every effect.
        inner.state = state_snapshot;
        inner.contracts.insert(to, pristine);
        match result {
            Ok(_) => Ok(gas),
            Err(revert) => Err(ChainError::Reverted(revert.reason)),
        }
    }

    /// Executes a read-only call against the current state (no gas fees, no
    /// persistence — Ethereum `eth_call`).
    pub fn view(&self, to: Address, input: &[u8]) -> Result<Vec<u8>, ChainError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let block_number = inner.blocks.len() as BlockNumber - 1;
        let timestamp = self.clock.now().as_secs();
        let mut contract = inner
            .contracts
            .remove(&to)
            .ok_or(ChainError::UnknownContract(to))?;
        let clone = contract.clone_box();
        let schedule = self.config.schedule;
        let mut ctx = CallContext::new(
            Address::ZERO,
            Wei::ZERO,
            to,
            block_number,
            timestamp,
            &schedule,
            Gas::ZERO,
            Gas(u64::MAX),
            &mut inner.state,
            &mut inner.contracts,
            true,
        );
        let result = contract.call(&mut ctx, input);
        drop(ctx);
        // Restore the pristine clone: view calls never persist mutations.
        inner.contracts.insert(to, clone);
        result.map_err(|r| ChainError::Reverted(r.reason))
    }

    /// Blocks until `hash` is mined *and* confirmed
    /// ([`ChainConfig::confirmations`] deep). Requires a running miner (or
    /// interleaved [`Chain::mine_block`] calls from another thread).
    pub fn wait_for_receipt(&self, hash: TxHash) -> Result<Receipt, ChainError> {
        let mut waited = Duration::ZERO;
        loop {
            let confirmed = {
                let inner = self.inner.lock();
                inner.receipts.get(&hash).and_then(|receipt| {
                    let head = inner.blocks.len() as BlockNumber - 1;
                    (head >= receipt.block_number + self.config.confirmations)
                        .then(|| receipt.clone())
                })
            };
            if let Some(receipt) = confirmed {
                // A delay fault hides the confirmed receipt for a while —
                // from the caller's side the chain is simply congested.
                if !self.faults.receipt_hidden(hash, self.clock.now()) {
                    return Ok(receipt);
                }
            }
            if waited >= self.config.receipt_timeout {
                return Err(ChainError::ReceiptTimeout(hash));
            }
            self.clock.sleep(self.config.receipt_poll);
            waited += self.config.receipt_poll;
        }
    }

    /// Subscribes to all contract events (fired at mining time).
    pub fn subscribe_events(&self) -> Receiver<EventLog> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(Subscriber {
            filter: None,
            sender: tx,
        });
        rx
    }

    /// Subscribes to events emitted by one contract only — the push-based
    /// notification pattern of paper §2.2 ("transmits information from
    /// on-chain smart contracts to off-chain subscribers").
    pub fn subscribe_contract_events(&self, contract: Address) -> Receiver<EventLog> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(Subscriber {
            filter: Some(contract),
            sender: tx,
        });
        rx
    }

    /// The current head block.
    pub fn head(&self) -> Block {
        self.inner
            .lock()
            .blocks
            .last()
            // lint: allow(panic) — `blocks` starts with genesis, only grows
            .expect("genesis exists")
            .clone()
    }

    /// Historical blocks in `[from, to]`, clamped to the chain (an
    /// explorer-style range query).
    pub fn block_range(&self, from: BlockNumber, to: BlockNumber) -> Vec<Block> {
        let inner = self.inner.lock();
        let hi = (to as usize + 1).min(inner.blocks.len());
        let lo = (from as usize).min(hi);
        inner
            .blocks
            .get(lo..hi)
            .map(<[Block]>::to_vec)
            .unwrap_or_default()
    }

    /// All receipts of a block, in execution order (explorer view).
    pub fn block_receipts(&self, number: BlockNumber) -> Vec<Receipt> {
        let inner = self.inner.lock();
        let Some(block) = inner.blocks.get(number as usize) else {
            return Vec::new();
        };
        block
            .tx_hashes
            .iter()
            .filter_map(|h| inner.receipts.get(h).cloned())
            .collect()
    }

    /// Total transactions mined across all blocks.
    pub fn total_transactions(&self) -> u64 {
        let inner = self.inner.lock();
        inner.blocks.iter().map(|b| b.tx_hashes.len() as u64).sum()
    }
}

/// Stops the miner thread when dropped.
pub struct MinerHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MinerHandle {
    /// Stops the miner and waits for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MinerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
