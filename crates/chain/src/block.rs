//! Blocks, receipts, and event logs.

use wedge_crypto::hash::{keccak256, Hash32};

use crate::encoding::Encoder;
use crate::types::{Address, BlockNumber, Gas, TxHash, Wei};

/// An event emitted by a contract (the push-notification mechanism of
/// paper §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventLog {
    /// Emitting contract.
    pub contract: Address,
    /// Event name (e.g. `"DepositInsufficient"`).
    pub name: &'static str,
    /// ABI-encoded event payload.
    pub data: Vec<u8>,
}

/// Outcome of executing a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecStatus {
    /// Executed successfully.
    Success,
    /// Reverted with a reason; state rolled back, fee still charged.
    Reverted(String),
}

impl ExecStatus {
    /// True for [`ExecStatus::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, ExecStatus::Success)
    }
}

/// The receipt of a mined transaction.
#[derive(Clone, Debug)]
pub struct Receipt {
    /// Hash of the transaction.
    pub tx_hash: TxHash,
    /// Execution outcome.
    pub status: ExecStatus,
    /// Gas consumed.
    pub gas_used: Gas,
    /// Fee paid (`gas_used * gas_price`).
    pub fee: Wei,
    /// Block that included the transaction.
    pub block_number: BlockNumber,
    /// Return data from a contract call.
    pub output: Vec<u8>,
    /// Events emitted.
    pub logs: Vec<EventLog>,
    /// For deploys: the created contract's address.
    pub contract_address: Option<Address>,
}

/// A mined block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Height (genesis = 0).
    pub number: BlockNumber,
    /// Timestamp in simulated seconds since chain start.
    pub timestamp: u64,
    /// Parent block hash.
    pub parent: Hash32,
    /// Included transaction hashes, in execution order.
    pub tx_hashes: Vec<TxHash>,
    /// Total gas used.
    pub gas_used: Gas,
    /// This block's hash.
    pub hash: Hash32,
}

impl Block {
    /// Computes a block hash committing to header fields and transactions.
    pub fn compute_hash(
        number: BlockNumber,
        timestamp: u64,
        parent: &Hash32,
        tx_hashes: &[TxHash],
    ) -> Hash32 {
        let mut enc = Encoder::with_capacity(64 + tx_hashes.len() * 36);
        enc.u64(number).u64(timestamp).bytes(parent.as_bytes());
        for tx in tx_hashes {
            enc.bytes(tx.as_bytes());
        }
        Hash32(keccak256(&enc.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_hash_commits_to_contents() {
        let parent = Hash32([1; 32]);
        let txs = vec![Hash32([2; 32]), Hash32([3; 32])];
        let h1 = Block::compute_hash(5, 100, &parent, &txs);
        assert_eq!(h1, Block::compute_hash(5, 100, &parent, &txs));
        assert_ne!(h1, Block::compute_hash(6, 100, &parent, &txs));
        assert_ne!(h1, Block::compute_hash(5, 101, &parent, &txs));
        assert_ne!(h1, Block::compute_hash(5, 100, &Hash32([9; 32]), &txs));
        let reordered = vec![Hash32([3; 32]), Hash32([2; 32])];
        assert_ne!(h1, Block::compute_hash(5, 100, &parent, &reordered));
    }

    #[test]
    fn exec_status() {
        assert!(ExecStatus::Success.is_success());
        assert!(!ExecStatus::Reverted("x".into()).is_success());
    }
}
