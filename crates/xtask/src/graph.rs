//! The concurrency-graph lints L7–L9, built on the token tree.
//!
//! All three rules work from the same extracted facts: the functions in the
//! analysis corpus (`crates/core/src/node/` plus `crates/net/src/`), the
//! lock acquisitions inside them, the channels they declare, and the
//! send/recv sites that connect threads.
//!
//! * **L7 lock-order** — builds the partial order of `Mutex`/`RwLock`
//!   acquisitions per function (`stats`, `write_plane`, `slot`, …), inlines
//!   one call level deep, and flags any cycle in the union graph: two
//!   threads taking the same pair of locks in opposite orders is a
//!   deadlock waiting for the right interleaving.
//! * **L8 channel-capacity cycles** — extracts every `bounded(N)` /
//!   `unbounded()` channel and the send/recv sites that connect thread
//!   functions, then flags a cycle made entirely of *bounded* edges whose
//!   sends are all *blocking* (`send()` with no `try_send` / `send_timeout`
//!   shed path). A full queue anywhere on such a ring wedges every thread
//!   on it — the shape of the PR 5 slow-client hang.
//! * **L9 blocking-call-in-worker** — no durability (`ensure_durable`,
//!   `fsync`/`sync_all`/`sync_data`), blocking `TcpStream::connect`, or
//!   `thread::sleep` inside a coalescing-writer or accept-loop region
//!   (function names containing `writer` or `accept`), directly or one
//!   call level deep. Those loops are the latency floor of every connected
//!   client; storage-speed work belongs on pipeline threads.
//!
//! The analyses are advisory and name-based (a field called `stats` is
//! assumed to be the same logical lock everywhere); the escape hatch for a
//! reviewed false positive is the usual allow comment with a reason.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::PathBuf;

use crate::tree::{extract_fns, tokenize, FnItem, Token, TokenKind};
use crate::{mask_source, suppressor, Diagnostic, Lint, MaskedLine};

/// One corpus file, parsed once and shared by the three analyses.
pub struct SourceFile {
    /// Path used in diagnostics (workspace-relative).
    pub rel: PathBuf,
    /// Masked lines (for the allow machinery).
    pub lines: Vec<MaskedLine>,
    /// The token tree.
    pub tokens: Vec<Token>,
    /// Extracted `fn` items (non-test only).
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Parses source text into the corpus representation.
    pub fn parse(rel: PathBuf, text: &str) -> SourceFile {
        let lines = mask_source(text);
        let tokens = tokenize(&lines);
        let fns = extract_fns(&tokens)
            .into_iter()
            .filter(|f| !f.in_test)
            .collect();
        SourceFile {
            rel,
            lines,
            tokens,
            fns,
        }
    }
}

/// Runs L7, L8, and L9 over the corpus. Returned diagnostics include
/// suppressed ones (`suppressed_by` set); the caller filters.
pub fn lint_concurrency(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = lint_lock_order(files);
    diags.extend(lint_channel_cycles(files));
    diags.extend(lint_blocking_in_worker(files));
    diags
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "fn"
            | "move"
            | "in"
            | "else"
            | "break"
            | "continue"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

/// Matches `name.lock()` / `name.read()` / `name.write()` (empty argument
/// list — `read(&mut buf)` is I/O, not a lock) at `toks[i..]`. Returns the
/// lock name, the 0-based line of the lock word, and tokens consumed.
fn match_lock_call(toks: &[Token], i: usize) -> Option<(String, usize, usize)> {
    let name = toks.get(i)?.ident()?;
    if !toks.get(i + 1)?.is_punct('.') {
        return None;
    }
    let word = toks.get(i + 2)?.ident()?;
    if !matches!(word, "lock" | "read" | "write") {
        return None;
    }
    if !toks.get(i + 3)?.group('(')?.is_empty() {
        return None;
    }
    Some((name.to_string(), toks[i + 2].line, 4))
}

/// Matches a call at `toks[i..]` (the index of the name) that can be
/// resolved to a same-named `fn` in this corpus: a free call `name(...)`,
/// a path call `path::name(...)`, or a `self.name(...)` method call.
/// Method calls on any other receiver (`guard.flush()`, `stream.shutdown()`)
/// are skipped — the receiver's type is unknown here, so inlining by name
/// alone would attribute some unrelated function's behaviour to the caller.
/// Definitions (`fn name(`) and keywords don't count either.
fn match_call(toks: &[Token], i: usize) -> Option<&str> {
    let name = toks[i].ident()?;
    if is_keyword(name) {
        return None;
    }
    toks.get(i + 1)?.group('(')?;
    if i >= 1 && toks[i - 1].ident() == Some("fn") {
        return None;
    }
    if i >= 1 && toks[i - 1].is_punct('.') && (i < 2 || toks[i - 2].ident() != Some("self")) {
        return None;
    }
    Some(name)
}

// ---------------------------------------------------------------------------
// L7: lock-order cycles
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct LockEdge {
    from: String,
    to: String,
    file: usize,
    line: usize, // 0-based
    why: String,
}

/// Locks a function acquires anywhere in its body (for one-level inlining).
fn direct_locks(body: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    fn scan(toks: &[Token], out: &mut BTreeSet<String>) {
        let mut i = 0;
        while i < toks.len() {
            if let Some((lock, _, n)) = match_lock_call(toks, i) {
                out.insert(lock);
                i += n;
                continue;
            }
            if toks[i].is_punct('.')
                && toks.get(i + 1).and_then(|t| t.ident()) == Some("mutate")
                && toks.get(i + 2).and_then(|t| t.group('(')).is_some()
            {
                out.insert("write_plane".to_string());
            }
            if let TokenKind::Group(_, children) = &toks[i].kind {
                scan(children, out);
            }
            i += 1;
        }
    }
    scan(body, &mut out);
    out
}

struct L7Walker<'a> {
    fn_locks: &'a BTreeMap<String, BTreeSet<String>>,
    edges: Vec<LockEdge>,
    file: usize,
}

impl L7Walker<'_> {
    fn acquire(&mut self, live: &[(String, String)], lock: &str, line: usize, why: &str) {
        for (_, held) in live {
            let edge = LockEdge {
                from: held.clone(),
                to: lock.to_string(),
                file: self.file,
                line,
                why: why.to_string(),
            };
            if !self
                .edges
                .iter()
                .any(|e| e.from == edge.from && e.to == edge.to && e.line == edge.line)
            {
                self.edges.push(edge);
            }
        }
    }

    fn walk(&mut self, toks: &[Token], live: &mut Vec<(String, String)>, fn_name: &str) {
        let mut i = 0;
        while i < toks.len() {
            // `drop(guard)` retires the guard.
            if toks[i].ident() == Some("drop") {
                if let Some(children) = toks.get(i + 1).and_then(|t| t.group('(')) {
                    if children.len() == 1 {
                        if let Some(name) = children[0].ident() {
                            live.retain(|(var, _)| var != name);
                        }
                    }
                    i += 2;
                    continue;
                }
            }
            // `Shared::mutate(..)` holds the write-plane lock for the span
            // of its argument list (the closure runs under the guard).
            if toks[i].is_punct('.') && toks.get(i + 1).and_then(|t| t.ident()) == Some("mutate") {
                if let Some(children) = toks.get(i + 2).and_then(|t| t.group('(')) {
                    self.acquire(
                        live,
                        "write_plane",
                        toks[i + 1].line,
                        "Shared::mutate region",
                    );
                    live.push(("<mutate>".to_string(), "write_plane".to_string()));
                    self.walk(children, live, fn_name);
                    live.retain(|(var, _)| var != "<mutate>");
                    i += 3;
                    continue;
                }
            }
            // A lock acquisition: an edge from every live lock, and a new
            // guard when it is the whole right-hand side of a `let`.
            if let Some((lock, line, n)) = match_lock_call(toks, i) {
                self.acquire(live, &lock, line, "");
                let whole_rhs = toks.get(i + n).is_some_and(|t| t.is_punct(';'));
                if whole_rhs {
                    if let Some(var) = stmt_let_binding(toks, i) {
                        live.push((var, lock));
                    }
                }
                i += n;
                continue;
            }
            // One-level call inlining: calling a corpus function that
            // acquires locks, while holding one, orders them.
            if let Some(callee) = match_call(toks, i) {
                if !live.is_empty() && callee != fn_name {
                    if let Some(locks) = self.fn_locks.get(callee) {
                        let line = toks[i].line;
                        let why = format!("via call to `{callee}()`");
                        for lock in locks.clone() {
                            self.acquire(live, &lock, line, &why);
                        }
                    }
                }
            }
            if let TokenKind::Group(_, children) = &toks[i].kind {
                // A closure handed to `spawn` runs on a fresh thread: it
                // does not inherit the caller's live guards.
                let spawned = i >= 1 && toks[i - 1].ident() == Some("spawn");
                if spawned {
                    let mut fresh = Vec::new();
                    self.walk(children, &mut fresh, fn_name);
                } else {
                    let mark = live.len();
                    self.walk(children, live, fn_name);
                    live.truncate(mark);
                }
            }
            i += 1;
        }
    }
}

/// Finds the `let [mut] name =` opening the statement that the token at
/// `at` belongs to (scanning back to the previous `;` at this level).
fn stmt_let_binding(toks: &[Token], at: usize) -> Option<String> {
    let mut start = at;
    while start > 0 && !toks[start - 1].is_punct(';') {
        start -= 1;
    }
    if toks.get(start)?.ident()? != "let" {
        return None;
    }
    let mut j = start + 1;
    if toks.get(j)?.ident() == Some("mut") {
        j += 1;
    }
    let name = toks.get(j)?.ident()?;
    if !toks.get(j + 1)?.is_punct('=') {
        return None;
    }
    if name == "_" {
        return None;
    }
    Some(name.to_string())
}

fn lint_lock_order(files: &[SourceFile]) -> Vec<Diagnostic> {
    // Pass 1: locks each function acquires directly (corpus-wide table;
    // same-named functions in different files merge conservatively).
    let mut fn_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        for f in &file.fns {
            fn_locks
                .entry(f.name.clone())
                .or_default()
                .extend(direct_locks(&f.body));
        }
    }
    // Pass 2: acquisition edges while a guard is live.
    let mut edges = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        let mut walker = L7Walker {
            fn_locks: &fn_locks,
            edges: Vec::new(),
            file: idx,
        };
        for f in &file.fns {
            let mut live = Vec::new();
            walker.walk(&f.body, &mut live, &f.name);
        }
        edges.extend(walker.edges);
    }

    let suppressed: Vec<Option<usize>> = edges
        .iter()
        .map(|e| suppressor(&files[e.file].lines, e.line, Lint::LockOrder))
        .collect();

    let mut diags = Vec::new();
    // Live findings: cycles among unsuppressed edges only (an allow on one
    // edge of a ring deliberately breaks the ring).
    let active: Vec<&LockEdge> = edges
        .iter()
        .zip(&suppressed)
        .filter(|(_, s)| s.is_none())
        .map(|(e, _)| e)
        .collect();
    for edge in &active {
        if let Some(path) = cycle_path(&active, &edge.from, &edge.to) {
            diags.push(lock_diag(files, edge, &path, None));
        }
    }
    // Suppressed findings (for the `--allows` staleness audit): an allow
    // marker stays "used" while the edge it hides would still close a
    // cycle in the full graph.
    let all: Vec<&LockEdge> = edges.iter().collect();
    for (edge, sup) in edges.iter().zip(&suppressed) {
        if let Some(marker) = sup {
            if let Some(path) = cycle_path(&all, &edge.from, &edge.to) {
                diags.push(lock_diag(files, edge, &path, Some(*marker)));
            }
        }
    }
    diags
}

fn lock_diag(
    files: &[SourceFile],
    edge: &LockEdge,
    path: &[String],
    suppressed_by: Option<usize>,
) -> Diagnostic {
    let mut cycle = String::new();
    for name in path {
        let _ = write!(cycle, "`{name}` → ");
    }
    let _ = write!(
        cycle,
        "`{}`",
        path.first().map(String::as_str).unwrap_or("")
    );
    let via = if edge.why.is_empty() {
        String::new()
    } else {
        format!(" ({})", edge.why)
    };
    Diagnostic {
        file: files[edge.file].rel.clone(),
        line: edge.line + 1,
        lint: Lint::LockOrder,
        message: format!(
            "acquiring `{}` while holding `{}`{via} closes the lock-order cycle {cycle}; \
             two threads taking these locks in opposite orders deadlock — pick one order \
             (suppress with `// lint: allow(lockorder) — <reason>`)",
            edge.to, edge.from
        ),
        suppressed_by,
    }
}

/// If adding `from → to` closes a cycle (i.e. `from` is reachable from
/// `to` over the given edges), returns the lock names along one shortest
/// `from → … → from` cycle, starting at `from`.
fn cycle_path<E: std::borrow::Borrow<LockEdge>>(
    edges: &[E],
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    if from == to {
        return Some(vec![from.to_string()]);
    }
    // BFS from `to` back to `from`.
    let mut prev: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(to.to_string());
    let mut seen = BTreeSet::new();
    seen.insert(to.to_string());
    while let Some(node) = queue.pop_front() {
        if node == from {
            // Reconstruct from → to → … → from.
            let mut path = vec![from.to_string()];
            let mut cur = from.to_string();
            while let Some(p) = prev.get(&cur) {
                path.push(p.clone());
                cur = p.clone();
            }
            path.reverse();
            let mut out = vec![from.to_string()];
            out.extend(path.into_iter().filter(|n| n != from));
            return Some(out);
        }
        for e in edges {
            let e = e.borrow();
            if e.from == node && !seen.contains(&e.to) {
                seen.insert(e.to.clone());
                prev.insert(e.to.clone(), node.clone());
                queue.push_back(e.to.clone());
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// L8: bounded-channel cycles
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Channel {
    bounded: bool,
    cap: String,
    line: usize, // 0-based decl line
}

#[derive(Clone, Debug)]
struct ChanSite {
    fn_idx: usize,
    name: String,
    op: String,
    line: usize,
    in_spawn: bool,
}

#[derive(Clone, Debug)]
struct CallSite {
    caller: usize,
    callee: String,
    /// For each argument position, the single identifier it passes (after
    /// stripping `&`/`mut`/`.clone()`), if it is that simple.
    args: Vec<Option<String>>,
    spawned: bool,
}

const SEND_OPS: &[&str] = &["send", "try_send", "send_timeout"];
const RECV_OPS: &[&str] = &["recv", "try_recv", "recv_timeout"];

/// Per-file channel extraction: declarations, aliases, send/recv sites,
/// and call sites for parameter resolution.
struct FileChannels {
    channels: Vec<Channel>,
    /// endpoint name → channel index.
    names: BTreeMap<String, usize>,
    sites: Vec<ChanSite>,
    calls: Vec<CallSite>,
}

fn extract_channels(file: &SourceFile) -> FileChannels {
    let mut fc = FileChannels {
        channels: Vec::new(),
        names: BTreeMap::new(),
        sites: Vec::new(),
        calls: Vec::new(),
    };
    // Declarations: `let (tx, rx) = bounded::<T>(cap);` / `= unbounded();`.
    fn decl_scan(toks: &[Token], fc: &mut FileChannels) {
        let mut i = 0;
        while i < toks.len() {
            if let TokenKind::Group(_, children) = &toks[i].kind {
                decl_scan(children, fc);
            }
            if toks[i].ident() == Some("let") {
                if let Some((tx, rx)) = tuple_binding(toks, i + 1) {
                    if let Some((bounded, cap, line)) = channel_ctor(toks, i + 2) {
                        let key = fc.channels.len();
                        fc.channels.push(Channel { bounded, cap, line });
                        fc.names.insert(tx, key);
                        fc.names.insert(rx, key);
                    }
                }
            }
            i += 1;
        }
    }
    decl_scan(&file.tokens, &mut fc);

    // Aliases: `let a = b;` / `let a = b.clone();` and struct-literal field
    // inits `field: endpoint`. Iterated so chains resolve.
    for _ in 0..3 {
        alias_scan(&file.tokens, &mut fc.names);
    }

    // Send/recv sites and call sites, per function.
    for (fn_idx, f) in file.fns.iter().enumerate() {
        site_scan(&f.body, fn_idx, false, &mut fc);
    }
    fc
}

/// Matches a `(a, b)` tuple pattern at `toks[at]`, returning both names.
fn tuple_binding(toks: &[Token], at: usize) -> Option<(String, String)> {
    let children = toks.get(at)?.group('(')?;
    let idents: Vec<&str> = children.iter().filter_map(|t| t.ident()).collect();
    let puncts = children.iter().filter(|t| t.is_punct(',')).count();
    if puncts != 1 {
        return None;
    }
    // Allow `mut` on either binding.
    let names: Vec<&&str> = idents.iter().filter(|s| **s != "mut").collect();
    if names.len() != 2 {
        return None;
    }
    Some((names[0].to_string(), names[1].to_string()))
}

/// Matches `= bounded…(cap);` / `= unbounded…();` starting at the `=`.
fn channel_ctor(toks: &[Token], at: usize) -> Option<(bool, String, usize)> {
    if !toks.get(at)?.is_punct('=') {
        return None;
    }
    let ctor = toks.get(at + 1)?.ident()?;
    let bounded = match ctor {
        "bounded" => true,
        "unbounded" => false,
        _ => return None,
    };
    let line = toks[at + 1].line;
    // Skip an optional turbofish (which may itself contain paren groups,
    // e.g. `bounded::<(u64, Reply)>`): the argument list is the *last*
    // paren group before the terminating `;`.
    let mut args = None;
    let mut j = at + 2;
    while j < toks.len() && !toks[j].is_punct(';') {
        if let Some(children) = toks[j].group('(') {
            args = Some(children);
        }
        j += 1;
    }
    let cap = args.map(flatten_tokens).unwrap_or_default();
    Some((bounded, cap, line))
}

fn flatten_tokens(toks: &[Token]) -> String {
    let mut out = String::new();
    for t in toks {
        match &t.kind {
            TokenKind::Ident(s) => {
                if !out.is_empty() && out.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    out.push(' ');
                }
                out.push_str(s);
            }
            TokenKind::Punct(c) => out.push(*c),
            TokenKind::Group(d, children) => {
                out.push(*d);
                out.push_str(&flatten_tokens(children));
                out.push(match d {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                });
            }
        }
    }
    out
}

fn alias_scan(toks: &[Token], names: &mut BTreeMap<String, usize>) {
    let mut i = 0;
    while i < toks.len() {
        if let TokenKind::Group(_, children) = &toks[i].kind {
            alias_scan(children, names);
        }
        // `let a = b;` / `let a = b.clone();`
        if toks[i].ident() == Some("let") {
            let mut j = i + 1;
            if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
                j += 1;
            }
            if let (Some(a), Some(eq)) = (toks.get(j).and_then(|t| t.ident()), toks.get(j + 1)) {
                if eq.is_punct('=') {
                    if let Some(b) = simple_endpoint_expr(&toks[j + 2..]) {
                        if let Some(&key) = names.get(&b) {
                            names.entry(a.to_string()).or_insert(key);
                        }
                    }
                }
            }
        }
        // Struct-literal field init `field: endpoint` (single colon).
        if i >= 1
            && toks[i].is_punct(':')
            && !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks[i - 1].is_punct(':')
        {
            let field = toks[i - 1].ident();
            let value = toks.get(i + 1).and_then(|t| t.ident());
            let terminated = match toks.get(i + 2) {
                None => true,
                Some(t) => t.is_punct(','),
            };
            if let (Some(field), Some(value)) = (field, value) {
                if terminated {
                    if let Some(&key) = names.get(value) {
                        names.entry(field.to_string()).or_insert(key);
                    }
                }
            }
        }
        i += 1;
    }
}

/// Matches an expression that is just an endpoint: `name;`,
/// `name.clone();` — returns the name.
fn simple_endpoint_expr(toks: &[Token]) -> Option<String> {
    let name = toks.first()?.ident()?;
    match toks.get(1) {
        Some(t) if t.is_punct(';') => Some(name.to_string()),
        Some(t) if t.is_punct('.') => {
            if toks.get(2)?.ident()? == "clone"
                && toks.get(3)?.group('(')?.is_empty()
                && toks.get(4)?.is_punct(';')
            {
                Some(name.to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

fn site_scan(toks: &[Token], fn_idx: usize, in_spawn: bool, fc: &mut FileChannels) {
    let mut i = 0;
    while i < toks.len() {
        // `name.op(` where op is a channel operation.
        if let (Some(name), Some(dot), Some(op)) = (
            toks[i].ident(),
            toks.get(i + 1),
            toks.get(i + 2).and_then(|t| t.ident()),
        ) {
            if dot.is_punct('.')
                && (SEND_OPS.contains(&op) || RECV_OPS.contains(&op))
                && toks.get(i + 3).and_then(|t| t.group('(')).is_some()
            {
                fc.sites.push(ChanSite {
                    fn_idx,
                    name: name.to_string(),
                    op: op.to_string(),
                    line: toks[i + 2].line,
                    in_spawn,
                });
            }
        }
        // Plain calls `callee(args)` for parameter resolution.
        if let Some(callee) = match_call(toks, i) {
            if let Some(group) = toks.get(i + 1).and_then(|t| t.group('(')) {
                let args = split_args(group)
                    .into_iter()
                    .map(|arg| arg_endpoint(&arg))
                    .collect();
                fc.calls.push(CallSite {
                    caller: fn_idx,
                    callee: callee.to_string(),
                    args,
                    spawned: in_spawn,
                });
            }
        }
        if let TokenKind::Group(_, children) = &toks[i].kind {
            let spawned = in_spawn || (i >= 1 && toks[i - 1].ident() == Some("spawn"));
            site_scan(children, fn_idx, spawned, fc);
        }
        i += 1;
    }
}

fn split_args(children: &[Token]) -> Vec<Vec<Token>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in children {
        if t.is_punct(',') {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(t.clone());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The single identifier an argument passes, if the argument is that
/// simple (`x`, `&x`, `&mut x`, `x.clone()`).
fn arg_endpoint(arg: &[Token]) -> Option<String> {
    let mut toks: Vec<&Token> = arg.iter().collect();
    while toks
        .first()
        .is_some_and(|t| t.is_punct('&') || t.ident() == Some("mut"))
    {
        toks.remove(0);
    }
    let name = toks.first()?.ident()?;
    match toks.len() {
        1 => Some(name.to_string()),
        4 => {
            if toks[1].is_punct('.')
                && toks[2].ident() == Some("clone")
                && toks[3].group('(').is_some_and(<[Token]>::is_empty)
            {
                Some(name.to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

#[derive(Clone, Debug)]
struct ChanEdge {
    from: String,
    to: String,
    channel: usize,
    blocking: bool,
    bounded: bool,
    line: usize, // 0-based line of the send site anchoring the edge
}

/// (fn, param position) → every (channel, caller, spawned) binding.
type ParamResolution = BTreeMap<(usize, usize), Vec<(usize, usize, bool)>>;

fn lint_channel_cycles(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        let fc = extract_channels(file);
        if fc.channels.is_empty() {
            continue;
        }
        // Resolve parameter-passed endpoints to channels, to a fixpoint.
        let mut param_res: ParamResolution = BTreeMap::new();
        let fn_index: BTreeMap<&str, usize> = file
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        for _ in 0..4 {
            let mut changed = false;
            for call in &fc.calls {
                let Some(&callee) = fn_index.get(call.callee.as_str()) else {
                    continue;
                };
                for (pos, arg) in call.args.iter().enumerate() {
                    let Some(arg) = arg else { continue };
                    let mut bindings: Vec<(usize, usize, bool)> = Vec::new();
                    if let Some(&key) = fc.names.get(arg) {
                        bindings.push((key, call.caller, call.spawned));
                    } else if let Some(q) =
                        file.fns[call.caller].params.iter().position(|p| p == arg)
                    {
                        if let Some(upstream) = param_res.get(&(call.caller, q)) {
                            for &(key, ..) in upstream.clone().iter() {
                                bindings.push((key, call.caller, call.spawned));
                            }
                        }
                    }
                    let entry = param_res.entry((callee, pos)).or_default();
                    for b in bindings {
                        if !entry.contains(&b) {
                            entry.push(b);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Thread-owner attribution for a function's sites: the function
        // itself when it is spawned as a thread entry (or never called in
        // this file); otherwise the owners of its same-thread callers.
        let spawn_called: BTreeSet<usize> = fc
            .calls
            .iter()
            .filter(|c| c.spawned)
            .filter_map(|c| fn_index.get(c.callee.as_str()).copied())
            .collect();
        let callers_of = |f: usize| -> Vec<usize> {
            fc.calls
                .iter()
                .filter(|c| !c.spawned && fn_index.get(c.callee.as_str()) == Some(&f))
                .map(|c| c.caller)
                .collect()
        };
        fn owners_rec(
            f: usize,
            depth: usize,
            visiting: &mut BTreeSet<usize>,
            spawn_called: &BTreeSet<usize>,
            callers_of: &dyn Fn(usize) -> Vec<usize>,
        ) -> BTreeSet<usize> {
            let mut out = BTreeSet::new();
            let callers = callers_of(f);
            if depth == 0 || spawn_called.contains(&f) || callers.is_empty() {
                out.insert(f);
            }
            if depth > 0 && !visiting.contains(&f) {
                visiting.insert(f);
                for c in callers {
                    out.extend(owners_rec(c, depth - 1, visiting, spawn_called, callers_of));
                }
                visiting.remove(&f);
            }
            out
        }
        let owners = |f: usize| -> BTreeSet<usize> {
            let mut visiting = BTreeSet::new();
            owners_rec(f, 4, &mut visiting, &spawn_called, &callers_of)
        };

        // Resolve each site to (channel, owning thread functions).
        struct Resolved {
            channel: usize,
            owner: usize,
            op: String,
            line: usize,
        }
        let mut resolved: Vec<Resolved> = Vec::new();
        for site in &fc.sites {
            let mut push = |channel: usize, owner_set: BTreeSet<usize>| {
                for owner in owner_set {
                    resolved.push(Resolved {
                        channel,
                        owner,
                        op: site.op.clone(),
                        line: site.line,
                    });
                }
            };
            if let Some(&key) = fc.names.get(&site.name) {
                if site.in_spawn {
                    // A send inside a spawned closure belongs to the thread
                    // started there, not to the enclosing function's callers.
                    push(key, BTreeSet::from([site.fn_idx]));
                } else {
                    push(key, owners(site.fn_idx));
                }
            } else if let Some(pos) = file.fns[site.fn_idx]
                .params
                .iter()
                .position(|p| *p == site.name)
            {
                if let Some(bindings) = param_res.get(&(site.fn_idx, pos)) {
                    for &(key, caller, spawned) in bindings.clone().iter() {
                        if spawned {
                            push(key, BTreeSet::from([site.fn_idx]));
                        } else {
                            push(key, owners(caller));
                        }
                    }
                }
            }
        }

        // Edges: every (sender thread → receiver thread) pair per channel.
        let mut edges: Vec<ChanEdge> = Vec::new();
        for (key, chan) in fc.channels.iter().enumerate() {
            let senders: Vec<&Resolved> = resolved
                .iter()
                .filter(|r| r.channel == key && SEND_OPS.contains(&r.op.as_str()))
                .collect();
            let receivers: BTreeSet<usize> = resolved
                .iter()
                .filter(|r| r.channel == key && RECV_OPS.contains(&r.op.as_str()))
                .map(|r| r.owner)
                .collect();
            for s in &senders {
                for &r in &receivers {
                    if s.owner == r {
                        continue;
                    }
                    let edge = ChanEdge {
                        from: file.fns[s.owner].name.clone(),
                        to: file.fns[r].name.clone(),
                        channel: key,
                        blocking: s.op == "send",
                        bounded: chan.bounded,
                        line: s.line,
                    };
                    let dup = edges.iter_mut().find(|e| {
                        e.from == edge.from && e.to == edge.to && e.channel == edge.channel
                    });
                    match dup {
                        // A blocking send site dominates a shedding one on
                        // the same edge (the edge can block).
                        Some(e) => {
                            if edge.blocking && !e.blocking {
                                e.blocking = true;
                                e.line = edge.line;
                            }
                        }
                        None => edges.push(edge),
                    }
                }
            }
        }

        // Hard edges — bounded channel, blocking send, no shed — are the
        // only ones that can wedge; a cycle made entirely of them deadlocks
        // once every queue on the ring is full.
        let hard: Vec<&ChanEdge> = edges.iter().filter(|e| e.bounded && e.blocking).collect();
        let suppressed: Vec<Option<usize>> = hard
            .iter()
            .map(|e| suppressor(&file.lines, e.line, Lint::ChannelCycle))
            .collect();
        let active: Vec<&ChanEdge> = hard
            .iter()
            .zip(&suppressed)
            .filter(|(_, s)| s.is_none())
            .map(|(e, _)| *e)
            .collect();
        for edge in &active {
            if let Some(path) = chan_cycle_path(&active, edge) {
                diags.push(chan_diag(file, &fc, edge, &path, None));
            }
        }
        for (edge, sup) in hard.iter().zip(&suppressed) {
            if let Some(marker) = sup {
                if let Some(path) = chan_cycle_path(&hard, edge) {
                    diags.push(chan_diag(file, &fc, edge, &path, Some(*marker)));
                }
            }
        }
    }
    diags
}

/// If `edge` lies on a cycle of hard edges, returns the thread functions
/// along it, starting at `edge.from`.
fn chan_cycle_path(edges: &[&ChanEdge], edge: &ChanEdge) -> Option<Vec<String>> {
    // BFS from edge.to back to edge.from over hard edges.
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(edge.to.as_str());
    let mut seen: BTreeSet<&str> = BTreeSet::from([edge.to.as_str()]);
    while let Some(node) = queue.pop_front() {
        if node == edge.from {
            let mut path = vec![edge.from.clone()];
            let mut cur = edge.from.as_str();
            while let Some(&p) = prev.get(cur) {
                if p == edge.from {
                    break;
                }
                path.push(p.to_string());
                cur = p;
            }
            path.reverse();
            let mut out = vec![edge.from.clone()];
            out.extend(path.into_iter().filter(|n| *n != edge.from));
            return Some(out);
        }
        for e in edges {
            if e.from == node && !seen.contains(e.to.as_str()) {
                seen.insert(e.to.as_str());
                prev.insert(e.to.as_str(), node);
                queue.push_back(e.to.as_str());
            }
        }
    }
    None
}

fn chan_diag(
    file: &SourceFile,
    fc: &FileChannels,
    edge: &ChanEdge,
    path: &[String],
    suppressed_by: Option<usize>,
) -> Diagnostic {
    let chan = &fc.channels[edge.channel];
    let mut ring = String::new();
    for name in path {
        let _ = write!(ring, "`{name}` → ");
    }
    let _ = write!(ring, "`{}`", path.first().map(String::as_str).unwrap_or(""));
    Diagnostic {
        file: file.rel.clone(),
        line: edge.line + 1,
        lint: Lint::ChannelCycle,
        message: format!(
            "blocking `send()` on the bounded({}) channel declared on line {} closes the \
             channel cycle {ring} with no shed path; once every queue on the ring is full all \
             of these threads wedge — use `try_send`/`send_timeout` or break the ring \
             (suppress with `// lint: allow(chan) — <reason>`)",
            chan.cap,
            chan.line + 1
        ),
        suppressed_by,
    }
}

// ---------------------------------------------------------------------------
// L9: blocking calls in writer/accept regions
// ---------------------------------------------------------------------------

/// Blocking operations that must not run on a coalescing-writer or
/// accept-loop thread: the needle description and its 0-based line.
fn blocking_ops(body: &[Token]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    fn scan(toks: &[Token], out: &mut Vec<(String, usize)>) {
        let mut i = 0;
        while i < toks.len() {
            if let Some(name) = toks[i].ident() {
                let called = toks.get(i + 1).is_some_and(|t| t.group('(').is_some());
                if called {
                    let after_path = |target: &str| {
                        i >= 3
                            && toks[i - 1].is_punct(':')
                            && toks[i - 2].is_punct(':')
                            && toks[i - 3].ident() == Some(target)
                    };
                    match name {
                        "ensure_durable" | "fsync" | "sync_all" | "sync_data" => {
                            out.push((format!("`{name}()` (storage durability)"), toks[i].line));
                        }
                        "connect" if after_path("TcpStream") => {
                            out.push((
                                "`TcpStream::connect()` (unbounded blocking connect)".to_string(),
                                toks[i].line,
                            ));
                        }
                        "sleep" if after_path("thread") => {
                            out.push(("`thread::sleep()`".to_string(), toks[i].line));
                        }
                        _ => {}
                    }
                }
            }
            if let TokenKind::Group(_, children) = &toks[i].kind {
                scan(children, out);
            }
            i += 1;
        }
    }
    scan(body, &mut out);
    out
}

fn is_worker_region(name: &str) -> bool {
    name.contains("writer") || name.contains("accept")
}

fn lint_blocking_in_worker(files: &[SourceFile]) -> Vec<Diagnostic> {
    // Corpus-wide table: which functions contain a blocking op directly
    // (for one-level call inlining).
    let mut fn_blocking: BTreeMap<String, String> = BTreeMap::new();
    for file in files {
        for f in &file.fns {
            if let Some((desc, _)) = blocking_ops(&f.body).into_iter().next() {
                fn_blocking.entry(f.name.clone()).or_insert(desc);
            }
        }
    }

    let mut diags = Vec::new();
    for file in files {
        for f in &file.fns {
            if !is_worker_region(&f.name) {
                continue;
            }
            let mut findings: Vec<(String, usize)> = blocking_ops(&f.body);
            // One level deep: calls to corpus functions that block.
            fn call_scan(
                toks: &[Token],
                fn_name: &str,
                fn_blocking: &BTreeMap<String, String>,
                out: &mut Vec<(String, usize)>,
            ) {
                let mut i = 0;
                while i < toks.len() {
                    if let Some(callee) = match_call(toks, i) {
                        if callee != fn_name && !is_worker_region(callee) {
                            if let Some(desc) = fn_blocking.get(callee) {
                                out.push((
                                    format!("call to `{callee}()`, which does {desc}"),
                                    toks[i].line,
                                ));
                            }
                        }
                    }
                    if let TokenKind::Group(_, children) = &toks[i].kind {
                        call_scan(children, fn_name, fn_blocking, out);
                    }
                    i += 1;
                }
            }
            call_scan(&f.body, &f.name, &fn_blocking, &mut findings);
            for (desc, line) in findings {
                diags.push(Diagnostic {
                    file: file.rel.clone(),
                    line: line + 1,
                    lint: Lint::BlockingInWorker,
                    message: format!(
                        "{desc} inside the worker region `{}` stalls the RPC plane for every \
                         connected client; move storage-speed work to a pipeline thread \
                         (suppress with `// lint: allow(blocking) — <reason>`)",
                        f.name
                    ),
                    suppressed_by: suppressor(&file.lines, line, Lint::BlockingInWorker),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn corpus(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(name, text)| SourceFile::parse(Path::new(name).to_path_buf(), text))
            .collect()
    }

    fn active(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| d.suppressed_by.is_none())
            .collect()
    }

    #[test]
    fn l7_flags_inverted_lock_order() {
        let src = "fn f(shared: &Shared) {\n\
                   \x20   let stats = shared.stats.lock();\n\
                   \x20   let plane = shared.write_plane.lock();\n\
                   \x20   drop(plane);\n\
                   \x20   drop(stats);\n\
                   }\n\
                   fn g(shared: &Shared) {\n\
                   \x20   let plane = shared.write_plane.lock();\n\
                   \x20   let stats = shared.stats.lock();\n\
                   }\n";
        let diags = active(lint_lock_order(&corpus(&[("a.rs", src)])));
        assert!(!diags.is_empty(), "inversion must be flagged");
        assert!(diags[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn l7_consistent_order_is_clean() {
        let src = "fn f(shared: &Shared) {\n\
                   \x20   let stats = shared.stats.lock();\n\
                   \x20   let plane = shared.write_plane.lock();\n\
                   }\n\
                   fn g(shared: &Shared) {\n\
                   \x20   let stats = shared.stats.lock();\n\
                   \x20   shared.write_plane.lock().bump();\n\
                   }\n";
        assert!(active(lint_lock_order(&corpus(&[("a.rs", src)]))).is_empty());
    }

    #[test]
    fn l7_inlines_one_call_level() {
        let a = "fn f(shared: &Shared) {\n\
                 \x20   let stats = shared.stats.lock();\n\
                 \x20   helper(shared);\n\
                 }\n";
        let b = "fn helper(shared: &Shared) {\n\
                 \x20   let plane = shared.write_plane.lock();\n\
                 }\n\
                 fn g(shared: &Shared) {\n\
                 \x20   let plane = shared.write_plane.lock();\n\
                 \x20   let stats = shared.stats.lock();\n\
                 }\n";
        let diags = active(lint_lock_order(&corpus(&[("a.rs", a), ("b.rs", b)])));
        assert!(!diags.is_empty(), "cycle through a callee must be flagged");
    }

    #[test]
    fn l7_guard_tracking_respects_drop_scope_and_temporaries() {
        // drop() ends the region; a temporary never opens one; a spawned
        // closure does not inherit the caller's guards.
        let src = "fn f(shared: &Shared) {\n\
                   \x20   let stats = shared.stats.lock();\n\
                   \x20   drop(stats);\n\
                   \x20   let plane = shared.write_plane.lock();\n\
                   }\n\
                   fn g(shared: &Shared) {\n\
                   \x20   shared.write_plane.lock().bump();\n\
                   \x20   let stats = shared.stats.lock();\n\
                   }\n\
                   fn h(shared: &Shared) {\n\
                   \x20   let plane = shared.write_plane.lock();\n\
                   \x20   thread::spawn(move || {\n\
                   \x20       let stats = shared.stats.lock();\n\
                   \x20   });\n\
                   }\n";
        assert!(active(lint_lock_order(&corpus(&[("a.rs", src)]))).is_empty());
    }

    #[test]
    fn l7_follows_multiline_method_chains() {
        // The old line-oriented engine required the guard needle and `;` on
        // one line; the token tree does not care about layout.
        let src = "fn f(shared: &Shared) {\n\
                   \x20   let stats = shared\n\
                   \x20       .stats\n\
                   \x20       .lock();\n\
                   \x20   let plane = shared.write_plane.lock();\n\
                   }\n\
                   fn g(shared: &Shared) {\n\
                   \x20   let plane = shared\n\
                   \x20       .write_plane\n\
                   \x20       .lock();\n\
                   \x20   let stats = shared.stats.lock();\n\
                   }\n";
        let diags = active(lint_lock_order(&corpus(&[("a.rs", src)])));
        assert!(!diags.is_empty(), "wrapped chains must still bind guards");
    }

    #[test]
    fn l8_flags_bounded_blocking_ring() {
        let src = "fn setup() {\n\
                   \x20   let (req_tx, req_rx) = bounded::<u64>(1);\n\
                   \x20   let (resp_tx, resp_rx) = bounded::<u64>(1);\n\
                   \x20   thread::spawn(move || client(req_tx, resp_rx));\n\
                   \x20   thread::spawn(move || server(req_rx, resp_tx));\n\
                   }\n\
                   fn client(req_tx: Sender<u64>, resp_rx: Receiver<u64>) {\n\
                   \x20   req_tx.send(1).unwrap();\n\
                   \x20   let _ = resp_rx.recv();\n\
                   }\n\
                   fn server(req_rx: Receiver<u64>, resp_tx: Sender<u64>) {\n\
                   \x20   resp_tx.send(2).unwrap();\n\
                   \x20   let _ = req_rx.recv();\n\
                   }\n";
        let diags = active(lint_channel_cycles(&corpus(&[("a.rs", src)])));
        assert!(!diags.is_empty(), "bounded blocking ring must be flagged");
        assert!(diags[0].message.contains("channel cycle"));
    }

    #[test]
    fn l8_shed_edge_breaks_the_ring() {
        let src = "fn setup() {\n\
                   \x20   let (req_tx, req_rx) = bounded::<u64>(1);\n\
                   \x20   let (resp_tx, resp_rx) = bounded::<u64>(1);\n\
                   \x20   thread::spawn(move || client(req_tx, resp_rx));\n\
                   \x20   thread::spawn(move || server(req_rx, resp_tx));\n\
                   }\n\
                   fn client(req_tx: Sender<u64>, resp_rx: Receiver<u64>) {\n\
                   \x20   req_tx.send(1).unwrap();\n\
                   \x20   let _ = resp_rx.recv();\n\
                   }\n\
                   fn server(req_rx: Receiver<u64>, resp_tx: Sender<u64>) {\n\
                   \x20   let _ = resp_tx.try_send(2);\n\
                   \x20   let _ = req_rx.recv();\n\
                   }\n";
        assert!(active(lint_channel_cycles(&corpus(&[("a.rs", src)]))).is_empty());
    }

    #[test]
    fn l8_unbounded_edge_breaks_the_ring() {
        let src = "fn setup() {\n\
                   \x20   let (req_tx, req_rx) = bounded::<u64>(1);\n\
                   \x20   let (resp_tx, resp_rx) = unbounded::<u64>();\n\
                   \x20   thread::spawn(move || client(req_tx, resp_rx));\n\
                   \x20   thread::spawn(move || server(req_rx, resp_tx));\n\
                   }\n\
                   fn client(req_tx: Sender<u64>, resp_rx: Receiver<u64>) {\n\
                   \x20   req_tx.send(1).unwrap();\n\
                   \x20   let _ = resp_rx.recv();\n\
                   }\n\
                   fn server(req_rx: Receiver<u64>, resp_tx: Sender<u64>) {\n\
                   \x20   resp_tx.send(2).unwrap();\n\
                   \x20   let _ = req_rx.recv();\n\
                   }\n";
        assert!(active(lint_channel_cycles(&corpus(&[("a.rs", src)]))).is_empty());
    }

    #[test]
    fn l8_resolves_helper_sends_to_the_calling_thread() {
        // The blocking send lives in a helper; the pipeline is linear, so
        // no cycle — and the helper's send must not be orphaned either.
        let src = "fn setup() {\n\
                   \x20   let (a_tx, a_rx) = bounded::<u64>(4);\n\
                   \x20   thread::spawn(move || stage_one(a_tx));\n\
                   \x20   thread::spawn(move || stage_two(a_rx));\n\
                   }\n\
                   fn push<T>(tx: &Sender<T>, value: T) {\n\
                   \x20   if tx.try_send(value).is_err() {\n\
                   \x20       tx.send(value).ok();\n\
                   \x20   }\n\
                   }\n\
                   fn stage_one(a_tx: Sender<u64>) {\n\
                   \x20   push(&a_tx, 1);\n\
                   }\n\
                   fn stage_two(a_rx: Receiver<u64>) {\n\
                   \x20   let _ = a_rx.recv();\n\
                   }\n";
        assert!(active(lint_channel_cycles(&corpus(&[("a.rs", src)]))).is_empty());
    }

    #[test]
    fn l9_flags_durability_in_writer_region() {
        let src = "fn run_coalescing_writer(shared: &Shared) {\n\
                   \x20   shared.store.ensure_durable(7);\n\
                   }\n";
        let diags = active(lint_blocking_in_worker(&corpus(&[("a.rs", src)])));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("ensure_durable"));
    }

    #[test]
    fn l9_one_level_deep_and_clean_regions() {
        let a = "fn accept_loop(shared: &Shared) {\n\
                 \x20   persist_now(shared);\n\
                 }\n\
                 fn persist_now(shared: &Shared) {\n\
                 \x20   shared.store.ensure_durable(7);\n\
                 }\n\
                 fn deliver_stage(shared: &Shared) {\n\
                 \x20   shared.store.ensure_durable(7);\n\
                 }\n";
        let diags = active(lint_blocking_in_worker(&corpus(&[("a.rs", a)])));
        assert_eq!(diags.len(), 1, "only the accept-loop call is a finding");
        assert!(diags[0].message.contains("persist_now"));
    }

    #[test]
    fn allows_suppress_graph_findings() {
        let src = "fn run_writer(shared: &Shared) {\n\
                   \x20   // lint: allow(blocking) — test fixture\n\
                   \x20   shared.store.ensure_durable(7);\n\
                   }\n";
        let diags = lint_blocking_in_worker(&corpus(&[("a.rs", src)]));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed_by.is_some(), "marker line recorded");
    }
}
