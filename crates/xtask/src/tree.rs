//! The token-tree layer: turns masked source lines into line-tagged tokens
//! and brace/paren/bracket-matched trees, and extracts `fn` items with their
//! parameter names.
//!
//! This is the engine upgrade behind the concurrency lints (L7–L9 in
//! [`crate::graph`]): the line-oriented matchers in `lib.rs` cannot follow a
//! method chain wrapped across lines or a guard bound inside a macro body,
//! but a token tree flattens physical layout away while keeping the line of
//! every token for diagnostics. It deliberately stays a *lexer with
//! matching*, not a parser: masking (see [`crate::mask_source`]) has already
//! removed strings, chars, and comments, so what remains is plain tokens and
//! three kinds of delimiter to pair up.

use crate::MaskedLine;

/// One lexed token. Identifiers keep their text; every other non-delimiter
/// character is a [`TokenKind::Punct`]. Delimited runs become
/// [`TokenKind::Group`]s.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier, keyword, or number literal (`foo`, `fn`, `1024`).
    Ident(String),
    /// A single punctuation character (`.`, `;`, `=`, `|`, …).
    Punct(char),
    /// A delimited subtree; the `char` is the opening delimiter
    /// (`(`, `[`, or `{`).
    Group(char, Vec<Token>),
}

/// A token plus where it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 0-based index into the masked-line array (1-based line minus one).
    pub line: usize,
    /// True when the token sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// The children of a group opened by `delim`, if this token is one.
    pub fn group(&self, delim: char) -> Option<&[Token]> {
        match &self.kind {
            TokenKind::Group(d, children) if *d == delim => Some(children),
            _ => None,
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes masked lines into a flat token list (no delimiter matching yet).
fn lex(lines: &[MaskedLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (line_idx, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_ident_char(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(chars[start..i].iter().collect()),
                    line: line_idx,
                    in_test: line.in_test,
                });
                continue;
            }
            out.push(Token {
                kind: TokenKind::Punct(c),
                line: line_idx,
                in_test: line.in_test,
            });
            i += 1;
        }
    }
    out
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Builds brace/paren/bracket-matched trees from masked lines. Unbalanced
/// input is tolerated best-effort: a stray closer is dropped, an unclosed
/// group is closed at end of input — the analyses over the tree are
/// advisory lints, not a compiler front end.
pub fn tokenize(lines: &[MaskedLine]) -> Vec<Token> {
    let flat = lex(lines);
    let mut stack: Vec<(char, usize, bool, Vec<Token>)> = Vec::new();
    let mut top: Vec<Token> = Vec::new();
    for tok in flat {
        match tok.kind {
            TokenKind::Punct(c @ ('(' | '[' | '{')) => {
                stack.push((c, tok.line, tok.in_test, Vec::new()));
            }
            TokenKind::Punct(c @ (')' | ']' | '}')) => {
                // Pop if the closer matches the innermost open delimiter;
                // otherwise drop the stray closer.
                if stack.last().is_some_and(|(open, ..)| close_of(*open) == c) {
                    let (open, line, in_test, children) = stack.pop().expect("checked non-empty");
                    let group = Token {
                        kind: TokenKind::Group(open, children),
                        line,
                        in_test,
                    };
                    match stack.last_mut() {
                        Some((.., parent)) => parent.push(group),
                        None => top.push(group),
                    }
                }
            }
            _ => match stack.last_mut() {
                Some((.., parent)) => parent.push(tok),
                None => top.push(tok),
            },
        }
    }
    // Close any unterminated groups at end of input.
    while let Some((open, line, in_test, children)) = stack.pop() {
        let group = Token {
            kind: TokenKind::Group(open, children),
            line,
            in_test,
        };
        match stack.last_mut() {
            Some((.., parent)) => parent.push(group),
            None => top.push(group),
        }
    }
    top
}

/// A function item extracted from the token tree.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Parameter names in declaration order (`self` and destructured
    /// patterns contribute an empty-string placeholder so positions stay
    /// aligned with call-site arguments).
    pub params: Vec<String>,
    /// The tokens of the body block.
    pub body: Vec<Token>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// True when the whole item is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Extracts every `fn` item in the tree, descending into `mod`/`impl`/fn
/// bodies (so methods and nested items are all found).
pub fn extract_fns(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    collect_fns(tokens, &mut out);
    out
}

fn collect_fns(tokens: &[Token], out: &mut Vec<FnItem>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("fn") {
            if let Some((item, next)) = parse_fn(tokens, i) {
                collect_fns(&item.body, out);
                out.push(item);
                i = next;
                continue;
            }
        }
        // A `macro_rules! name { … }` definition becomes a pseudo-function:
        // code inside macro bodies acquires the same locks and channels as
        // code anywhere else, so the graph lints must see it.
        if tokens[i].ident() == Some("macro_rules")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            if let (Some(name), Some(body)) = (
                tokens.get(i + 2).and_then(|t| t.ident()),
                tokens.get(i + 3).and_then(|t| t.group('{')),
            ) {
                let item = FnItem {
                    name: name.to_string(),
                    params: Vec::new(),
                    body: body.to_vec(),
                    line: tokens[i].line,
                    in_test: tokens[i].in_test,
                };
                collect_fns(&item.body, out);
                out.push(item);
                i += 4;
                continue;
            }
        }
        if let TokenKind::Group('{', children) = &tokens[i].kind {
            collect_fns(children, out);
        }
        i += 1;
    }
}

/// Parses one `fn` item starting at `at` (the `fn` keyword). Returns the
/// item and the index just past its body. Trait-method declarations without
/// a body yield `None`.
fn parse_fn(tokens: &[Token], at: usize) -> Option<(FnItem, usize)> {
    let name_tok = tokens.get(at + 1)?;
    let name = name_tok.ident()?.to_string();
    // Find the parameter list: the first `(` group after the name that is
    // not inside a generic parameter list. `<`/`>` are plain puncts, so a
    // bound like `F: Fn(u8)` would otherwise donate its paren group; track
    // angle depth, ignoring the `>` of a `->` arrow.
    let mut i = at + 2;
    let mut params_at = None;
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Group('(', _) if angle == 0 => {
                params_at = Some(i);
                break;
            }
            TokenKind::Group('{', _) | TokenKind::Punct(';') => return None,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') if !prev_dash => angle = (angle - 1).max(0),
            _ => {}
        }
        prev_dash = tokens[i].is_punct('-');
        i += 1;
    }
    let params_at = params_at?;
    let params = parse_params(tokens[params_at].group('(')?);
    // Find the body: the first `{` group before a `;` (a `;` first means a
    // bodiless trait/extern declaration). A `where` clause or return type
    // may sit in between; any `{` group inside those would be unusual
    // enough to accept the approximation.
    let mut j = params_at + 1;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Group('{', children) => {
                let item = FnItem {
                    name,
                    params,
                    body: children.clone(),
                    line: tokens[at].line,
                    in_test: tokens[at].in_test,
                };
                return Some((item, j + 1));
            }
            TokenKind::Punct(';') => return None,
            _ => j += 1,
        }
    }
    None
}

/// Extracts parameter names: for each comma-separated parameter at the top
/// level of the list, the last identifier before the `:` (so `mut stream:
/// TcpStream` yields `stream`). `self` receivers and destructuring patterns
/// yield an empty placeholder.
fn parse_params(children: &[Token]) -> Vec<String> {
    let mut params = Vec::new();
    let mut start = 0;
    let mut i = 0;
    loop {
        let at_end = i == children.len();
        if at_end || children[i].is_punct(',') {
            let param = &children[start..i];
            if !param.is_empty() {
                params.push(param_name(param));
            }
            start = i + 1;
        }
        if at_end {
            break;
        }
        i += 1;
    }
    params
}

fn param_name(param: &[Token]) -> String {
    let colon = param.iter().position(|t| t.is_punct(':'));
    let pattern = match colon {
        Some(c) => &param[..c],
        None => param, // `self` / `&mut self`
    };
    let mut name = None;
    for tok in pattern {
        if let Some(id) = tok.ident() {
            if id != "mut" && id != "self" {
                name = Some(id.to_string());
            }
        }
        if matches!(tok.kind, TokenKind::Group(..)) {
            return String::new(); // destructuring pattern
        }
    }
    name.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask_source;

    fn tree(src: &str) -> Vec<Token> {
        tokenize(&mask_source(src))
    }

    #[test]
    fn lexes_and_matches_groups() {
        let toks = tree("fn f(x: u8) { g(x); }\n");
        assert_eq!(toks[0].ident(), Some("fn"));
        assert_eq!(toks[1].ident(), Some("f"));
        assert!(toks[2].group('(').is_some());
        let body = toks[3].group('{').unwrap();
        assert_eq!(body[0].ident(), Some("g"));
        assert!(body[1].group('(').is_some());
        assert!(body[2].is_punct(';'));
    }

    #[test]
    fn tracks_lines_across_wrapped_chains() {
        let toks = tree("let g = shared\n    .stats\n    .lock();\n");
        let stats = toks.iter().find(|t| t.ident() == Some("stats")).unwrap();
        assert_eq!(stats.line, 1);
        let lock = toks.iter().find(|t| t.ident() == Some("lock")).unwrap();
        assert_eq!(lock.line, 2);
    }

    #[test]
    fn tolerates_unbalanced_input() {
        // A stray closer is dropped; an unclosed group closes at EOF.
        let toks = tree("} fn f() { g(\n");
        assert!(toks.iter().any(|t| t.ident() == Some("fn")));
        let toks = tree("fn f() { if x { y()\n");
        assert!(!toks.is_empty());
    }

    #[test]
    fn extracts_fns_with_params() {
        let src =
            "impl S {\n    fn writer(mut stream: TcpStream, shared: &Arc<Shared>) {\n        \
                   stream.flush();\n    }\n}\nfn top<T: Send>(tx: &Sender<T>, value: T) {}\n";
        let fns = extract_fns(&tree(src));
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"writer"));
        assert!(names.contains(&"top"));
        let writer = fns.iter().find(|f| f.name == "writer").unwrap();
        assert_eq!(writer.params, vec!["stream", "shared"]);
        let top = fns.iter().find(|f| f.name == "top").unwrap();
        assert_eq!(top.params, vec!["tx", "value"]);
    }

    #[test]
    fn skips_bodiless_trait_methods() {
        let src = "trait T {\n    fn must(&self) -> u8;\n    fn has(&self) -> u8 { 0 }\n}\n";
        let fns = extract_fns(&tree(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "has");
        assert_eq!(fns[0].params, vec![""]);
    }

    #[test]
    fn masking_still_applies_in_tree() {
        // Tokens inside strings/raw strings/comments never reach the tree.
        let src = "fn f() { let s = r#\"bounded(1).send(\"#; /* lock() */ }\n";
        let toks = tree(src);
        fn has_ident(toks: &[Token], name: &str) -> bool {
            toks.iter().any(|t| match &t.kind {
                TokenKind::Ident(s) => s == name,
                TokenKind::Group(_, c) => has_ident(c, name),
                _ => false,
            })
        }
        assert!(!has_ident(&toks, "bounded"));
        assert!(!has_ident(&toks, "lock"));
    }
}
