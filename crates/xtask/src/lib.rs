//! The `wedge-lint` static-analysis pass.
//!
//! A lexer-based (comment/string-aware, `#[cfg(test)]`-aware) pass over the
//! workspace's library sources enforcing project-specific invariants that
//! rustc and clippy don't:
//!
//! * **L1 `panic`** — no `unwrap()` / `expect()` / `panic!` (and, in
//!   `wedge-storage`/`wedge-chain`, no non-literal indexing) in non-test
//!   library code of the protocol crates. A node that dies mid-Stage-1
//!   silently breaks the accountability guarantee.
//! * **L2 `arith`** — bare `+`/`-`/`*` on balance/gas/fee/nonce values in
//!   `wedge-chain` must be `checked_*`/`saturating_*`: silent wrap-around
//!   in money math is a protocol bug, not a crash.
//! * **L3 `ct`** — comparisons of secret-bearing bytes in `wedge-crypto`
//!   (scalars, HMAC tags, signature components) must go through
//!   [`ct_eq`](../wedge_crypto/ct/index.html); `==` short-circuits and
//!   leaks timing.
//! * **L4 `unsafe`** — every crate root carries `#![forbid(unsafe_code)]`.
//! * **L5 `lock`** — no lock guard taken from `Shared.stats` may be held
//!   across a channel `send()` in `crates/core/src/node/` (deadlock/latency
//!   hazard in the stage-1→stage-2 pipeline).
//! * **L6 `plane`** — no write-plane guard (a `Shared.write_plane` lock, or
//!   the closure body of a `Shared::mutate(..)` call) may cover storage
//!   I/O (`.store.`), replication (`.replicate_sync(`), signing
//!   (`::sign(`), or a channel `send()` in `crates/core/src/node/`. The
//!   write plane serializes snapshot publication; I/O under it stalls every
//!   writer and delays what readers see.
//!
//! On top of the line-oriented rules, the token-tree engine ([`tree`])
//! powers three concurrency-graph lints ([`graph`]):
//!
//! * **L7 `lockorder`** — no cycle in the union lock-acquisition order
//!   across `crates/core/src/node/` and `crates/net/src/` (one call level
//!   of inlining).
//! * **L8 `chan`** — no ring of bounded channels whose sends all block:
//!   one full queue on such a ring wedges every thread on it.
//! * **L9 `blocking`** — no storage durability, blocking connect, or sleep
//!   inside a coalescing-writer or accept-loop region.
//!
//! A finding is suppressed per-site with a trailing or preceding comment of
//! the form `// lint: allow(<name>) — <reason>`, or for a whole file with
//! `// lint: allow-file(<name>) — <reason>`, where `<name>` is one of
//! `panic`, `arith`, `ct`, `lock`, `plane`, `lockorder`, `chan`,
//! `blocking` and the reason is mandatory. `cargo run -p xtask -- lint
//! --allows` audits every marker and fails on stale ones.
//!
//! Run with `cargo run -p xtask -- lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod tree;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The individual lints. The `allow` name is what the escape-hatch comment
/// uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    /// L1: panic-freedom in protocol library code.
    Panic,
    /// L2: checked/saturating arithmetic on money and gas.
    Arith,
    /// L3: constant-time comparison of secret material.
    ConstantTime,
    /// L4: `#![forbid(unsafe_code)]` on every crate root.
    ForbidUnsafe,
    /// L5: no `Shared.stats` guard held across `send()`.
    LockAcrossSend,
    /// L6: no write-plane guard (or `Shared::mutate` closure) covering
    /// storage I/O, replication, signing, or a channel send.
    WritePlaneAcrossIo,
    /// L7: no cycle in the lock-acquisition order graph.
    LockOrder,
    /// L8: no ring of bounded channels whose sends all block.
    ChannelCycle,
    /// L9: no blocking call inside a writer/accept worker region.
    BlockingInWorker,
}

impl Lint {
    /// Short code used in diagnostics (`L1`..`L6`).
    pub fn code(self) -> &'static str {
        match self {
            Lint::Panic => "L1",
            Lint::Arith => "L2",
            Lint::ConstantTime => "L3",
            Lint::ForbidUnsafe => "L4",
            Lint::LockAcrossSend => "L5",
            Lint::WritePlaneAcrossIo => "L6",
            Lint::LockOrder => "L7",
            Lint::ChannelCycle => "L8",
            Lint::BlockingInWorker => "L9",
        }
    }

    /// Name accepted by the `// lint: allow(<name>)` escape hatch.
    pub fn allow_name(self) -> &'static str {
        match self {
            Lint::Panic => "panic",
            Lint::Arith => "arith",
            Lint::ConstantTime => "ct",
            Lint::ForbidUnsafe => "unsafe",
            Lint::LockAcrossSend => "lock",
            Lint::WritePlaneAcrossIo => "plane",
            Lint::LockOrder => "lockorder",
            Lint::ChannelCycle => "chan",
            Lint::BlockingInWorker => "blocking",
        }
    }

    /// Every lint that has a usable allow name (L4 has none: the fix is to
    /// add the header, not to suppress the finding).
    pub fn all_allowable() -> &'static [Lint] {
        &[
            Lint::Panic,
            Lint::Arith,
            Lint::ConstantTime,
            Lint::LockAcrossSend,
            Lint::WritePlaneAcrossIo,
            Lint::LockOrder,
            Lint::ChannelCycle,
            Lint::BlockingInWorker,
        ]
    }
}

/// One finding, pointing at a file and 1-based line.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// File the finding is in (as given to the linter).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// Human-readable description.
    pub message: String,
    /// When an allow marker suppresses this finding: the 1-based line of
    /// the marker. `lint_workspace` filters suppressed findings out; the
    /// `--allows` audit uses them to prove each marker still earns its
    /// keep.
    pub suppressed_by: Option<usize>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint.code(),
            self.message
        )
    }
}

/// A source line after masking: code with comments/strings blanked out,
/// plus the text of any `//` comment and position metadata.
#[derive(Clone, Debug)]
pub struct MaskedLine {
    /// The line with string/char literals and comments replaced by spaces.
    pub code: String,
    /// Text of the `//` comment on this line, if any (without the slashes).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Brace depth at the end of the line.
    pub depth_end: usize,
}

/// Masks comments and string/char literals so later passes can match
/// tokens without being fooled by `"panic!"` inside a string, and records
/// `#[cfg(test)]` regions and brace depth.
pub fn mask_source(text: &str) -> Vec<MaskedLine> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }

    let bytes: Vec<char> = text.chars().collect();
    let mut state = State::Normal;
    let mut lines: Vec<MaskedLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();

    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();

        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(MaskedLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
                depth_end: 0,
            });
            i += 1;
            continue;
        }

        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    code.push(' ');
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            code.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                }
                '\'' => {
                    // Lifetime ('a) vs char literal ('x', '\n', '\u{1F4A9}').
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        code.push(c);
                    } else {
                        state = State::Char;
                        code.push(' ');
                    }
                }
                _ => code.push(c),
            },
            State::LineComment => {
                comment.push(c);
                code.push(' ');
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                code.push(' ');
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Normal;
                }
                code.push(' ');
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Normal;
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                code.push(' ');
            }
            State::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Normal;
                }
                code.push(' ');
            }
        }
        i += 1;
    }
    lines.push(MaskedLine {
        code,
        comment,
        in_test: false,
        depth_end: 0,
    });

    annotate_regions(&mut lines);
    lines
}

/// Fills in `in_test` and `depth_end` by scanning braces and
/// `#[cfg(test)]` attributes.
fn annotate_regions(lines: &mut [MaskedLine]) {
    let mut depth: usize = 0;
    // Depths at which a #[cfg(test)] item body was opened.
    let mut test_regions: Vec<usize> = Vec::new();
    let mut test_pending = false;

    for line in lines.iter_mut() {
        let compact: String = line.code.split_whitespace().collect();
        if compact.contains("#[cfg(test)]") {
            test_pending = true;
        }
        // A line is "test" if we're already inside a region, or the
        // attribute that opens one has been seen.
        line.in_test = !test_regions.is_empty() || test_pending;

        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if test_pending {
                        test_regions.push(depth);
                        test_pending = false;
                    }
                }
                '}' => {
                    if test_regions.last() == Some(&depth) {
                        test_regions.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        line.depth_end = depth;
    }
}

/// True when `comment` carries the marker `lint: allow{suffix}(<name>)`
/// with a non-empty reason after it.
fn comment_has_marker(comment: &str, name: &str, file_level: bool) -> bool {
    let kind = if file_level { "allow-file" } else { "allow" };
    let needle = format!("lint: {kind}({name})");
    match comment.find(&needle) {
        Some(pos) => {
            let rest = comment[pos + needle.len()..].trim_start_matches([' ', '—', '-', ':']);
            !rest.trim().is_empty()
        }
        None => false,
    }
}

/// When the finding on 0-based line `idx` is suppressed by an
/// `// lint: allow(<name>) — reason` comment on the same or previous
/// line(s), or a file-wide `// lint: allow-file(<name>) — reason` marker,
/// returns the marker's **1-based** line.
pub(crate) fn suppressor(lines: &[MaskedLine], idx: usize, lint: Lint) -> Option<usize> {
    let name = lint.allow_name();
    let site = |comment: &str| comment_has_marker(comment, name, false);
    if site(&lines[idx].comment) {
        return Some(idx + 1);
    }
    // Scan upward through the contiguous block of comment-only lines
    // immediately above the flagged line, so a wrapped allow comment
    // (marker on its first line) still suppresses.
    let mut i = idx;
    let mut found = None;
    while i > 0 && found.is_none() {
        i -= 1;
        let line = &lines[i];
        if !line.code.trim().is_empty() {
            // A line with code ends the comment block, but its trailing
            // comment still counts (allow on the previous statement's line).
            if site(&line.comment) {
                found = Some(i + 1);
            }
            break;
        }
        if line.comment.is_empty() {
            break; // blank line ends the block
        }
        if site(&line.comment) {
            found = Some(i + 1);
        }
    }
    if found.is_some() {
        return found;
    }
    // File-level marker anywhere in the file.
    lines
        .iter()
        .position(|l| comment_has_marker(&l.comment, name, true))
        .map(|i| i + 1)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn prev_non_space(code: &str, pos: usize) -> Option<char> {
    code[..pos].chars().rev().find(|c| !c.is_whitespace())
}

/// L1: panic-freedom. `check_indexing` additionally flags non-literal
/// index expressions (enabled for `wedge-storage` and `wedge-chain`).
pub fn lint_panic(file: &Path, lines: &[MaskedLine], check_indexing: bool) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut findings: Vec<String> = Vec::new();

        for (needle, what) in [(".unwrap()", "unwrap()"), (".expect(", "expect()")] {
            if code.contains(needle) {
                findings.push(format!(
                    "`{what}` in library code can take the node down; return a typed error \
                     or restructure (suppress with `// lint: allow(panic) — <reason>`)"
                ));
            }
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            if let Some(pos) = code.find(mac) {
                let ok_boundary =
                    pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap_or(' '));
                if ok_boundary {
                    findings.push(format!(
                        "`{mac}` in library code can take the node down; return a typed error \
                         (suppress with `// lint: allow(panic) — <reason>`)"
                    ));
                }
            }
        }
        if check_indexing {
            findings.extend(find_panicky_indexing(code));
        }

        for message in findings {
            diags.push(Diagnostic {
                file: file.to_path_buf(),
                line: idx + 1,
                lint: Lint::Panic,
                message,
                suppressed_by: suppressor(lines, idx, Lint::Panic),
            });
        }
    }
    diags
}

/// Flags `expr[index]` where `index` is not a plain integer literal.
fn find_panicky_indexing(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '[' {
            let prefix_end = code.char_indices().nth(i).map(|(b, _)| b).unwrap_or(0);
            let prev = prev_non_space(code, prefix_end);
            let is_index = matches!(prev, Some(p) if is_ident_char(p) || p == ')' || p == ']');
            // `&'a [u8]` is a type, not an indexing expression: the token
            // before the bracket is a lifetime. Likewise a keyword before
            // the bracket (`&mut [u8]`, `return [a, b]`, `as [T; 2]`,
            // `let [a, b] = pair`) starts a type, an array literal, or a
            // slice pattern, never an index.
            let (after_lifetime, after_keyword) = {
                let before: Vec<char> = code[..prefix_end]
                    .chars()
                    .rev()
                    .skip_while(|c| c.is_whitespace())
                    .collect();
                let ident_len = before.iter().take_while(|c| is_ident_char(**c)).count();
                let word: String = before[..ident_len].iter().rev().collect();
                let keyword = matches!(
                    word.as_str(),
                    "mut"
                        | "dyn"
                        | "impl"
                        | "as"
                        | "in"
                        | "return"
                        | "break"
                        | "else"
                        | "match"
                        | "let"
                );
                (before.get(ident_len) == Some(&'\''), keyword)
            };
            if is_index && !after_lifetime && !after_keyword {
                // Find the matching close bracket on this line.
                let mut depth = 1;
                let mut j = i + 1;
                while j < chars.len() && depth > 0 {
                    match chars[j] {
                        '[' => depth += 1,
                        ']' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth == 0 {
                    let inner: String = chars[i + 1..j - 1].iter().collect();
                    let trimmed = inner.trim();
                    let literal = !trimmed.is_empty()
                        && trimmed.chars().all(|c| c.is_ascii_digit() || c == '_');
                    // `[T; N]` is an array type/repeat literal and `[..]`
                    // is the full-range slice — neither can panic.
                    let exempt = trimmed.contains(';') || trimmed == "..";
                    if !trimmed.is_empty() && !literal && !exempt {
                        out.push(format!(
                            "indexing with `[{trimmed}]` can panic; use `.get(..)` and handle \
                             the miss (suppress with `// lint: allow(panic) — <reason>`)"
                        ));
                    }
                    i = j;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

const MONEY_KEYWORDS: &[&str] = &["balance", "amount", "fee", "gas", "nonce", "wei", "supply"];

/// L2: checked arithmetic on money/gas lines in `wedge-chain`.
pub fn lint_arith(file: &Path, lines: &[MaskedLine]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let lower = code.to_lowercase();
        if !MONEY_KEYWORDS.iter().any(|k| lower.contains(k)) {
            continue;
        }
        // Float math (price jitter models) is out of scope for L2.
        if lower.contains("f64") || lower.contains("f32") {
            continue;
        }
        if let Some(op) = find_bare_arith(code) {
            diags.push(Diagnostic {
                file: file.to_path_buf(),
                line: idx + 1,
                lint: Lint::Arith,
                message: format!(
                    "bare `{op}` on balance/gas values can overflow silently; use \
                     `checked_*`/`saturating_*` (suppress with \
                     `// lint: allow(arith) — <reason>`)"
                ),
                suppressed_by: suppressor(lines, idx, Lint::Arith),
            });
        }
    }
    diags
}

/// Finds the first bare binary `+`, `-`, `*` (or compound `+=`, `-=`,
/// `*=`) between value-like tokens, ignoring unary minus, derefs,
/// `->`, and range/borrow punctuation.
fn find_bare_arith(code: &str) -> Option<char> {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if !matches!(c, '+' | '-' | '*') {
            continue;
        }
        let next = chars.get(i + 1).copied();
        // `->` is not arithmetic.
        if c == '-' && next == Some('>') {
            continue;
        }
        // Binary operators need a value on the left; otherwise this is
        // unary minus, a deref, or part of a pattern.
        let prefix_end = code.char_indices().nth(i).map(|(b, _)| b).unwrap_or(0);
        let prev = prev_non_space(code, prefix_end);
        let has_left_value = matches!(prev, Some(p) if is_ident_char(p) || p == ')' || p == ']');
        if !has_left_value {
            continue;
        }
        // `&mut`-style and doc artifacts never reach here (masked).
        return Some(c);
    }
    None
}

const SECRET_KEYWORDS: &[&str] = &[
    "secret",
    "tag",
    "mac",
    "hmac",
    "signature",
    // The signing-wall paths: RFC 6979 nonces and the wNAF digit streams
    // derived from them are secret-dependent, so equality tests on them
    // must not short-circuit either.
    "nonce",
    "wnaf",
];

/// L3: constant-time comparison of secret material in `wedge-crypto`.
pub fn lint_ct(file: &Path, lines: &[MaskedLine]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let trimmed = code.trim_start();
        let lower = code.to_lowercase();

        // Derived PartialEq on a secret-bearing type is variable-time.
        if trimmed.starts_with("#[derive(") && code.contains("PartialEq") {
            let names_secret = lines
                .iter()
                .skip(idx + 1)
                .take(3)
                .any(|l| l.code.contains("struct Secret"));
            if names_secret {
                diags.push(Diagnostic {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    lint: Lint::ConstantTime,
                    message: "derived `PartialEq` on a secret-bearing type compares \
                              variable-time; implement it via `ct_eq` (suppress with \
                              `// lint: allow(ct) — <reason>`)"
                        .to_string(),
                    suppressed_by: suppressor(lines, idx, Lint::ConstantTime),
                });
            }
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        if !(code.contains("==") || code.contains("!=")) {
            continue;
        }
        if code.contains("ct_eq") {
            continue;
        }
        let touches_secret = SECRET_KEYWORDS.iter().any(|k| lower.contains(k))
            || lower.contains("sig.r")
            || lower.contains("sig.s");
        if touches_secret {
            diags.push(Diagnostic {
                file: file.to_path_buf(),
                line: idx + 1,
                lint: Lint::ConstantTime,
                message: "`==`/`!=` on secret-bearing bytes short-circuits and leaks \
                          timing; compare through `ct_eq` (suppress with \
                          `// lint: allow(ct) — <reason>`)"
                    .to_string(),
                suppressed_by: suppressor(lines, idx, Lint::ConstantTime),
            });
        }
    }
    diags
}

/// L4: the crate root must carry `#![forbid(unsafe_code)]`.
pub fn lint_forbid_unsafe(file: &Path, lines: &[MaskedLine]) -> Vec<Diagnostic> {
    let found = lines.iter().any(|l| {
        let compact: String = l.code.split_whitespace().collect();
        compact.contains("#![forbid(unsafe_code)]")
    });
    if found {
        Vec::new()
    } else {
        vec![Diagnostic {
            file: file.to_path_buf(),
            line: 1,
            lint: Lint::ForbidUnsafe,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            suppressed_by: None,
        }]
    }
}

/// The shared L5/L6 engine: tracks *guard regions* — let-bound lock guards
/// (`let g = <expr ending in a guard needle>;`), plus multi-line call
/// regions opened by an `opener` needle (e.g. a `Shared::mutate(..)`
/// closure body) — and flags any `op` needle occurring while a region is
/// live. Regions retire on scope exit or explicit `drop(guard)`.
#[allow(clippy::too_many_arguments)]
fn lint_guard_regions(
    file: &Path,
    lines: &[MaskedLine],
    lint: Lint,
    guard_needles: &[&str],
    openers: &[&str],
    ops: &[&str],
    message: &dyn Fn(&str, &str) -> String,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // (guard/region name, brace depth where it was bound)
    let mut live: Vec<(String, usize)> = Vec::new();
    let mut prev_depth = 0usize;

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            prev_depth = line.depth_end;
            continue;
        }
        let code = &line.code;

        // Scope exit kills regions bound deeper than the current depth.
        live.retain(|(_, depth)| *depth <= line.depth_end.min(prev_depth));

        // Explicit `drop(guard)`.
        for (name, _) in live.clone() {
            if code.contains(&format!("drop({name})")) {
                live.retain(|(n, _)| *n != name);
            }
        }

        // Ops while a region is live (at most one finding per line).
        if let Some((name, _)) = live.first() {
            if let Some(op) = ops.iter().find(|op| code.contains(*op)) {
                diags.push(Diagnostic {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    lint,
                    message: message(name, op),
                    suppressed_by: suppressor(lines, idx, lint),
                });
            }
        }

        // A guard is only *held* when the lock call is the whole RHS
        // (`let g = shared.write_plane.lock();`); with a trailing field/
        // method access the guard is a temporary dropped at end of
        // statement.
        let takes_guard = guard_needles.iter().any(|needle| {
            code.find(needle)
                .is_some_and(|pos| code[pos + needle.len()..].trim() == ";")
        }) && code.trim_start().starts_with("let ");
        if takes_guard {
            // `let mut name = ...` / `let name = ...`
            let after_let = code.trim_start().trim_start_matches("let ").trim_start();
            let after_mut = after_let.trim_start_matches("mut ").trim_start();
            let name: String = after_mut
                .chars()
                .take_while(|c| is_ident_char(*c))
                .collect();
            if !name.is_empty() && name != "_" {
                live.push((name, line.depth_end));
            }
        }

        // Call regions: a call like `shared.mutate(|plane| {` that does not
        // close on this line holds its implicit guard until the closure's
        // braces unwind. A call closed on the same line is checked inline.
        for opener in openers {
            let Some(pos) = code.find(opener) else {
                continue;
            };
            let after = &code[pos + opener.len()..];
            let mut paren_depth = 1i32;
            let mut close = None;
            for (j, c) in after.char_indices() {
                match c {
                    '(' => paren_depth += 1,
                    ')' => {
                        paren_depth -= 1;
                        if paren_depth == 0 {
                            close = Some(j);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let region = opener.trim_matches(['.', '(']);
            match close {
                Some(j) => {
                    // Single-line call: check the argument span directly.
                    let span = &after[..j];
                    if let Some(op) = ops.iter().find(|op| span.contains(*op)) {
                        diags.push(Diagnostic {
                            file: file.to_path_buf(),
                            line: idx + 1,
                            lint,
                            message: message(region, op),
                            suppressed_by: suppressor(lines, idx, lint),
                        });
                    }
                }
                None => live.push((region.to_string(), line.depth_end)),
            }
        }

        prev_depth = line.depth_end;
    }
    diags
}

/// L5: no `Shared.stats` guard held across a channel `send()` in the node
/// pipeline.
pub fn lint_lock_across_send(file: &Path, lines: &[MaskedLine]) -> Vec<Diagnostic> {
    lint_guard_regions(
        file,
        lines,
        Lint::LockAcrossSend,
        &[".stats.lock()"],
        &[],
        &[".send("],
        &|name, _op| {
            format!(
                "channel `send()` while the `{name}` guard (Shared.stats) is held \
                 risks deadlock and blocks readers; drop the guard first (suppress \
                 with `// lint: allow(lock) — <reason>`)"
            )
        },
    )
}

/// L6: no write-plane guard — a `Shared.write_plane` lock guard or the
/// closure body of a `Shared::mutate(..)` call — may cover storage I/O,
/// replication, signing, or a channel send. Publication of the read-plane
/// snapshot is serialized by this guard; I/O under it stalls every writer.
pub fn lint_write_plane_across_io(file: &Path, lines: &[MaskedLine]) -> Vec<Diagnostic> {
    lint_guard_regions(
        file,
        lines,
        Lint::WritePlaneAcrossIo,
        &[".write_plane.lock()"],
        &[".mutate("],
        &[".store.", ".replicate_sync(", "::sign(", ".send("],
        &|name, op| {
            format!(
                "`{op}..` inside the write-plane region `{name}` stalls every writer \
                 and delays snapshot publication; do the I/O before or after the \
                 mutation (suppress with `// lint: allow(plane) — <reason>`)"
            )
        },
    )
}

/// Which lints run on a file.
#[derive(Clone, Copy, Debug, Default)]
pub struct LintSet {
    /// Run L1.
    pub panic: bool,
    /// Also flag non-literal indexing under L1.
    pub panic_indexing: bool,
    /// Run L2.
    pub arith: bool,
    /// Run L3.
    pub ct: bool,
    /// Run L5.
    pub lock: bool,
    /// Run L6.
    pub plane: bool,
}

/// Lints one file's source text with the given lint set, returning every
/// finding — including suppressed ones, with `suppressed_by` set.
pub fn lint_source_all(file: &Path, text: &str, set: LintSet) -> Vec<Diagnostic> {
    let lines = mask_source(text);
    let mut diags = Vec::new();
    if set.panic {
        diags.extend(lint_panic(file, &lines, set.panic_indexing));
    }
    if set.arith {
        diags.extend(lint_arith(file, &lines));
    }
    if set.ct {
        diags.extend(lint_ct(file, &lines));
    }
    if set.lock {
        diags.extend(lint_lock_across_send(file, &lines));
    }
    if set.plane {
        diags.extend(lint_write_plane_across_io(file, &lines));
    }
    diags
}

/// Lints one file's source text with the given lint set (suppressed
/// findings filtered out).
pub fn lint_source(file: &Path, text: &str, set: LintSet) -> Vec<Diagnostic> {
    lint_source_all(file, text, set)
        .into_iter()
        .filter(|d| d.suppressed_by.is_none())
        .collect()
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Crates whose library code must be panic-free (L1). `pool` is included
/// so no panic path can escape a pool worker unawares: the pool re-raises
/// or converts worker panics, and its own plumbing must not add new ones.
/// `net` is included because a hostile peer controls every byte its
/// decoders and connection workers see: a reachable panic there is a
/// remote crash of the node process. `sim`, `bench`, `baselines`, and
/// `contracts` are harness/reference code, but a panic there still aborts
/// an experiment mid-run — their escapes go through the reasoned allow
/// hatch. `cluster` is included because the router and epoch coordinator
/// sit on the serving path of every shard at once: a panic there takes
/// down the whole cluster's front door, not one node. `check` is
/// excluded: a model checker *reports* bugs by panicking the failing
/// schedule.
const PANIC_FREE_CRATES: &[&str] = &[
    "crypto",
    "core",
    "chain",
    "storage",
    "merkle",
    "pool",
    "net",
    "sim",
    "bench",
    "baselines",
    "contracts",
    "cluster",
];

/// Directories whose files feed the L7–L9 concurrency-graph analyses.
const CONCURRENCY_CORPUS: &[&str] = &[
    "crates/core/src/node",
    "crates/net/src",
    "crates/cluster/src",
];

/// Everything one pass over the workspace produces: the full diagnostic
/// list (suppressed findings included) and every scanned file, for the
/// allow audit.
pub struct WorkspaceScan {
    /// All findings, suppressed ones carrying their marker line.
    pub diags: Vec<Diagnostic>,
    /// Every `(workspace-relative path, source text)` the pass read.
    pub files: Vec<(PathBuf, String)>,
}

/// Runs every rule over a workspace rooted at `root`, keeping suppressed
/// findings (tagged with their marker) and the scanned file list.
pub fn scan_workspace(root: &Path) -> io::Result<WorkspaceScan> {
    let mut diags = Vec::new();
    let mut scanned: Vec<(PathBuf, String)> = Vec::new();

    for crate_name in PANIC_FREE_CRATES {
        let src = root.join("crates").join(crate_name).join("src");
        let mut files = Vec::new();
        walk_rs_files(&src, &mut files)?;
        for file in files {
            let text = fs::read_to_string(&file)?;
            let in_node = file.starts_with(root.join("crates/core/src/node"));
            // The rebuilt Keccak hot paths (`hash/keccak.rs`, `hash/keccak4.rs`)
            // are held to the indexing rule too: the unrolled permutations use
            // only literal lane indices, so any computed index slipping in is a
            // bug. The frozen `hash/reference.rs` baseline is deliberately
            // excluded — it must stay byte-identical to the pre-rework text.
            let keccak_hot_path = *crate_name == "crypto"
                && file.parent().is_some_and(|p| p.ends_with("hash"))
                && file
                    .file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| f.starts_with("keccak"));
            let set = LintSet {
                panic: true,
                panic_indexing: matches!(*crate_name, "storage" | "chain") || keccak_hot_path,
                arith: *crate_name == "chain",
                ct: *crate_name == "crypto",
                lock: in_node,
                plane: in_node,
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            diags.extend(lint_source_all(&rel, &text, set));
            scanned.push((rel, text));
        }
    }

    // L7–L9 over the concurrency corpus.
    let mut corpus = Vec::new();
    for dir in CONCURRENCY_CORPUS {
        let mut files = Vec::new();
        walk_rs_files(&root.join(dir), &mut files)?;
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            corpus.push(graph::SourceFile::parse(rel, text.as_str()));
        }
    }
    diags.extend(graph::lint_concurrency(&corpus));

    // L4 on every workspace crate root (vendored stand-ins included via
    // their own headers; they are not walked here).
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    let crates_dir = root.join("crates");
    if crates_dir.exists() {
        for entry in fs::read_dir(&crates_dir)? {
            let lib = entry?.path().join("src/lib.rs");
            if lib.exists() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    for file in roots {
        let text = fs::read_to_string(&file)?;
        let lines = mask_source(&text);
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        diags.extend(lint_forbid_unsafe(&rel, &lines));
        if !scanned.iter().any(|(p, _)| *p == rel) {
            scanned.push((rel, text));
        }
    }

    Ok(WorkspaceScan {
        diags,
        files: scanned,
    })
}

/// Runs the whole pass over a workspace rooted at `root`, returning only
/// unsuppressed findings.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(scan_workspace(root)?
        .diags
        .into_iter()
        .filter(|d| d.suppressed_by.is_none())
        .collect())
}

/// One `lint: allow(...)` / `lint: allow-file(...)` marker found in the
/// workspace, with its audit verdict.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    /// File the marker is in (workspace-relative).
    pub file: PathBuf,
    /// 1-based line of the marker.
    pub line: usize,
    /// True for the file-wide `allow-file` form.
    pub file_level: bool,
    /// The rule name inside the parentheses.
    pub name: String,
    /// The reason text after the marker (may be empty — which is itself a
    /// defect: reason-less markers never suppress anything).
    pub reason: String,
    /// True when at least one finding is currently suppressed by this
    /// marker. A marker that suppresses nothing is stale and must go.
    pub used: bool,
    /// True when the name matches a rule with a working escape hatch.
    pub known: bool,
}

impl AllowMarker {
    /// Stale markers fail the audit: unknown rule, missing reason, or no
    /// finding left to suppress.
    pub fn stale(&self) -> bool {
        !self.used
    }
}

/// Extracts every allow marker from one comment line.
fn markers_in_comment(comment: &str) -> Vec<(bool, String, String)> {
    let mut out = Vec::new();
    for (needle, file_level) in [("lint: allow-file(", true), ("lint: allow(", false)] {
        let mut from = 0;
        while let Some(pos) = comment[from..].find(needle) {
            let start = from + pos + needle.len();
            let Some(close) = comment[start..].find(')') else {
                break;
            };
            let name = comment[start..start + close].trim().to_string();
            let reason = comment[start + close + 1..]
                .trim_start_matches([' ', '—', '-', ':'])
                .trim()
                .to_string();
            out.push((file_level, name, reason));
            from = start + close + 1;
        }
    }
    out
}

/// Audits every allow marker in the workspace: lists each with its rule
/// and reason, and checks that each still suppresses at least one finding
/// (markers whose target stopped triggering are stale — the escape hatch
/// must not rot).
pub fn audit_allows(root: &Path) -> io::Result<Vec<AllowMarker>> {
    let scan = scan_workspace(root)?;
    let known_names: Vec<&str> = Lint::all_allowable()
        .iter()
        .map(|l| l.allow_name())
        .collect();
    let mut markers = Vec::new();
    for (rel, text) in &scan.files {
        let lines = mask_source(text);
        for (idx, line) in lines.iter().enumerate() {
            for (file_level, name, reason) in markers_in_comment(&line.comment) {
                // Placeholders in prose — "allow(<name>)", "allow(...)" —
                // are documentation, not markers: a real allow name is a
                // plain identifier.
                if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    continue;
                }
                let known = known_names.contains(&name.as_str());
                let used = known
                    && !reason.is_empty()
                    && scan.diags.iter().any(|d| {
                        d.file == *rel
                            && d.suppressed_by == Some(idx + 1)
                            && d.lint.allow_name() == name
                    });
                markers.push(AllowMarker {
                    file: rel.clone(),
                    line: idx + 1,
                    file_level,
                    name,
                    reason,
                    used,
                    known,
                });
            }
        }
    }
    markers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(markers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(text: &str, set: LintSet) -> Vec<Diagnostic> {
        lint_source(Path::new("test.rs"), text, set)
    }

    const PANIC_ONLY: LintSet = LintSet {
        panic: true,
        panic_indexing: false,
        arith: false,
        ct: false,
        lock: false,
        plane: false,
    };

    #[test]
    fn masks_strings_and_comments() {
        let lines = mask_source("let x = \"panic!\"; // .unwrap()\nlet y = 1;");
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains(".unwrap()"));
    }

    #[test]
    fn flags_unwrap_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); }\n}\n";
        let diags = lint_str(src, PANIC_ONLY);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "fn f() {\n    // lint: allow(panic) — startup only\n    x.unwrap();\n}\n";
        assert!(lint_str(src, PANIC_ONLY).is_empty());
        let no_reason = "fn f() {\n    // lint: allow(panic)\n    x.unwrap();\n}\n";
        assert_eq!(lint_str(no_reason, PANIC_ONLY).len(), 1);
        // A wrapped comment with the marker on its first line suppresses.
        let wrapped = "fn f() {\n    // lint: allow(panic) — startup only;\n    // continues here\n    x.unwrap();\n}\n";
        assert!(lint_str(wrapped, PANIC_ONLY).is_empty());
        // A blank line between the comment block and the code breaks it.
        let detached = "fn f() {\n    // lint: allow(panic) — reason\n\n    x.unwrap();\n}\n";
        assert_eq!(lint_str(detached, PANIC_ONLY).len(), 1);
    }

    #[test]
    fn indexing_rules() {
        let set = LintSet {
            panic: true,
            panic_indexing: true,
            ..Default::default()
        };
        assert_eq!(lint_str("fn f() { let x = buf[i]; }", set).len(), 1);
        assert!(lint_str("fn f() { let x = buf[0]; }", set).is_empty());
        assert!(lint_str("fn f() { let x: [u8; 32] = [0u8; 32]; }", set).is_empty());
        assert!(lint_str("#[derive(Debug)]\nstruct S;", set).is_empty());
        assert!(lint_str("fn f() { let v = vec![0u8; n]; }", set).is_empty());
        // Keywords before a bracket start a type or array literal.
        assert!(lint_str("fn f(buf: &mut [u8]) {}", set).is_empty());
        assert!(lint_str("fn f() -> [u8; 2] { return [a, b]; }", set).is_empty());
        assert!(lint_str("fn f(x: &dyn Fn(&mut [u8])) {}", set).is_empty());
        // Slice patterns are patterns, not indexing (the ×4 Keccak batch
        // paths destructure quads this way).
        assert!(lint_str("fn f() { let [a, b, c, d] = quad; }", set).is_empty());
        assert!(lint_str("fn f() { if let [a, b] = *pair { g(a, b); } }", set).is_empty());
        // ...but `let x = buf[i]` is still indexing: `buf`, not `let`,
        // precedes the bracket.
        assert_eq!(lint_str("fn f() { let x = table[idx]; }", set).len(), 1);
    }

    #[test]
    fn arith_rules() {
        let set = LintSet {
            arith: true,
            ..Default::default()
        };
        assert_eq!(lint_str("fn f() { balance += fee; }", set).len(), 1);
        assert_eq!(
            lint_str("fn f() { let x = gas_used * price; }", set).len(),
            1
        );
        assert!(lint_str("fn f() { let x = gas.checked_mul(price); }", set).is_empty());
        // Non-money arithmetic is out of scope.
        assert!(lint_str("fn f() { let x = a + b; }", set).is_empty());
        // Unary minus and -> are not arithmetic.
        assert!(lint_str("fn fee(x: i64) -> i64 { -x }", set).is_empty());
    }

    #[test]
    fn ct_rules() {
        let set = LintSet {
            ct: true,
            ..Default::default()
        };
        assert_eq!(lint_str("fn f() { if tag == expected { } }", set).len(), 1);
        assert!(lint_str("fn f() { if ct_eq(&tag, &expected) { } }", set).is_empty());
        assert_eq!(
            lint_str(
                "#[derive(Clone, PartialEq)]\npub struct SecretKey(u8);",
                set
            )
            .len(),
            1
        );
        assert!(lint_str("fn f() { if count == 3 { } }", set).is_empty());
        // Signing-wall material: nonce and wNAF-stream comparisons are
        // secret-dependent too.
        assert_eq!(lint_str("fn f() { if nonce == other { } }", set).len(), 1);
        assert_eq!(
            lint_str("fn f() { if wnaf_digit != expected { } }", set).len(),
            1
        );
        assert!(lint_str("fn f() { if ct_eq(&nonce_bytes, &other) { } }", set).is_empty());
    }

    #[test]
    fn lock_rules() {
        let set = LintSet {
            lock: true,
            ..Default::default()
        };
        let bad = "fn f() {\n    let st = shared.stats.lock();\n    tx.send(1);\n}\n";
        assert_eq!(lint_str(bad, set).len(), 1);
        let dropped =
            "fn f() {\n    let st = shared.stats.lock();\n    drop(st);\n    tx.send(1);\n}\n";
        assert!(lint_str(dropped, set).is_empty());
        let scoped =
            "fn f() {\n    {\n        let st = shared.stats.lock();\n    }\n    tx.send(1);\n}\n";
        assert!(lint_str(scoped, set).is_empty());
        let temp = "fn f() {\n    shared.stats.lock().x += 1;\n    tx.send(1);\n}\n";
        assert!(lint_str(temp, set).is_empty());
    }

    #[test]
    fn plane_rules_guard_bindings() {
        let set = LintSet {
            plane: true,
            ..Default::default()
        };
        let bad = "fn f() {\n    let plane = shared.write_plane.lock();\n    \
                   shared.store.append(x);\n}\n";
        let diags = lint_str(bad, set);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint.code(), "L6");
        let dropped = "fn f() {\n    let plane = shared.write_plane.lock();\n    \
                       drop(plane);\n    shared.store.append(x);\n}\n";
        assert!(lint_str(dropped, set).is_empty());
        let temp = "fn f() {\n    let n = shared.write_plane.lock().batches.len();\n    \
                    shared.store.append(x);\n}\n";
        assert!(lint_str(temp, set).is_empty());
        for op in ["r.replicate_sync(x);", "Resp::sign(k);", "tx.send(1);"] {
            let src =
                format!("fn f() {{\n    let plane = shared.write_plane.lock();\n    {op}\n}}\n");
            assert_eq!(lint_str(&src, set).len(), 1, "op `{op}` must be flagged");
        }
    }

    #[test]
    fn plane_rules_mutate_regions() {
        let set = LintSet {
            plane: true,
            ..Default::default()
        };
        // Multi-line mutate closure doing storage I/O.
        let bad = "fn f() {\n    shared.mutate(|plane| {\n        \
                   shared.store.truncate(n);\n    });\n}\n";
        assert_eq!(lint_str(bad, set).len(), 1);
        // I/O after the closure has closed is fine.
        let after = "fn f() {\n    shared.mutate(|plane| {\n        plane.push(x);\n    });\n    \
                     shared.store.truncate(n);\n}\n";
        assert!(lint_str(after, set).is_empty());
        // Single-line mutate calls are checked inline.
        let inline_bad = "fn f() { shared.mutate(|plane| plane.set(shared.store.len())); }\n";
        assert_eq!(lint_str(inline_bad, set).len(), 1);
        let inline_ok = "fn f() { shared.mutate(|plane| plane.bump()); }\n";
        assert!(lint_str(inline_ok, set).is_empty());
        // The allow comment suppresses with a reason.
        let allowed = "fn f() {\n    shared.mutate(|plane| {\n        \
                       // lint: allow(plane) — test fixture\n        \
                       shared.store.truncate(n);\n    });\n}\n";
        assert!(lint_str(allowed, set).is_empty());
    }

    #[test]
    fn forbid_unsafe_rule() {
        let lines = mask_source("//! doc\n#![forbid(unsafe_code)]\n");
        assert!(lint_forbid_unsafe(Path::new("lib.rs"), &lines).is_empty());
        let lines = mask_source("//! doc\npub fn f() {}\n");
        assert_eq!(lint_forbid_unsafe(Path::new("lib.rs"), &lines).len(), 1);
    }
}
