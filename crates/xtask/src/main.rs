//! CLI entry point: `cargo run -p xtask -- lint [--root <path>]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next();
    let mut root = workspace_root();
    let mut rest: Vec<String> = args.collect();
    if let Some(pos) = rest.iter().position(|a| a == "--root") {
        if pos + 1 < rest.len() {
            root = PathBuf::from(rest.remove(pos + 1));
            rest.remove(pos);
        } else {
            eprintln!("--root requires a path");
            return ExitCode::FAILURE;
        }
    }

    match command.as_deref() {
        Some("lint") => {
            let diags = match xtask::lint_workspace(&root) {
                Ok(diags) => diags,
                Err(err) => {
                    eprintln!(
                        "error: failed to read sources under {}: {err}",
                        root.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            for diag in &diags {
                println!("{diag}");
            }
            if diags.is_empty() {
                println!("wedge-lint: clean (L1–L6)");
                ExitCode::SUCCESS
            } else {
                eprintln!("wedge-lint: {} violation(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--root <path>]");
            eprintln!();
            eprintln!("  lint    run the wedge-lint static-analysis pass (L1–L6)");
            ExitCode::FAILURE
        }
    }
}
