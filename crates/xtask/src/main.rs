//! CLI entry point: `cargo run -p xtask -- lint [--root <path>] [--allows]`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(root: &Path) -> ExitCode {
    let diags = match xtask::lint_workspace(root) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!(
                "error: failed to read sources under {}: {err}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    for diag in &diags {
        println!("{diag}");
    }
    if diags.is_empty() {
        println!("wedge-lint: clean (L1–L9)");
        ExitCode::SUCCESS
    } else {
        eprintln!("wedge-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn run_allows_audit(root: &Path) -> ExitCode {
    let markers = match xtask::audit_allows(root) {
        Ok(markers) => markers,
        Err(err) => {
            eprintln!(
                "error: failed to read sources under {}: {err}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let mut stale = 0usize;
    for m in &markers {
        let kind = if m.file_level { "allow-file" } else { "allow" };
        let verdict = if m.used {
            "used"
        } else {
            stale += 1;
            if !m.known {
                "STALE (unknown rule)"
            } else if m.reason.is_empty() {
                "STALE (missing reason)"
            } else {
                "STALE (suppresses nothing)"
            }
        };
        let reason = if m.reason.is_empty() {
            "<no reason>".to_string()
        } else {
            m.reason.clone()
        };
        println!(
            "{}:{}: {kind}({}) — {reason} [{verdict}]",
            m.file.display(),
            m.line,
            m.name,
        );
    }
    if stale == 0 {
        println!(
            "wedge-lint: {} allow marker(s), all still earning their keep",
            markers.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "wedge-lint: {} allow marker(s), {stale} stale — remove the marker or \
             restore the code it justified",
            markers.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next();
    let mut root = workspace_root();
    let mut rest: Vec<String> = args.collect();
    if let Some(pos) = rest.iter().position(|a| a == "--root") {
        if pos + 1 < rest.len() {
            root = PathBuf::from(rest.remove(pos + 1));
            rest.remove(pos);
        } else {
            eprintln!("--root requires a path");
            return ExitCode::FAILURE;
        }
    }
    let allows = if let Some(pos) = rest.iter().position(|a| a == "--allows") {
        rest.remove(pos);
        true
    } else {
        false
    };

    match command.as_deref() {
        Some("lint") if allows => run_allows_audit(&root),
        Some("lint") => run_lint(&root),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--root <path>] [--allows]");
            eprintln!();
            eprintln!("  lint           run the wedge-lint static-analysis pass (L1–L9)");
            eprintln!("  lint --allows  audit every allow marker; fail on stale ones");
            ExitCode::FAILURE
        }
    }
}
