//! End-to-end self-tests for the `xtask lint` binary.
//!
//! Each test materialises a miniature workspace in a temp directory, runs
//! the real binary against it with `--root`, and asserts on the exit status
//! and diagnostics. A final test runs the binary against this repository
//! itself and requires a clean pass.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Output;

/// Creates (or wipes) a per-test fixture directory under the system temp dir.
fn fixture_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wedge-lint-selftest-{}-{name}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, text).unwrap();
}

fn run_lint(root: &Path) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .unwrap()
}

const FORBID: &str = "#![forbid(unsafe_code)]\n";

/// Lays down a workspace skeleton where every linted crate root exists and
/// carries the L4 header; tests then overwrite individual files.
fn skeleton(root: &Path) {
    write(root, "src/lib.rs", FORBID);
    for krate in ["crypto", "core", "chain", "storage", "merkle"] {
        write(root, &format!("crates/{krate}/src/lib.rs"), FORBID);
    }
}

#[test]
fn seeded_violations_fail_with_diagnostics() {
    let root = fixture_dir("seeded");
    skeleton(&root);
    // L1 (unwrap) + L4 (missing forbid header) in the crypto crate root,
    // plus an L3 secret comparison.
    write(
        &root,
        "crates/crypto/src/lib.rs",
        "pub fn open(x: Option<u8>, secret: &[u8], other: &[u8]) -> u8 {\n\
         \x20   if secret == other {\n\
         \x20       return 0;\n\
         \x20   }\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    // L2: bare arithmetic on a balance line in the chain crate.
    write(
        &root,
        "crates/chain/src/fees.rs",
        "pub fn total(balance: u128, fee: u128) -> u128 {\n\
         \x20   balance + fee\n\
         }\n",
    );
    // L5: channel send while a Shared.stats guard is held, in the node dir.
    // L6: write-plane guard held across storage I/O, in the same file.
    write(
        &root,
        "crates/core/src/node/mod.rs",
        "fn requeue(shared: &Shared, tx: Sender<u64>) {\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   let _ = tx.send(stats.flushed_batches);\n\
         }\n\
         fn persist(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   shared.store.sync();\n\
         \x20   drop(plane);\n\
         }\n",
    );

    let out = run_lint(&root);
    assert!(!out.status.success(), "seeded workspace must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    for code in ["[L1]", "[L2]", "[L3]", "[L4]", "[L5]", "[L6]"] {
        assert!(
            stdout.contains(code),
            "missing {code} diagnostic in:\n{stdout}"
        );
    }
    assert!(
        stderr.contains("violation(s)"),
        "stderr summary missing:\n{stderr}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn clean_fixture_passes() {
    let root = fixture_dir("clean");
    skeleton(&root);
    // Same shapes as the seeded test, but written the way the lint demands:
    // checked arithmetic, ct_eq, no guard across send, allow() escape hatch.
    write(
        &root,
        "crates/crypto/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn open(x: Option<u8>, secret: &[u8], other: &[u8]) -> u8 {\n\
         \x20   if secret.ct_eq(other) {\n\
         \x20       return 0;\n\
         \x20   }\n\
         \x20   // lint: allow(panic) — fixture exercising the escape hatch\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    write(
        &root,
        "crates/chain/src/fees.rs",
        "pub fn total(balance: u128, fee: u128) -> u128 {\n\
         \x20   balance.saturating_add(fee)\n\
         }\n",
    );
    write(
        &root,
        "crates/core/src/node/mod.rs",
        "fn requeue(shared: &Shared, tx: Sender<u64>) {\n\
         \x20   let len = { shared.stats.lock().flushed_batches };\n\
         \x20   let _ = tx.send(len);\n\
         }\n\
         fn persist(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   drop(plane);\n\
         \x20   shared.store.sync();\n\
         \x20   shared.mutate(|plane| plane.entry_count += 1);\n\
         }\n",
    );

    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "clean fixture must pass, got:\n{stdout}"
    );
    assert!(
        stdout.contains("wedge-lint: clean"),
        "missing clean banner:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn missing_allow_reason_is_rejected() {
    let root = fixture_dir("noreason");
    skeleton(&root);
    // An allow marker with no reason after the dash must NOT suppress.
    write(
        &root,
        "crates/merkle/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn f(x: Option<u8>) -> u8 {\n\
         \x20   // lint: allow(panic)\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    let out = run_lint(&root);
    assert!(!out.status.success(), "reason-less allow must not suppress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("[L1]"),
        "expected the unwrap to be flagged:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn this_workspace_is_clean() {
    // crates/xtask/tests -> workspace root is two levels above the manifest.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap();
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the repository itself must pass wedge-lint:\n{stdout}"
    );
}
