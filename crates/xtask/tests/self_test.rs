//! End-to-end self-tests for the `xtask lint` binary.
//!
//! Each test materialises a miniature workspace in a temp directory, runs
//! the real binary against it with `--root`, and asserts on the exit status
//! and diagnostics. A final test runs the binary against this repository
//! itself and requires a clean pass.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Output;

/// Creates (or wipes) a per-test fixture directory under the system temp dir.
fn fixture_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wedge-lint-selftest-{}-{name}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, text).unwrap();
}

fn run_lint(root: &Path) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .unwrap()
}

fn run_allows(root: &Path) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--allows", "--root"])
        .arg(root)
        .output()
        .unwrap()
}

const FORBID: &str = "#![forbid(unsafe_code)]\n";

/// Lays down a workspace skeleton where every linted crate root exists and
/// carries the L4 header; tests then overwrite individual files.
fn skeleton(root: &Path) {
    write(root, "src/lib.rs", FORBID);
    for krate in ["crypto", "core", "chain", "storage", "merkle"] {
        write(root, &format!("crates/{krate}/src/lib.rs"), FORBID);
    }
}

#[test]
fn seeded_violations_fail_with_diagnostics() {
    let root = fixture_dir("seeded");
    skeleton(&root);
    // L1 (unwrap) + L4 (missing forbid header) in the crypto crate root,
    // plus an L3 secret comparison.
    write(
        &root,
        "crates/crypto/src/lib.rs",
        "pub fn open(x: Option<u8>, secret: &[u8], other: &[u8]) -> u8 {\n\
         \x20   if secret == other {\n\
         \x20       return 0;\n\
         \x20   }\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    // L2: bare arithmetic on a balance line in the chain crate.
    write(
        &root,
        "crates/chain/src/fees.rs",
        "pub fn total(balance: u128, fee: u128) -> u128 {\n\
         \x20   balance + fee\n\
         }\n",
    );
    // L5: channel send while a Shared.stats guard is held, in the node dir.
    // L6: write-plane guard held across storage I/O, in the same file.
    write(
        &root,
        "crates/core/src/node/mod.rs",
        "fn requeue(shared: &Shared, tx: Sender<u64>) {\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   let _ = tx.send(stats.flushed_batches);\n\
         }\n\
         fn persist(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   shared.store.sync();\n\
         \x20   drop(plane);\n\
         }\n",
    );

    // L7: two functions acquiring write_plane and stats in opposite orders.
    write(
        &root,
        "crates/core/src/node/order.rs",
        "fn publish(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   drop(stats);\n\
         \x20   drop(plane);\n\
         }\n\
         fn report(shared: &Shared) {\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   drop(plane);\n\
         \x20   drop(stats);\n\
         }\n",
    );
    // L8: the PR 5 slow-client shape — two spawned workers joined by a ring
    // of bounded channels where every send blocks.
    write(
        &root,
        "crates/net/src/ring.rs",
        "fn spawn_pair() {\n\
         \x20   let (req_tx, req_rx) = bounded::<u64>(4);\n\
         \x20   let (rsp_tx, rsp_rx) = bounded::<u64>(4);\n\
         \x20   std::thread::spawn(move || reader(req_rx, rsp_tx));\n\
         \x20   std::thread::spawn(move || writer(rsp_rx, req_tx));\n\
         }\n\
         fn reader(req_rx: Receiver<u64>, rsp_tx: Sender<u64>) {\n\
         \x20   while let Ok(v) = req_rx.recv() {\n\
         \x20       let _ = rsp_tx.send(v);\n\
         \x20   }\n\
         }\n\
         fn writer(rsp_rx: Receiver<u64>, req_tx: Sender<u64>) {\n\
         \x20   while let Ok(v) = rsp_rx.recv() {\n\
         \x20       let _ = req_tx.send(v);\n\
         \x20   }\n\
         }\n",
    );
    // L9: a durability call inside a coalescing-writer region.
    write(
        &root,
        "crates/net/src/wr.rs",
        "fn run_coalescing_writer(store: &Store) {\n\
         \x20   store.ensure_durable();\n\
         }\n",
    );

    let out = run_lint(&root);
    assert!(!out.status.success(), "seeded workspace must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    for code in [
        "[L1]", "[L2]", "[L3]", "[L4]", "[L5]", "[L6]", "[L7]", "[L8]", "[L9]",
    ] {
        assert!(
            stdout.contains(code),
            "missing {code} diagnostic in:\n{stdout}"
        );
    }
    assert!(
        stderr.contains("violation(s)"),
        "stderr summary missing:\n{stderr}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn clean_fixture_passes() {
    let root = fixture_dir("clean");
    skeleton(&root);
    // Same shapes as the seeded test, but written the way the lint demands:
    // checked arithmetic, ct_eq, no guard across send, allow() escape hatch.
    write(
        &root,
        "crates/crypto/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn open(x: Option<u8>, secret: &[u8], other: &[u8]) -> u8 {\n\
         \x20   if secret.ct_eq(other) {\n\
         \x20       return 0;\n\
         \x20   }\n\
         \x20   // lint: allow(panic) — fixture exercising the escape hatch\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    write(
        &root,
        "crates/chain/src/fees.rs",
        "pub fn total(balance: u128, fee: u128) -> u128 {\n\
         \x20   balance.saturating_add(fee)\n\
         }\n",
    );
    write(
        &root,
        "crates/core/src/node/mod.rs",
        "fn requeue(shared: &Shared, tx: Sender<u64>) {\n\
         \x20   let len = { shared.stats.lock().flushed_batches };\n\
         \x20   let _ = tx.send(len);\n\
         }\n\
         fn persist(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   drop(plane);\n\
         \x20   shared.store.sync();\n\
         \x20   shared.mutate(|plane| plane.entry_count += 1);\n\
         }\n",
    );

    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "clean fixture must pass, got:\n{stdout}"
    );
    assert!(
        stdout.contains("wedge-lint: clean"),
        "missing clean banner:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn missing_allow_reason_is_rejected() {
    let root = fixture_dir("noreason");
    skeleton(&root);
    // An allow marker with no reason after the dash must NOT suppress.
    write(
        &root,
        "crates/merkle/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn f(x: Option<u8>) -> u8 {\n\
         \x20   // lint: allow(panic)\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    let out = run_lint(&root);
    assert!(!out.status.success(), "reason-less allow must not suppress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("[L1]"),
        "expected the unwrap to be flagged:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn concurrency_clean_fixture_passes() {
    let root = fixture_dir("conc-clean");
    skeleton(&root);
    // The same three shapes as the seeded L7/L8/L9 fixtures, written the way
    // the lints demand: one global lock order, a shed edge breaking the
    // channel ring, and durability work kept off the writer thread.
    write(
        &root,
        "crates/core/src/node/order.rs",
        "fn publish(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   drop(stats);\n\
         \x20   drop(plane);\n\
         }\n\
         fn report(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   drop(stats);\n\
         \x20   drop(plane);\n\
         }\n",
    );
    write(
        &root,
        "crates/net/src/ring.rs",
        "fn spawn_pair() {\n\
         \x20   let (req_tx, req_rx) = bounded::<u64>(4);\n\
         \x20   let (rsp_tx, rsp_rx) = bounded::<u64>(4);\n\
         \x20   std::thread::spawn(move || reader(req_rx, rsp_tx));\n\
         \x20   std::thread::spawn(move || writer(rsp_rx, req_tx));\n\
         }\n\
         fn reader(req_rx: Receiver<u64>, rsp_tx: Sender<u64>) {\n\
         \x20   while let Ok(v) = req_rx.recv() {\n\
         \x20       let _ = rsp_tx.send(v);\n\
         \x20   }\n\
         }\n\
         fn writer(rsp_rx: Receiver<u64>, req_tx: Sender<u64>) {\n\
         \x20   while let Ok(v) = rsp_rx.recv() {\n\
         \x20       let _ = req_tx.try_send(v);\n\
         \x20   }\n\
         }\n",
    );
    write(
        &root,
        "crates/net/src/wr.rs",
        "fn run_coalescing_writer(tx: &Sender<u64>) {\n\
         \x20   let _ = tx.try_send(7);\n\
         }\n\
         fn persist_stage(store: &Store) {\n\
         \x20   store.ensure_durable();\n\
         }\n",
    );

    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "clean concurrency fixture must pass, got:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn seeded_lock_order_inversion_names_the_cycle() {
    let root = fixture_dir("l7-cycle");
    skeleton(&root);
    write(
        &root,
        "crates/core/src/node/order.rs",
        "fn publish(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   drop(stats);\n\
         \x20   drop(plane);\n\
         }\n\
         fn report(shared: &Shared) {\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   drop(plane);\n\
         \x20   drop(stats);\n\
         }\n",
    );
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success());
    assert!(
        stdout.contains("[L7]") && stdout.contains("lock-order cycle"),
        "expected a named lock-order cycle:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn raw_strings_do_not_trigger_lints() {
    let root = fixture_dir("rawstr");
    skeleton(&root);
    // A raw string full of needle text must be invisible to every rule,
    // including across embedded quotes and fake comment closers.
    write(
        &root,
        "crates/core/src/node/doc.rs",
        "pub fn doc() -> &'static str {\n\
         \x20   r#\"call .unwrap() or panic!(); secret == other; \"quoted\" */ text\n\
         spanning lines with stats.lock() and tx.send(x) inside\"#\n\
         }\n",
    );
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "raw-string contents must not be linted:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn nested_macro_bodies_are_still_linted() {
    let root = fixture_dir("macrobody");
    skeleton(&root);
    // A violation nested two brace levels deep inside a macro definition
    // must still be found — the token-tree pass descends into every group.
    write(
        &root,
        "crates/core/src/node/mac.rs",
        "macro_rules! bump {\n\
         \x20   ($shared:expr) => {{\n\
         \x20       let stats = $shared.stats.lock();\n\
         \x20       let plane = $shared.write_plane.lock();\n\
         \x20       drop(plane);\n\
         \x20       drop(stats);\n\
         \x20   }};\n\
         }\n\
         fn publish(shared: &Shared) {\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   drop(stats);\n\
         \x20   drop(plane);\n\
         }\n",
    );
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success() && stdout.contains("[L7]"),
        "inversion inside a macro body must be found:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn multi_line_method_chain_locks_are_tracked() {
    let root = fixture_dir("chainwrap");
    skeleton(&root);
    // The old line-oriented engine could not connect a lock call wrapped
    // across lines to its binding; the token-tree pass must.
    write(
        &root,
        "crates/core/src/node/wrap.rs",
        "fn publish(shared: &Shared) {\n\
         \x20   let plane = shared\n\
         \x20       .write_plane\n\
         \x20       .lock();\n\
         \x20   let stats = shared.stats.lock();\n\
         \x20   drop(stats);\n\
         \x20   drop(plane);\n\
         }\n\
         fn report(shared: &Shared) {\n\
         \x20   let stats = shared\n\
         \x20       .stats\n\
         \x20       .lock();\n\
         \x20   let plane = shared.write_plane.lock();\n\
         \x20   drop(plane);\n\
         \x20   drop(stats);\n\
         }\n",
    );
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success() && stdout.contains("[L7]"),
        "wrapped-chain locks must still form edges:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn allow_comment_inside_macro_body_suppresses() {
    let root = fixture_dir("macroallow");
    skeleton(&root);
    write(
        &root,
        "crates/merkle/src/mac.rs",
        "macro_rules! take {\n\
         \x20   ($x:expr) => {\n\
         \x20       // lint: allow(panic) — fixture: macro expands only over known-Some values\n\
         \x20       $x.unwrap()\n\
         \x20   };\n\
         }\n",
    );
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "allow marker inside a macro body must suppress:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn allows_audit_lists_markers_and_flags_stale() {
    let root = fixture_dir("allows");
    skeleton(&root);
    // One live marker, one marker whose violation has since been fixed, and
    // one file-level marker covering two sites.
    write(
        &root,
        "crates/merkle/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn live(x: Option<u8>) -> u8 {\n\
         \x20   // lint: allow(panic) — fixture: input validated by caller\n\
         \x20   x.unwrap()\n\
         }\n\
         pub fn fixed(x: Option<u8>) -> u8 {\n\
         \x20   // lint: allow(panic) — fixture: this marker no longer suppresses anything\n\
         \x20   x.unwrap_or(0)\n\
         }\n",
    );
    write(
        &root,
        "crates/storage/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         //! lint: allow-file(panic) — fixture: scratch tool, aborting is fine\n\
         pub fn a(x: Option<u8>) -> u8 {\n\
         \x20   x.unwrap()\n\
         }\n\
         pub fn b(x: Option<u8>) -> u8 {\n\
         \x20   x.expect(\"b\")\n\
         }\n",
    );

    // The lint itself passes: every violation is suppressed.
    let lint = run_lint(&root);
    assert!(
        lint.status.success(),
        "suppressed fixture must lint clean:\n{}",
        String::from_utf8_lossy(&lint.stdout)
    );

    // The audit fails: the marker in `fixed` suppresses nothing.
    let out = run_allows(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "stale marker must fail the audit");
    assert!(
        stdout.contains("STALE (suppresses nothing)"),
        "stale marker must be called out:\n{stdout}"
    );
    assert!(
        stdout.contains("allow-file(panic)") && stdout.contains("[used]"),
        "file-level marker must be listed as used:\n{stdout}"
    );
    assert!(
        stdout.contains("input validated by caller"),
        "reasons must be listed:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn allows_audit_rejects_unknown_rule_names() {
    let root = fixture_dir("allows-unknown");
    skeleton(&root);
    write(
        &root,
        "crates/storage/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn f() {\n\
         \x20   // lint: allow(panics) — typo'd rule name\n\
         \x20   let _ = 1;\n\
         }\n",
    );
    let out = run_allows(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "unknown rule name must fail");
    assert!(
        stdout.contains("STALE (unknown rule)"),
        "unknown rule must be called out:\n{stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn this_workspace_allows_are_all_used() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap();
    let out = run_allows(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "every allow marker in the repository must still suppress something:\n{stdout}"
    );
}

#[test]
fn this_workspace_is_clean() {
    // crates/xtask/tests -> workspace root is two levels above the manifest.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap();
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the repository itself must pass wedge-lint:\n{stdout}"
    );
}
