//! Batch replication to follower stores.
//!
//! The paper's Figure 3/5 "replicated" curves forward each received batch to
//! two other machines before (or while) building the Merkle tree, for a
//! stronger liveness guarantee (§4.7). Here each replica is a thread owning
//! its own [`LogStore`]; the primary fans batches out over channels and can
//! either wait for acknowledgements (synchronous replication) or continue
//! immediately.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::error::StorageError;
use crate::store::{LogStore, StoreConfig};

/// A batch shipped to replicas: shared, immutable payloads.
pub type Batch = Arc<Vec<Vec<u8>>>;

/// In-flight replication started by [`Replicator::replicate_begin`].
///
/// The sends have already been handed to every replica; [`wait`] collects
/// the acknowledgements. Dropping the handle abandons the wait without
/// cancelling the sends (the replicas still apply the batch).
///
/// [`wait`]: ReplicationHandle::wait
#[must_use = "dropping the handle abandons the acknowledgements"]
pub struct ReplicationHandle {
    acks: Vec<Receiver<Result<(), String>>>,
}

impl ReplicationHandle {
    /// Blocks until every replica has acknowledged (or hung up); returns
    /// the number that confirmed the write.
    pub fn wait(self) -> usize {
        self.acks
            .into_iter()
            .filter(|rx| matches!(rx.recv(), Ok(Ok(()))))
            .count()
    }

    /// Replicas the batch was handed to (upper bound on [`wait`]'s result).
    ///
    /// [`wait`]: ReplicationHandle::wait
    pub fn expected(&self) -> usize {
        self.acks.len()
    }
}

enum Command {
    Replicate {
        batch: Batch,
        ack: Sender<Result<(), String>>,
    },
    Shutdown,
}

/// Handle to one replica thread.
struct Replica {
    commands: Sender<Command>,
    handle: Option<JoinHandle<()>>,
}

/// Fans append batches out to `n` follower stores.
pub struct Replicator {
    replicas: Vec<Replica>,
    /// Simulated per-batch link delay applied by each replica before
    /// acknowledging (models the network the paper's prototype crossed).
    link_delay: Duration,
}

impl Replicator {
    /// Spawns `n` replica threads, each with a store under
    /// `base_dir/replica-<i>`.
    pub fn spawn(
        base_dir: impl Into<PathBuf>,
        n: usize,
        config: StoreConfig,
        link_delay: Duration,
    ) -> Result<Replicator, StorageError> {
        let base_dir = base_dir.into();
        let mut replicas = Vec::with_capacity(n);
        for i in 0..n {
            let dir = base_dir.join(format!("replica-{i}"));
            let store = LogStore::open(&dir, config.clone())?;
            let (tx, rx): (Sender<Command>, Receiver<Command>) = bounded(16);
            let handle = std::thread::Builder::new()
                .name(format!("wedge-replica-{i}"))
                .spawn(move || {
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            Command::Replicate { batch, ack } => {
                                if !link_delay.is_zero() {
                                    std::thread::sleep(link_delay);
                                }
                                let result = store
                                    .append_batch(&batch[..])
                                    .map(|_| ())
                                    .map_err(|e| e.to_string());
                                let _ = ack.send(result);
                            }
                            Command::Shutdown => break,
                        }
                    }
                })?;
            replicas.push(Replica {
                commands: tx,
                handle: Some(handle),
            });
        }
        Ok(Replicator {
            replicas,
            link_delay,
        })
    }

    /// Ships a batch to every replica and returns immediately with a
    /// [`ReplicationHandle`] for collecting the acknowledgements later.
    ///
    /// This is the overlap primitive: the caller can run its local
    /// `append_batch` + fsync while the replicas work, then `wait`, paying
    /// max(local, replication) instead of the sum.
    pub fn replicate_begin(&self, batch: Batch) -> ReplicationHandle {
        let mut acks = Vec::with_capacity(self.replicas.len());
        for replica in &self.replicas {
            let (ack_tx, ack_rx) = bounded(1);
            if replica
                .commands
                .send(Command::Replicate {
                    batch: batch.clone(),
                    ack: ack_tx,
                })
                .is_ok()
            {
                acks.push(ack_rx);
            }
        }
        ReplicationHandle { acks }
    }

    /// Ships a batch to every replica and waits for all acknowledgements.
    ///
    /// Returns the number of replicas that confirmed the write.
    pub fn replicate_sync(&self, batch: Vec<Vec<u8>>) -> usize {
        self.replicate_begin(Arc::new(batch)).wait()
    }

    /// Ships a batch without waiting for acknowledgements (lazy fan-out).
    pub fn replicate_async(&self, batch: Vec<Vec<u8>>) {
        let batch: Batch = Arc::new(batch);
        for replica in &self.replicas {
            let (ack_tx, _ack_rx) = bounded(1);
            let _ = replica.commands.send(Command::Replicate {
                batch: batch.clone(),
                ack: ack_tx,
            });
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Fault injection: stops replica `idx`'s thread (it stops acking).
    /// Subsequent `replicate_sync` calls report the shortfall.
    pub fn stop_replica(&self, idx: usize) {
        if let Some(replica) = self.replicas.get(idx) {
            let _ = replica.commands.send(Command::Shutdown);
        }
    }

    /// The configured link delay.
    pub fn link_delay(&self) -> Duration {
        self.link_delay
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        for replica in &self.replicas {
            let _ = replica.commands.send(Command::Shutdown);
        }
        for replica in &mut self.replicas {
            if let Some(handle) = replica.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wedge-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sync_replication_acks_all() {
        let dir = tempdir("sync");
        let repl = Replicator::spawn(&dir, 2, StoreConfig::default(), Duration::ZERO).unwrap();
        let acked = repl.replicate_sync(vec![b"r0".to_vec(), b"r1".to_vec()]);
        assert_eq!(acked, 2);
        drop(repl);
        // Each replica persisted the batch.
        for i in 0..2 {
            let store =
                LogStore::open(dir.join(format!("replica-{i}")), StoreConfig::default()).unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(store.read(1).unwrap(), b"r1");
        }
    }

    #[test]
    fn async_replication_eventually_lands() {
        let dir = tempdir("async");
        let repl = Replicator::spawn(&dir, 1, StoreConfig::default(), Duration::ZERO).unwrap();
        repl.replicate_async(vec![b"lazy".to_vec()]);
        drop(repl); // drop joins threads, draining the queue
        let store = LogStore::open(dir.join("replica-0"), StoreConfig::default()).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn begin_then_wait_overlaps_with_local_work() {
        let dir = tempdir("begin");
        let repl =
            Replicator::spawn(&dir, 2, StoreConfig::default(), Duration::from_millis(5)).unwrap();
        let batch: Batch = Arc::new(vec![b"o0".to_vec(), b"o1".to_vec()]);
        let handle = repl.replicate_begin(batch);
        assert_eq!(handle.expected(), 2);
        // "Local work" happens here while the replicas apply the batch.
        let marker = std::time::Instant::now();
        assert_eq!(handle.wait(), 2);
        // wait() blocked at most ~link_delay + append, not per-replica sums.
        assert!(marker.elapsed() < Duration::from_secs(2));
        drop(repl);
        for i in 0..2 {
            let store =
                LogStore::open(dir.join(format!("replica-{i}")), StoreConfig::default()).unwrap();
            assert_eq!(store.len(), 2);
        }
    }

    #[test]
    fn zero_replicas_is_noop() {
        let repl =
            Replicator::spawn(tempdir("zero"), 0, StoreConfig::default(), Duration::ZERO).unwrap();
        assert_eq!(repl.replicate_sync(vec![b"x".to_vec()]), 0);
        assert_eq!(repl.replica_count(), 0);
    }

    #[test]
    fn multiple_batches_ordered() {
        let dir = tempdir("order");
        let repl = Replicator::spawn(&dir, 1, StoreConfig::default(), Duration::ZERO).unwrap();
        for b in 0..5u32 {
            let batch = (0..3).map(|i| format!("b{b}-{i}").into_bytes()).collect();
            assert_eq!(repl.replicate_sync(batch), 1);
        }
        drop(repl);
        let store = LogStore::open(dir.join("replica-0"), StoreConfig::default()).unwrap();
        assert_eq!(store.len(), 15);
        assert_eq!(store.read(7).unwrap(), b"b2-1");
    }
}
