//! Segment files: the on-disk unit of the append-only log.
//!
//! Record wire format (all integers big-endian):
//!
//! ```text
//! +--------+--------+----------+-------------+
//! | magic  | length | crc32    | payload     |
//! | 2 B    | 4 B    | 4 B      | length B    |
//! +--------+--------+----------+-------------+
//! ```
//!
//! The CRC covers the payload only; the magic pins record boundaries so a
//! scan can distinguish a torn tail from mid-file corruption.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::error::StorageError;

/// Record header magic ("WB").
pub const MAGIC: u16 = 0x5742;
/// Bytes of framing per record.
pub const HEADER_LEN: usize = 2 + 4 + 4;

/// Identifies a segment file within a store directory.
pub type SegmentId = u32;

/// Builds the file path for segment `id` under `dir`.
pub fn segment_path(dir: &Path, id: SegmentId) -> PathBuf {
    dir.join(format!("seg-{id:010}.wlog"))
}

/// An open segment being appended to.
pub struct SegmentWriter {
    id: SegmentId,
    file: BufWriter<File>,
    /// Bytes written (including framing).
    len: u64,
    /// True while appended bytes may still sit in the `BufWriter` — cleared
    /// by [`SegmentWriter::flush`]/[`SegmentWriter::sync`]. Lets readers of
    /// the active segment skip redundant flushes.
    dirty: bool,
}

impl SegmentWriter {
    /// Creates (or truncates) segment `id` in `dir`.
    pub fn create(dir: &Path, id: SegmentId) -> Result<SegmentWriter, StorageError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(segment_path(dir, id))?;
        Ok(SegmentWriter {
            id,
            file: BufWriter::new(file),
            len: 0,
            dirty: false,
        })
    }

    /// Opens an existing segment for appending at `offset` (recovery path).
    pub fn open_at(dir: &Path, id: SegmentId, offset: u64) -> Result<SegmentWriter, StorageError> {
        let file = OpenOptions::new().write(true).open(segment_path(dir, id))?;
        // Drop any torn tail beyond the recovered offset.
        file.set_len(offset)?;
        let mut file = file;
        file.seek(SeekFrom::Start(offset))?;
        Ok(SegmentWriter {
            id,
            file: BufWriter::new(file),
            len: offset,
            dirty: false,
        })
    }

    /// Appends one framed record; returns its starting offset.
    ///
    /// The header is assembled on the stack so the record goes down in two
    /// `write_all` calls (header, payload) instead of four — fewer syscalls
    /// whenever the `BufWriter` is bypassed or spills mid-record. The
    /// on-disk format is unchanged (see the byte-level regression test).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StorageError> {
        let offset = self.len;
        let magic = MAGIC.to_be_bytes();
        let len = (payload.len() as u32).to_be_bytes();
        let crc = crc32(payload).to_be_bytes();
        let header: [u8; HEADER_LEN] = [
            magic[0], magic[1], len[0], len[1], len[2], len[3], crc[0], crc[1], crc[2], crc[3],
        ];
        self.file.write_all(&header)?;
        self.file.write_all(payload)?;
        self.len += (HEADER_LEN + payload.len()) as u64;
        self.dirty = true;
        Ok(offset)
    }

    /// Flushes buffered writes to the OS.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        self.file.flush()?;
        self.dirty = false;
        Ok(())
    }

    /// Flushes and fsyncs to stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.dirty = false;
        Ok(())
    }

    /// True while appended bytes may still sit in the writer's buffer.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Segment id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// Current length in bytes (including framing).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Positional read that never moves a shared cursor, so one cached handle
/// can serve concurrent readers.
#[cfg(unix)]
pub(crate) fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
pub(crate) fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    // Fallback: clone the handle so the shared reader's cursor is untouched.
    let mut clone = file.try_clone()?;
    clone.seek(SeekFrom::Start(offset))?;
    clone.read_exact(buf)
}

/// Reads one record at a known offset in a segment.
pub fn read_record_at(dir: &Path, id: SegmentId, offset: u64) -> Result<Vec<u8>, StorageError> {
    let file = File::open(segment_path(dir, id))?;
    read_record_from(&file, offset)
}

/// Reads one record at a known offset through an already-open handle
/// (positional reads; the handle's cursor is untouched). This is what lets
/// `read_range`/`iter` reuse one handle per segment instead of re-opening
/// the file per record.
pub fn read_record_from(file: &File, offset: u64) -> Result<Vec<u8>, StorageError> {
    let mut header = [0u8; HEADER_LEN];
    pread_exact(file, &mut header, offset)?;
    let magic = u16::from_be_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(StorageError::CorruptRecord {
            id: offset,
            what: "bad magic",
        });
    }
    let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]) as usize;
    let expected_crc = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
    let mut payload = vec![0u8; len];
    pread_exact(file, &mut payload, offset + HEADER_LEN as u64)?;
    if crc32(&payload) != expected_crc {
        return Err(StorageError::CorruptRecord {
            id: offset,
            what: "checksum mismatch",
        });
    }
    Ok(payload)
}

/// How a segment scan terminated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TailState {
    /// The scan consumed the file exactly: every byte belongs to an intact
    /// record.
    Clean,
    /// The file ends mid-record (partial header, or a payload running past
    /// EOF). This is the signature of an interrupted write and is safe to
    /// truncate away at recovery.
    Torn,
    /// Bytes that are present but wrong: a full header with bad magic, or a
    /// complete payload whose CRC does not match. This is corruption, not a
    /// crash artifact, and must not be silently dropped.
    Corrupt {
        /// Byte offset of the damaged record.
        offset: u64,
        /// Human-readable cause.
        what: &'static str,
    },
}

/// The outcome of scanning a segment during recovery.
pub struct SegmentScan {
    /// `(offset, payload_len)` of every intact record, in order.
    pub records: Vec<(u64, u32)>,
    /// Offset of the first byte after the last intact record — the safe
    /// truncation/append point.
    pub valid_len: u64,
    /// Why the scan stopped (or that it cleanly consumed the file).
    pub tail: TailState,
}

impl SegmentScan {
    /// True if trailing bytes after `valid_len` were found, whatever their
    /// cause.
    pub fn has_trailing_bytes(&self) -> bool {
        self.tail != TailState::Clean
    }
}

/// Scans a segment from the start, stopping at the first torn/corrupt
/// record. Everything before the stop point is intact; [`SegmentScan::tail`]
/// distinguishes a torn write from genuine corruption.
pub fn scan_segment(dir: &Path, id: SegmentId) -> Result<SegmentScan, StorageError> {
    let mut file = File::open(segment_path(dir, id))?;
    let file_len = file.metadata()?.len();
    let mut records = Vec::new();
    let mut offset = 0u64;
    let tail = loop {
        if offset == file_len {
            break TailState::Clean;
        }
        if offset + HEADER_LEN as u64 > file_len {
            break TailState::Torn; // partial header
        }
        let mut header = [0u8; HEADER_LEN];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut header)?;
        let magic = u16::from_be_bytes([header[0], header[1]]);
        if magic != MAGIC {
            break TailState::Corrupt {
                offset,
                what: "bad magic",
            };
        }
        let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]);
        let expected_crc = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
        let end = offset + HEADER_LEN as u64 + len as u64;
        if end > file_len {
            break TailState::Torn; // payload runs past EOF
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload)?;
        if crc32(&payload) != expected_crc {
            break TailState::Corrupt {
                offset,
                what: "checksum mismatch",
            };
        }
        records.push((offset, len));
        offset = end;
    };
    Ok(SegmentScan {
        records,
        valid_len: offset,
        tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wedge-seg-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_read_back() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        let o1 = w.append(b"first").unwrap();
        let o2 = w.append(b"second record").unwrap();
        w.flush().unwrap();
        assert_eq!(read_record_at(&dir, 0, o1).unwrap(), b"first");
        assert_eq!(read_record_at(&dir, 0, o2).unwrap(), b"second record");
    }

    #[test]
    fn on_disk_bytes_are_exactly_magic_len_crc_payload() {
        // Regression for the header-on-the-stack rewrite: the wire format
        // must stay byte-identical to the four-write_all original.
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        let payloads: [&[u8]; 3] = [b"", b"x", b"hello wedgeblock"];
        let mut expect: Vec<u8> = Vec::new();
        for p in payloads {
            w.append(p).unwrap();
            expect.extend_from_slice(&MAGIC.to_be_bytes());
            expect.extend_from_slice(&(p.len() as u32).to_be_bytes());
            expect.extend_from_slice(&crc32(p).to_be_bytes());
            expect.extend_from_slice(p);
        }
        w.flush().unwrap();
        let on_disk = std::fs::read(segment_path(&dir, 0)).unwrap();
        assert_eq!(on_disk, expect);
    }

    #[test]
    fn dirty_tracks_buffered_appends() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        assert!(!w.is_dirty());
        w.append(b"data").unwrap();
        assert!(w.is_dirty());
        w.flush().unwrap();
        assert!(!w.is_dirty());
        w.append(b"more").unwrap();
        assert!(w.is_dirty());
        w.sync().unwrap();
        assert!(!w.is_dirty());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        let o = w.append(b"").unwrap();
        w.flush().unwrap();
        assert_eq!(read_record_at(&dir, 0, o).unwrap(), b"");
    }

    #[test]
    fn scan_finds_all_records() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 3).unwrap();
        for i in 0..10u32 {
            w.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        w.flush().unwrap();
        let scan = scan_segment(&dir, 3).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.tail, TailState::Clean);
        assert_eq!(scan.valid_len, w.len());
    }

    #[test]
    fn scan_stops_at_torn_payload() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        w.append(b"intact-1").unwrap();
        w.append(b"intact-2").unwrap();
        w.append(b"this record will be torn").unwrap();
        w.flush().unwrap();
        let full = w.len();
        drop(w);
        // Chop 5 bytes off the final record's payload.
        let path = segment_path(&dir, 1);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 5).unwrap();
        let scan = scan_segment(&dir, 1).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.tail, TailState::Torn);
    }

    #[test]
    fn scan_stops_at_corrupt_crc() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 2).unwrap();
        let o0 = w.append(b"good").unwrap();
        let o1 = w.append(b"to be corrupted").unwrap();
        w.append(b"unreachable after corruption").unwrap();
        w.flush().unwrap();
        drop(w);
        // Flip one payload byte of the middle record.
        let path = segment_path(&dir, 2);
        let mut data = std::fs::read(&path).unwrap();
        let payload_start = (o1 as usize) + HEADER_LEN;
        data[payload_start] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let scan = scan_segment(&dir, 2).unwrap();
        assert_eq!(scan.records, vec![(o0, 4)]);
        assert_eq!(
            scan.tail,
            TailState::Corrupt {
                offset: o1,
                what: "checksum mismatch"
            }
        );
    }

    #[test]
    fn open_at_truncates_and_appends() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append(b"keep").unwrap();
        let torn_from = w.len();
        w.append(b"discard-me").unwrap();
        w.flush().unwrap();
        drop(w);
        let mut w = SegmentWriter::open_at(&dir, 0, torn_from).unwrap();
        let o = w.append(b"replacement").unwrap();
        w.sync().unwrap();
        assert_eq!(o, torn_from);
        assert_eq!(read_record_at(&dir, 0, o).unwrap(), b"replacement");
        let scan = scan_segment(&dir, 0).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.tail, TailState::Clean);
    }

    #[test]
    fn read_at_bad_offset_is_error() {
        let dir = tempdir();
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append(b"only").unwrap();
        w.flush().unwrap();
        // Offset 3 lands mid-record: magic check must fail (or read error).
        assert!(read_record_at(&dir, 0, 3).is_err());
    }
}
