//! Store-level sidecar files: the locator-index checkpoint and the GC
//! marker.
//!
//! Both are small, CRC'd, and written atomically (temp + rename + directory
//! fsync). Both are *hints*: a missing or stale sidecar never loses data —
//! the store falls back to scanning segments, exactly as it did before the
//! tiered design.
//!
//! `index.widx` snapshots the locators of the sealed-but-still-hot (`.wlog`,
//! non-tail) segments so [`crate::LogStore::open`] can skip their
//! record-by-record scan: an entry is trusted only when the segment file's
//! on-disk length matches the recorded `valid_len` byte-for-byte, otherwise
//! that segment is scanned as before. Cold segments carry their own locator
//! blocks and the tail is always scanned, so with a fresh sidecar the open
//! cost is O(tail).
//!
//! `gc.wmark` records the oldest live sequence number after a retention
//! pass. It is written *before* the retired cold files are unlinked, so a
//! crash between the two leaves segments that the next open recognises as
//! below the marker and deletes. It is also what tells an open on a
//! fully-retired prefix where sequence numbering resumes.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;

use crate::cold::sync_dir;
use crate::crc32::crc32;
use crate::error::StorageError;
use crate::segment::SegmentId;

const INDEX_MAGIC: u32 = 0x5749_4458; // "WIDX"
const MARKER_MAGIC: u32 = 0x5747_434D; // "WGCM"
const VERSION: u8 = 1;

/// Sidecar file name for the locator-index checkpoint.
pub const INDEX_SIDECAR: &str = "index.widx";
/// Sidecar file name for the GC marker.
pub const GC_MARKER: &str = "gc.wmark";

/// One hot (non-tail) segment's locators as recorded in `index.widx`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentHint {
    /// Segment id the hint describes.
    pub id: SegmentId,
    /// Sequence number of the segment's first record.
    pub first_seq: u64,
    /// Exact on-disk length the segment had when the hint was written; the
    /// hint is only trusted when the file still has this length.
    pub valid_len: u64,
    /// Record start offsets within the segment, ascending.
    pub offsets: Vec<u64>,
}

fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(name))?;
    sync_dir(dir)?;
    Ok(())
}

/// Writes the locator-index checkpoint for the given hot segments.
pub fn write_index_sidecar(dir: &Path, hints: &[SegmentHint]) -> Result<(), StorageError> {
    let mut body = Vec::new();
    body.extend_from_slice(&INDEX_MAGIC.to_be_bytes());
    body.push(VERSION);
    body.extend_from_slice(&(hints.len() as u32).to_be_bytes());
    for hint in hints {
        body.extend_from_slice(&hint.id.to_be_bytes());
        body.extend_from_slice(&hint.first_seq.to_be_bytes());
        body.extend_from_slice(&hint.valid_len.to_be_bytes());
        body.extend_from_slice(&(hint.offsets.len() as u32).to_be_bytes());
        for &offset in &hint.offsets {
            body.extend_from_slice(&offset.to_be_bytes());
        }
    }
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_be_bytes());
    write_atomic(dir, INDEX_SIDECAR, &body)
}

/// Loads the locator-index checkpoint, keyed by segment id. Any parse or
/// checksum failure yields an empty map — the sidecar is a hint, never a
/// source of truth.
pub fn load_index_sidecar(dir: &Path) -> HashMap<SegmentId, SegmentHint> {
    parse_index_sidecar(dir).unwrap_or_default()
}

fn parse_index_sidecar(dir: &Path) -> Option<HashMap<SegmentId, SegmentHint>> {
    let bytes = std::fs::read(dir.join(INDEX_SIDECAR)).ok()?;
    if bytes.len() < 4 + 1 + 4 + 4 {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_be_bytes(crc_bytes.try_into().ok()?);
    if crc32(body) != expected {
        return None;
    }
    let mut cursor = Cursor { body, at: 0 };
    if cursor.u32()? != INDEX_MAGIC || cursor.u8()? != VERSION {
        return None;
    }
    let entries = cursor.u32()? as usize;
    let mut hints = HashMap::with_capacity(entries);
    for _ in 0..entries {
        let id = cursor.u32()?;
        let first_seq = cursor.u64()?;
        let valid_len = cursor.u64()?;
        let count = cursor.u32()? as usize;
        let mut offsets = Vec::with_capacity(count);
        for _ in 0..count {
            offsets.push(cursor.u64()?);
        }
        hints.insert(
            id,
            SegmentHint {
                id,
                first_seq,
                valid_len,
                offsets,
            },
        );
    }
    if cursor.at != cursor.body.len() {
        return None;
    }
    Some(hints)
}

/// Writes the GC marker: the oldest sequence number still live.
pub fn write_gc_marker(dir: &Path, start: u64) -> Result<(), StorageError> {
    let mut body = Vec::with_capacity(4 + 1 + 8 + 4);
    body.extend_from_slice(&MARKER_MAGIC.to_be_bytes());
    body.push(VERSION);
    body.extend_from_slice(&start.to_be_bytes());
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_be_bytes());
    write_atomic(dir, GC_MARKER, &body)
}

/// Loads the GC marker; `0` (nothing retired) when absent or unreadable.
pub fn load_gc_marker(dir: &Path) -> u64 {
    let Ok(bytes) = std::fs::read(dir.join(GC_MARKER)) else {
        return 0;
    };
    if bytes.len() != 4 + 1 + 8 + 4 {
        return 0;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let Ok(crc_bytes) = <[u8; 4]>::try_from(crc_bytes) else {
        return 0;
    };
    if crc32(body) != u32::from_be_bytes(crc_bytes) {
        return 0;
    }
    let magic = crate::bytes::be_u32_at(body, 0);
    let version = body.get(4).copied();
    let start = crate::bytes::be_u64_at(body, 5);
    match (magic, version, start) {
        (Some(MARKER_MAGIC), Some(VERSION), Some(start)) => start,
        _ => 0,
    }
}

/// Removes stray `*.tmp` files left by an interrupted atomic write or seal.
pub fn remove_stray_tmp_files(dir: &Path) -> Result<(), StorageError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|name| name.ends_with(".tmp"))
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    Ok(())
}

struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let slice = self.body.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wedge-sidecar-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn index_sidecar_roundtrips() {
        let dir = tempdir("idx-rt");
        let hints = vec![
            SegmentHint {
                id: 3,
                first_seq: 120,
                valid_len: 4096,
                offsets: vec![0, 100, 900],
            },
            SegmentHint {
                id: 4,
                first_seq: 123,
                valid_len: 64,
                offsets: vec![0],
            },
        ];
        write_index_sidecar(&dir, &hints).unwrap();
        let loaded = load_index_sidecar(&dir);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[&3], hints[0]);
        assert_eq!(loaded[&4], hints[1]);
        assert!(!dir.join(format!("{INDEX_SIDECAR}.tmp")).exists());
    }

    #[test]
    fn corrupt_index_sidecar_is_ignored() {
        let dir = tempdir("idx-bad");
        write_index_sidecar(
            &dir,
            &[SegmentHint {
                id: 0,
                first_seq: 0,
                valid_len: 10,
                offsets: vec![0],
            }],
        )
        .unwrap();
        let path = dir.join(INDEX_SIDECAR);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_index_sidecar(&dir).is_empty());
    }

    #[test]
    fn gc_marker_roundtrips_and_defaults_to_zero() {
        let dir = tempdir("gcm");
        assert_eq!(load_gc_marker(&dir), 0);
        write_gc_marker(&dir, 4242).unwrap();
        assert_eq!(load_gc_marker(&dir), 4242);
        // Corruption falls back to zero rather than inventing a frontier.
        let path = dir.join(GC_MARKER);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[6] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_gc_marker(&dir), 0);
    }

    #[test]
    fn stray_tmp_files_are_swept() {
        let dir = tempdir("tmp-sweep");
        std::fs::write(dir.join("seg-0000000001.wcold.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("index.widx.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("keep.wlog"), b"data").unwrap();
        remove_stray_tmp_files(&dir).unwrap();
        assert!(!dir.join("seg-0000000001.wcold.tmp").exists());
        assert!(!dir.join("index.widx.tmp").exists());
        assert!(dir.join("keep.wlog").exists());
    }
}
