//! Error type for the storage engine.

use std::fmt;
use std::io;

/// Errors from the append-only log store.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A record id beyond the current tail was requested.
    RecordNotFound {
        /// Requested record id.
        id: u64,
        /// Records currently stored.
        len: u64,
    },
    /// A stored record failed its framing or checksum — on-disk corruption
    /// rather than an incomplete (torn) write. Torn tails are silently
    /// truncated at recovery; corrupt records are surfaced.
    CorruptRecord {
        /// Record id (or byte offset, for recovery-time findings) of the
        /// damaged record.
        id: u64,
        /// Human-readable cause.
        what: &'static str,
    },
    /// A record exceeded the configured maximum payload size.
    RecordTooLarge {
        /// Payload size requested.
        size: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The record existed once but its cold segment was deleted by the
    /// retention policy (it aged past the punishment window). Distinct from
    /// [`StorageError::RecordNotFound`]: the id is below the tail, not
    /// beyond it.
    RecordRetired {
        /// Requested record id.
        id: u64,
        /// Oldest sequence number still held by the store.
        oldest: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::RecordNotFound { id, len } => {
                write!(f, "record {id} not found (store holds {len} records)")
            }
            StorageError::CorruptRecord { id, what } => {
                write!(f, "record {id} is corrupt: {what}")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds the {max}-byte limit")
            }
            StorageError::RecordRetired { id, oldest } => {
                write!(
                    f,
                    "record {id} was retired by the retention policy (oldest live record is {oldest})"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}
