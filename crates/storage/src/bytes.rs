//! Minimal panic-free big-endian field readers for the cold-segment and
//! sidecar parsers: every access goes through `.get(..)`, so a truncated
//! file yields `None` instead of an index panic.

pub(crate) fn be_u16_at(bytes: &[u8], at: usize) -> Option<u16> {
    let field: [u8; 2] = bytes.get(at..at.checked_add(2)?)?.try_into().ok()?;
    Some(u16::from_be_bytes(field))
}

pub(crate) fn be_u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let field: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_be_bytes(field))
}

pub(crate) fn be_u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let field: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_be_bytes(field))
}
