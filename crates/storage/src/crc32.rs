//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Guards every on-disk record against torn writes and bit rot; implemented
//! here because the workspace avoids external checksum crates.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in data {
        // lint: allow(panic) — index is masked to 0..=255 and the table has
        // exactly 256 entries
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"wedgeblock record");
        let mut data = b"wedgeblock record".to_vec();
        for i in 0..data.len() {
            data[i] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {i}");
            data[i] ^= 1;
        }
    }
}
