//! Cold segments: sealed, checksummed, read-only log segments.
//!
//! Once every record in a segment is below the blockchain-committed
//! frontier the segment is immutable and auditable (the paper's stage-2
//! guarantee), so the node seals it: the record bytes are copied verbatim
//! into a `.wcold` file with an embedded locator block and a CRC'd footer,
//! and the original `.wlog` is deleted. Sealed segments are self-describing
//! — restart reads one footer per cold segment instead of scanning every
//! record — and are served through a cached `pread` handle, so cold reads
//! never touch the tail lock and never re-open the file.
//!
//! On-disk layout of `seg-NNNNNNNNNN.wcold` (all integers big-endian):
//!
//! ```text
//! +--------------------------------------------+
//! | data region: the segment's framed records, |
//! | byte-identical to the original .wlog       |
//! +--------------------------------------------+
//! | locator block:                             |
//! |   count      u32                           |
//! |   first_seq  u64                           |
//! |   offsets    count x u64 (ascending)       |
//! +--------------------------------------------+
//! | footer:                                    |
//! |   locator_off u64  (= data region length)  |
//! |   locator_crc u32  (crc32 of the block)    |
//! |   magic       u16  ("WC")                  |
//! +--------------------------------------------+
//! ```
//!
//! Because the data region is byte-identical to the `.wlog`, a cold segment
//! can be "unsealed" (for tail truncation across the cold boundary) by
//! copying a prefix of the data region back to a `.wlog` file.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::bytes::{be_u16_at, be_u32_at, be_u64_at};
use crate::crc32::crc32;
use crate::error::StorageError;
use crate::segment::{pread_exact, scan_segment, segment_path, SegmentId, HEADER_LEN, MAGIC};

/// Footer magic ("WC").
pub const COLD_MAGIC: u16 = 0x5743;
/// Bytes of footer at the end of a cold segment file.
pub const FOOTER_LEN: usize = 8 + 4 + 2;

/// Builds the file path for cold segment `id` under `dir`.
pub fn cold_path(dir: &Path, id: SegmentId) -> PathBuf {
    dir.join(format!("seg-{id:010}.wcold"))
}

/// Fsyncs a directory so renames/unlinks inside it are durable. A no-op on
/// platforms where directories cannot be opened.
pub fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    if let Ok(handle) = File::open(dir) {
        handle.sync_all()?;
    }
    Ok(())
}

/// A sealed, read-only segment with its locator block resident and a cached
/// read handle.
pub struct ColdSegment {
    id: SegmentId,
    first_seq: u64,
    /// Record start offsets within the data region, ascending.
    offsets: Vec<u64>,
    /// Length of the data region (= locator block offset).
    data_len: u64,
    /// Cached `pread` handle; holding it also keeps the data readable after
    /// the retention policy unlinks the file.
    file: File,
    path: PathBuf,
}

impl ColdSegment {
    /// Segment id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// Sequence number of the first record.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.offsets.len() as u64
    }

    /// One past the last sequence number held.
    pub fn end_seq(&self) -> u64 {
        self.first_seq + self.record_count()
    }

    /// Length of the data region in bytes.
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Path of the cold file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Seals `seg-{id}.wlog` into `seg-{id}.wcold`.
    ///
    /// The source segment is scanned first (verifying every CRC — sealing
    /// must never launder corruption into the cold tier), the cold file is
    /// written to a temp name, fsynced, renamed into place, and the
    /// directory fsynced. The caller deletes the `.wlog` once readers have
    /// been switched over. A crash at any point leaves either a stray
    /// `.tmp` (removed at open) or both files (the cold one wins at open).
    pub fn seal(dir: &Path, id: SegmentId, first_seq: u64) -> Result<ColdSegment, StorageError> {
        let scan = scan_segment(dir, id)?;
        if scan.has_trailing_bytes() {
            return Err(StorageError::CorruptRecord {
                id: id as u64,
                what: "trailing bytes in a segment being sealed",
            });
        }
        let src_path = segment_path(dir, id);
        let tmp_path = dir.join(format!("seg-{id:010}.wcold.tmp"));
        {
            let mut src = File::open(&src_path)?;
            let tmp = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp_path)?;
            let mut out = std::io::BufWriter::new(tmp);
            let copied = std::io::copy(&mut src, &mut out)?;
            if copied != scan.valid_len {
                return Err(StorageError::CorruptRecord {
                    id: id as u64,
                    what: "segment changed size while being sealed",
                });
            }
            let mut block = Vec::with_capacity(4 + 8 + 8 * scan.records.len());
            block.extend_from_slice(&(scan.records.len() as u32).to_be_bytes());
            block.extend_from_slice(&first_seq.to_be_bytes());
            for &(offset, _) in &scan.records {
                block.extend_from_slice(&offset.to_be_bytes());
            }
            out.write_all(&block)?;
            out.write_all(&scan.valid_len.to_be_bytes())?;
            out.write_all(&crc32(&block).to_be_bytes())?;
            out.write_all(&COLD_MAGIC.to_be_bytes())?;
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp_path, cold_path(dir, id))?;
        sync_dir(dir)?;
        ColdSegment::open(dir, id)
    }

    /// Opens an existing cold segment, parsing and validating its footer and
    /// locator block. Record payloads are *not* scanned — their CRCs are
    /// verified lazily on read, which is what makes restart O(tail).
    pub fn open(dir: &Path, id: SegmentId) -> Result<ColdSegment, StorageError> {
        let path = cold_path(dir, id);
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let corrupt = |what| StorageError::CorruptRecord {
            id: id as u64,
            what,
        };
        if file_len < FOOTER_LEN as u64 {
            return Err(corrupt("cold segment shorter than its footer"));
        }
        let mut footer = [0u8; FOOTER_LEN];
        pread_exact(&file, &mut footer, file_len - FOOTER_LEN as u64)?;
        let magic = be_u16_at(&footer, 12).ok_or_else(|| corrupt("bad cold footer"))?;
        if magic != COLD_MAGIC {
            return Err(corrupt("bad cold footer magic"));
        }
        let data_len = be_u64_at(&footer, 0).ok_or_else(|| corrupt("bad cold footer"))?;
        let expected_crc = be_u32_at(&footer, 8).ok_or_else(|| corrupt("bad cold footer"))?;
        let block_end = file_len - FOOTER_LEN as u64;
        if data_len > block_end {
            return Err(corrupt("cold locator offset past end of file"));
        }
        let block_len = (block_end - data_len) as usize;
        if block_len < 4 + 8 {
            return Err(corrupt("cold locator block truncated"));
        }
        let mut block = vec![0u8; block_len];
        pread_exact(&file, &mut block, data_len)?;
        if crc32(&block) != expected_crc {
            return Err(corrupt("cold locator block checksum mismatch"));
        }
        let short = || corrupt("cold locator block truncated");
        let count = be_u32_at(&block, 0).ok_or_else(short)? as usize;
        let first_seq = be_u64_at(&block, 4).ok_or_else(short)?;
        if block_len != 4 + 8 + 8 * count {
            return Err(corrupt("cold locator count disagrees with block size"));
        }
        let mut offsets = Vec::with_capacity(count);
        let mut prev: Option<u64> = None;
        for i in 0..count {
            let offset = be_u64_at(&block, 12 + 8 * i).ok_or_else(short)?;
            if offset >= data_len || prev.is_some_and(|p| offset <= p) {
                return Err(corrupt("cold locator offsets out of order"));
            }
            prev = Some(offset);
            offsets.push(offset);
        }
        if count > 0 && offsets.first() != Some(&0) {
            return Err(corrupt("cold locator does not start at offset zero"));
        }
        Ok(ColdSegment {
            id,
            first_seq,
            offsets,
            data_len,
            file,
            path,
        })
    }

    /// True when `seq` falls inside this segment.
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.first_seq && seq < self.end_seq()
    }

    /// Byte offset of record `seq` within the data region.
    pub fn offset_of(&self, seq: u64) -> Option<u64> {
        self.offsets
            .get(usize::try_from(seq.checked_sub(self.first_seq)?).ok()?)
            .copied()
    }

    /// Reads record `seq` through the cached handle (one `pread` for the
    /// header, one for the payload; the CRC is verified here since sealed
    /// payloads are only checked lazily).
    pub fn read(&self, seq: u64) -> Result<Vec<u8>, StorageError> {
        let offset = self.offset_of(seq).ok_or(StorageError::RecordNotFound {
            id: seq,
            len: self.end_seq(),
        })?;
        let mut header = [0u8; HEADER_LEN];
        pread_exact(&self.file, &mut header, offset)?;
        let magic = u16::from_be_bytes([header[0], header[1]]);
        if magic != MAGIC {
            return Err(StorageError::CorruptRecord {
                id: seq,
                what: "bad magic",
            });
        }
        let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]) as usize;
        let expected_crc = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
        if offset + (HEADER_LEN + len) as u64 > self.data_len {
            return Err(StorageError::CorruptRecord {
                id: seq,
                what: "cold record runs past the data region",
            });
        }
        let mut payload = vec![0u8; len];
        pread_exact(&self.file, &mut payload, offset + HEADER_LEN as u64)?;
        if crc32(&payload) != expected_crc {
            return Err(StorageError::CorruptRecord {
                id: seq,
                what: "checksum mismatch",
            });
        }
        Ok(payload)
    }

    /// Copies the first `keep` bytes of the data region back to
    /// `seg-{id}.wlog` — the unseal path for tail truncation across the
    /// cold boundary. The caller deletes the `.wcold` afterwards.
    pub fn unseal_prefix(&self, dir: &Path) -> Result<(), StorageError> {
        self.unseal_prefix_len(dir, self.data_len)
    }

    /// Like [`ColdSegment::unseal_prefix`] but keeping only the first
    /// `keep` bytes.
    pub fn unseal_prefix_len(&self, dir: &Path, keep: u64) -> Result<(), StorageError> {
        let mut out = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(segment_path(dir, self.id))?;
        let mut remaining = keep.min(self.data_len);
        let mut offset = 0u64;
        let mut buf = vec![0u8; 256 * 1024];
        while remaining > 0 {
            let chunk = remaining.min(buf.len() as u64) as usize;
            let (window, _) = buf.split_at_mut(chunk);
            pread_exact(&self.file, window, offset)?;
            out.write_all(window)?;
            offset += chunk as u64;
            remaining -= chunk as u64;
        }
        out.flush()?;
        out.sync_all()?;
        sync_dir(dir)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentWriter;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wedge-cold-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_segment(dir: &Path, id: SegmentId, n: u32) -> Vec<Vec<u8>> {
        let mut w = SegmentWriter::create(dir, id).unwrap();
        let mut payloads = Vec::new();
        for i in 0..n {
            let p = format!("cold-record-{i:04}").into_bytes();
            w.append(&p).unwrap();
            payloads.push(p);
        }
        w.sync().unwrap();
        payloads
    }

    #[test]
    fn seal_roundtrips_every_record() {
        let dir = tempdir("seal-rt");
        let payloads = write_segment(&dir, 7, 25);
        let cold = ColdSegment::seal(&dir, 7, 100).unwrap();
        assert_eq!(cold.first_seq(), 100);
        assert_eq!(cold.record_count(), 25);
        assert_eq!(cold.end_seq(), 125);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&cold.read(100 + i as u64).unwrap(), p);
        }
        assert!(cold.read(99).is_err());
        assert!(cold.read(125).is_err());
        // Reopen parses the embedded locator without scanning records.
        let reopened = ColdSegment::open(&dir, 7).unwrap();
        assert_eq!(reopened.record_count(), 25);
        assert_eq!(&reopened.read(113).unwrap(), &payloads[13]);
    }

    #[test]
    fn sealed_data_region_is_byte_identical_to_the_wlog() {
        let dir = tempdir("seal-bytes");
        write_segment(&dir, 0, 9);
        let original = std::fs::read(segment_path(&dir, 0)).unwrap();
        let cold = ColdSegment::seal(&dir, 0, 0).unwrap();
        let sealed = std::fs::read(cold.path()).unwrap();
        assert_eq!(&sealed[..original.len()], &original[..]);
        assert_eq!(cold.data_len(), original.len() as u64);
    }

    #[test]
    fn corrupt_footer_fails_open() {
        let dir = tempdir("seal-foot");
        write_segment(&dir, 1, 4);
        let cold = ColdSegment::seal(&dir, 1, 0).unwrap();
        let path = cold.path().to_path_buf();
        drop(cold);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 3; // inside the magic/crc
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ColdSegment::open(&dir, 1),
            Err(StorageError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn corrupt_payload_is_caught_lazily_on_read() {
        let dir = tempdir("seal-lazy");
        write_segment(&dir, 2, 6);
        let cold = ColdSegment::seal(&dir, 2, 0).unwrap();
        let path = cold.path().to_path_buf();
        let victim_off = cold.offset_of(3).unwrap() as usize + HEADER_LEN;
        drop(cold);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[victim_off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Open succeeds (locator block intact) — the damage surfaces on read.
        let cold = ColdSegment::open(&dir, 2).unwrap();
        assert!(cold.read(0).is_ok());
        assert!(matches!(
            cold.read(3),
            Err(StorageError::CorruptRecord {
                id: 3,
                what: "checksum mismatch"
            })
        ));
    }

    #[test]
    fn sealing_a_corrupt_segment_is_refused() {
        let dir = tempdir("seal-refuse");
        write_segment(&dir, 3, 5);
        let path = segment_path(&dir, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(ColdSegment::seal(&dir, 3, 0).is_err());
        assert!(!cold_path(&dir, 3).exists());
    }

    #[test]
    fn unseal_prefix_restores_a_readable_wlog() {
        let dir = tempdir("unseal");
        let payloads = write_segment(&dir, 4, 10);
        let cold = ColdSegment::seal(&dir, 4, 0).unwrap();
        std::fs::remove_file(segment_path(&dir, 4)).unwrap();
        // Keep the first 6 records.
        let cut = cold.offset_of(6).unwrap();
        cold.unseal_prefix_len(&dir, cut).unwrap();
        let scan = scan_segment(&dir, 4).unwrap();
        assert_eq!(scan.records.len(), 6);
        assert!(!scan.has_trailing_bytes());
        for (i, &(offset, _)) in scan.records.iter().enumerate() {
            assert_eq!(
                crate::segment::read_record_at(&dir, 4, offset).unwrap(),
                payloads[i]
            );
        }
    }
}
