//! # wedge-storage
//!
//! Durable storage substrate for the Offchain Node: a segmented, CRC-checked
//! append-only record log with crash recovery and a hot/cold tiered layout
//! ([`LogStore`]), plus the replica fan-out used for the paper's
//! replicated-liveness experiments ([`Replicator`]).
//!
//! Segments below the blockchain-committed frontier can be sealed into
//! read-only, checksummed cold segments ([`LogStore::seal_up_to`]) with an
//! embedded locator block, read through cached `pread` handles, and
//! eventually deleted by the retention policy once they age past the
//! punishment window ([`LogStore::retire_up_to`]). A locator-index sidecar
//! ([`LogStore::write_index_checkpoint`]) makes reopening O(tail).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod cold;
mod crc32;
mod error;
mod replication;
mod segment;
mod sidecar;
mod store;

pub use cold::ColdSegment;
pub use crc32::crc32;
pub use error::StorageError;
pub use replication::{Batch, ReplicationHandle, Replicator};
pub use store::{LogStore, RecoveryStats, StoreConfig, SyncPolicy, SyncStats, TierStats};
