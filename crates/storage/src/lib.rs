//! # wedge-storage
//!
//! Durable storage substrate for the Offchain Node: a segmented, CRC-checked
//! append-only record log with crash recovery ([`LogStore`]), plus the
//! replica fan-out used for the paper's replicated-liveness experiments
//! ([`Replicator`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod error;
mod replication;
mod segment;
mod store;

pub use crc32::crc32;
pub use error::StorageError;
pub use replication::{Batch, ReplicationHandle, Replicator};
pub use store::{LogStore, StoreConfig, SyncPolicy, SyncStats};
