//! The append-only log store: sequential records across rotating segments,
//! with crash recovery, an in-memory locator index, and a hot/cold tiered
//! layout.
//!
//! This is the durable backing for the Offchain Node's log ("The log entry
//! is then persisted to local storage", paper §4.3). Records are addressed
//! by a dense `u64` sequence number assigned at append time.
//!
//! # Tiers
//!
//! Records live in one of two tiers:
//!
//! * **Hot** — `.wlog` segments, including the active tail being appended
//!   to. Locators live in memory and (for non-tail segments) in the
//!   `index.widx` sidecar written by [`LogStore::write_index_checkpoint`].
//! * **Cold** — `.wcold` segments produced by [`LogStore::seal_up_to`] once
//!   the node reports every record in a segment blockchain-committed. Cold
//!   segments are read-only, carry an embedded locator block, and are read
//!   through a cached `pread` handle — never touching the tail lock.
//!
//! [`LogStore::retire_up_to`] deletes whole cold segments below the
//! retention frontier (the punishment window); reads below the frontier
//! fail with [`StorageError::RecordRetired`].
//!
//! Lock order (outermost first): `maint` → `tail` → `tiers` → `group`.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::cold::{cold_path, sync_dir, ColdSegment};
use crate::error::StorageError;
use crate::segment::{
    read_record_at, read_record_from, scan_segment, segment_path, SegmentId, SegmentWriter,
    TailState, HEADER_LEN,
};
use crate::sidecar::{
    load_gc_marker, load_index_sidecar, remove_stray_tmp_files, write_gc_marker,
    write_index_sidecar, SegmentHint,
};

/// When appended records are made durable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SyncPolicy {
    /// fsync after every append (safest, slowest).
    Always,
    /// Flush to the OS after every append, fsync only on rotation/close.
    #[default]
    OnRotate,
    /// Group commit: flush to the OS after every append, but coalesce the
    /// fsyncs of pipeline-adjacent batches into one `sync_data`. A sync is
    /// triggered once `max_batches` appends are pending, and
    /// [`LogStore::ensure_durable`] bounds the wait at `max_delay` — callers
    /// must hold replies until it returns, which restores the `Always`
    /// guarantee (reply ⇒ durable) at a fraction of the fsyncs.
    GroupCommit {
        /// Pending appends that trigger a sync inline.
        max_batches: usize,
        /// Longest a waiting [`LogStore::ensure_durable`] defers the sync
        /// hoping for more batches to share it.
        max_delay: Duration,
    },
    /// Leave flushing to the OS entirely (fastest; loses the tail on crash).
    Never,
}

/// Configuration for a [`LogStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Rotate to a new segment once the current one exceeds this size.
    pub max_segment_bytes: u64,
    /// Reject payloads larger than this.
    pub max_record_bytes: usize,
    /// Durability policy.
    pub sync: SyncPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_segment_bytes: 64 * 1024 * 1024,
            max_record_bytes: 16 * 1024 * 1024,
            sync: SyncPolicy::OnRotate,
        }
    }
}

/// Locates a record on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Locator {
    segment: SegmentId,
    offset: u64,
}

/// Where a resolved record lives.
enum Resolved {
    /// In a sealed cold segment (shared cached handle).
    Cold(Arc<ColdSegment>),
    /// In a hot `.wlog` segment.
    Hot(Locator),
}

/// The two-tier locator index. One lock guards both tiers so a reader's
/// view of a seal/retire transition is atomic.
struct Tiers {
    /// Oldest live sequence number (> 0 once the retention policy has
    /// deleted cold segments).
    start: u64,
    /// Sealed segments, ascending and contiguous: they cover
    /// `[start, hot_base)`.
    cold: Vec<Arc<ColdSegment>>,
    /// Sequence number of the first hot record.
    hot_base: u64,
    /// Locators for hot records; `hot[i]` holds `hot_base + i`.
    hot: Vec<Locator>,
}

impl Tiers {
    fn len(&self) -> u64 {
        self.hot_base + self.hot.len() as u64
    }

    fn resolve(&self, id: u64) -> Result<Resolved, StorageError> {
        if id >= self.len() {
            return Err(StorageError::RecordNotFound {
                id,
                len: self.len(),
            });
        }
        if id >= self.hot_base {
            let rel = (id - self.hot_base) as usize;
            return match self.hot.get(rel) {
                Some(&locator) => Ok(Resolved::Hot(locator)),
                None => Err(StorageError::RecordNotFound {
                    id,
                    len: self.len(),
                }),
            };
        }
        if id < self.start {
            return Err(StorageError::RecordRetired {
                id,
                oldest: self.start,
            });
        }
        let at = self.cold.partition_point(|c| c.end_seq() <= id);
        match self.cold.get(at) {
            Some(segment) if segment.contains(id) => Ok(Resolved::Cold(segment.clone())),
            _ => Err(StorageError::CorruptRecord {
                id,
                what: "cold tier does not cover a sequence it should",
            }),
        }
    }
}

/// Append side: the active segment writer.
struct Tail {
    writer: SegmentWriter,
}

/// Group-commit bookkeeping (only consulted under
/// [`SyncPolicy::GroupCommit`]). Lock order: this mutex is innermost —
/// it is taken while holding the tail and/or tiers locks, and never the
/// other way around.
struct GroupState {
    /// Appends (batched or single) flushed to the OS but not yet covered by
    /// an fsync.
    pending_batches: u64,
    /// When the oldest pending append arrived; anchors `max_delay`.
    first_pending_at: Option<Instant>,
    /// Records `[0, durable_len)` are known to be on stable storage.
    durable_len: u64,
}

/// Counters describing the store's sync behaviour (sampled, monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `sync_data` calls issued.
    pub fsyncs: u64,
    /// Appends whose durability rode a neighbouring batch's fsync instead
    /// of paying their own (each sync covering `k` pending appends counts
    /// `k - 1` here).
    pub fsyncs_coalesced: u64,
    /// Tail flushes performed on the read path (kept low by the
    /// dirty-flag check in [`LogStore::read`]).
    pub read_tail_flushes: u64,
    /// Times the read path acquired the tail mutex. Reads of sealed or
    /// cold records never do; a `read_range`/`iter` chunk pays at most one
    /// acquisition per call.
    pub read_tail_locks: u64,
}

/// Work done by [`LogStore::open`] to recover the index — the observable
/// measure of O(tail) restart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Cold segments admitted by parsing their embedded locator block
    /// (no record scan).
    pub cold_segments: u64,
    /// Hot segments admitted from a matching `index.widx` entry
    /// (no record scan).
    pub hinted_segments: u64,
    /// Segments that had to be scanned record-by-record (always at least
    /// the tail, when one exists).
    pub scanned_segments: u64,
    /// Records read and CRC-verified during those scans.
    pub scanned_records: u64,
}

/// Tiering counters (current sizes and monotonic totals since open).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Cold segments currently live.
    pub cold_segments: u64,
    /// Hot segments currently live (including the tail).
    pub hot_segments: u64,
    /// Segments sealed by [`LogStore::seal_up_to`] since open.
    pub segments_sealed: u64,
    /// Cold segments deleted by [`LogStore::retire_up_to`] since open.
    pub segments_retired: u64,
    /// Records served from the cold tier since open.
    pub cold_reads: u64,
    /// Oldest sequence number still readable.
    pub oldest_live: u64,
}

/// A durable append-only record log.
///
/// Appends are serialized; reads are concurrent and lock the tiers index
/// only briefly. Hot reads open their own file handle (readers never
/// contend with the writer on file position); cold reads share the sealed
/// segment's cached `pread` handle.
pub struct LogStore {
    dir: PathBuf,
    config: StoreConfig,
    tiers: RwLock<Tiers>,
    tail: Mutex<Tail>,
    /// Mirror of `tail.writer.id()`, updated under the tail lock — lets
    /// reads of non-tail records skip the tail mutex entirely.
    tail_seg: AtomicU32,
    /// Serializes structural maintenance: seal, retire, index checkpoint,
    /// truncate. Never taken on the append or read paths.
    maint: Mutex<()>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    fsyncs: AtomicU64,
    fsyncs_coalesced: AtomicU64,
    read_tail_flushes: AtomicU64,
    read_tail_locks: AtomicU64,
    cold_reads: AtomicU64,
    sealed_total: AtomicU64,
    retired_total: AtomicU64,
    recovery: RecoveryStats,
}

impl LogStore {
    /// Opens (or creates) a store in `dir`, recovering any existing
    /// segments. A torn tail record (interrupted write) is truncated away;
    /// genuine corruption — bad magic or a CRC mismatch on a fully present
    /// record — fails the open with [`StorageError::CorruptRecord`].
    ///
    /// Recovery cost is proportional to what lacks a trusted locator
    /// source: cold segments contribute one footer read each, hot non-tail
    /// segments with a matching `index.widx` entry are admitted without a
    /// scan, and only the remainder (always including the tail) is scanned
    /// record-by-record. [`LogStore::recovery_stats`] reports the split.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<LogStore, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        remove_stray_tmp_files(&dir)?;
        let marker_start = load_gc_marker(&dir);

        // Discover segment files of both tiers.
        let mut cold_ids: Vec<SegmentId> = Vec::new();
        let mut wlog_ids: Vec<SegmentId> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let Ok(name) = entry?.file_name().into_string() else {
                continue;
            };
            if let Some(id) = name.strip_prefix("seg-") {
                if let Some(id) = id.strip_suffix(".wlog") {
                    if let Ok(id) = id.parse::<SegmentId>() {
                        wlog_ids.push(id);
                    }
                } else if let Some(id) = id.strip_suffix(".wcold") {
                    if let Ok(id) = id.parse::<SegmentId>() {
                        cold_ids.push(id);
                    }
                }
            }
        }
        cold_ids.sort_unstable();
        wlog_ids.sort_unstable();
        // A crash between a seal's rename and its .wlog unlink leaves both
        // files: the cold copy is complete and checksummed, so it wins.
        wlog_ids.retain(|id| {
            if cold_ids.binary_search(id).is_ok() {
                let _ = std::fs::remove_file(segment_path(&dir, *id));
                false
            } else {
                true
            }
        });
        if let (Some(last_cold), Some(first_wlog)) = (cold_ids.last(), wlog_ids.first()) {
            if last_cold >= first_wlog {
                return Err(StorageError::CorruptRecord {
                    id: *last_cold as u64,
                    what: "cold segment found after a hot segment",
                });
            }
        }

        let mut recovery = RecoveryStats::default();
        let mut cold: Vec<Arc<ColdSegment>> = Vec::new();
        for &id in &cold_ids {
            cold.push(Arc::new(ColdSegment::open(&dir, id)?));
        }
        // A crash between a retention pass's marker write and its unlinks
        // leaves cold segments wholly below the marker: delete them now.
        let mut start = marker_start;
        while cold.first().is_some_and(|c| c.end_seq() <= start) {
            let seg = cold.remove(0);
            let _ = std::fs::remove_file(seg.path());
        }
        if let Some(first) = cold.first() {
            start = first.first_seq();
        }
        let mut running = start;
        for seg in &cold {
            if seg.first_seq() != running {
                return Err(StorageError::CorruptRecord {
                    id: seg.id() as u64,
                    what: "cold segments are not sequence-contiguous",
                });
            }
            running = seg.end_seq();
        }
        recovery.cold_segments = cold.len() as u64;
        let hot_base = running;

        let hints = load_index_sidecar(&dir);
        let mut hot: Vec<Locator> = Vec::new();
        let mut tail_writer = None;
        let mut seq = hot_base;
        if let Some((&last, full_segments)) = wlog_ids.split_last() {
            for &id in full_segments {
                let file_len = std::fs::metadata(segment_path(&dir, id))?.len();
                let hint = hints.get(&id).filter(|h| {
                    h.first_seq == seq && h.valid_len == file_len && !h.offsets.is_empty()
                });
                if let Some(hint) = hint {
                    hot.extend(hint.offsets.iter().map(|&offset| Locator {
                        segment: id,
                        offset,
                    }));
                    seq += hint.offsets.len() as u64;
                    recovery.hinted_segments += 1;
                    continue;
                }
                let scan = scan_segment(&dir, id)?;
                // Non-tail segments must be fully intact: mid-log corruption
                // cannot be silently dropped without creating a hole.
                if scan.has_trailing_bytes() {
                    return Err(StorageError::CorruptRecord {
                        id: id as u64,
                        what: "corruption in a sealed (non-tail) segment",
                    });
                }
                hot.extend(scan.records.iter().map(|&(offset, _)| Locator {
                    segment: id,
                    offset,
                }));
                seq += scan.records.len() as u64;
                recovery.scanned_segments += 1;
                recovery.scanned_records += scan.records.len() as u64;
            }
            let scan = scan_segment(&dir, last)?;
            // A torn write at the tail is the expected crash artifact and is
            // truncated; corrupt bytes (bad magic / CRC mismatch with the
            // payload fully present) mean tampering or bit rot and fail the
            // open rather than silently shortening the log.
            if let TailState::Corrupt { offset, what } = scan.tail {
                return Err(StorageError::CorruptRecord { id: offset, what });
            }
            hot.extend(scan.records.iter().map(|&(offset, _)| Locator {
                segment: last,
                offset,
            }));
            recovery.scanned_segments += 1;
            recovery.scanned_records += scan.records.len() as u64;
            tail_writer = Some(SegmentWriter::open_at(&dir, last, scan.valid_len)?);
        }
        let writer = match tail_writer {
            Some(w) => w,
            None => {
                let id = cold.last().map(|c| c.id() + 1).unwrap_or(0);
                SegmentWriter::create(&dir, id)?
            }
        };
        let tiers = Tiers {
            start,
            cold,
            hot_base,
            hot,
        };
        let durable_len = tiers.len();
        let tail_seg = writer.id();
        Ok(LogStore {
            dir,
            config,
            tiers: RwLock::new(tiers),
            tail: Mutex::new(Tail { writer }),
            tail_seg: AtomicU32::new(tail_seg),
            maint: Mutex::new(()),
            group: Mutex::new(GroupState {
                pending_batches: 0,
                first_pending_at: None,
                // Recovered records were read back from disk, so they are
                // durable by construction.
                durable_len,
            }),
            group_cv: Condvar::new(),
            fsyncs: AtomicU64::new(0),
            fsyncs_coalesced: AtomicU64::new(0),
            read_tail_flushes: AtomicU64::new(0),
            read_tail_locks: AtomicU64::new(0),
            cold_reads: AtomicU64::new(0),
            sealed_total: AtomicU64::new(0),
            retired_total: AtomicU64::new(0),
            recovery,
        })
    }

    /// Flushes and fsyncs the tail, then publishes the new durable frontier
    /// and wakes [`LogStore::ensure_durable`] waiters. Caller holds the tail
    /// lock; lock order is tail → tiers → group.
    fn sync_tail(&self, tail: &mut Tail) -> Result<(), StorageError> {
        tail.writer.sync()?;
        let durable = self.tiers.read().len();
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let mut group = self.group.lock();
        self.fsyncs_coalesced
            .fetch_add(group.pending_batches.saturating_sub(1), Ordering::Relaxed);
        group.pending_batches = 0;
        group.first_pending_at = None;
        if durable > group.durable_len {
            group.durable_len = durable;
        }
        drop(group);
        self.group_cv.notify_all();
        Ok(())
    }

    /// Group-commit accounting after an append made it into the index:
    /// counts the pending batch and performs the covering fsync inline once
    /// `max_batches` are waiting. Caller holds the tail lock.
    fn note_appended(&self, tail: &mut Tail) -> Result<(), StorageError> {
        let SyncPolicy::GroupCommit { max_batches, .. } = self.config.sync else {
            return Ok(());
        };
        let should_sync = {
            let mut group = self.group.lock();
            group.pending_batches += 1;
            if group.first_pending_at.is_none() {
                group.first_pending_at = Some(Instant::now());
            }
            group.pending_batches >= max_batches.max(1) as u64
        };
        if should_sync {
            self.sync_tail(tail)?;
        }
        Ok(())
    }

    /// Blocks until record `seq` is covered by an fsync.
    ///
    /// Under [`SyncPolicy::GroupCommit`] this is the reply-release gate: a
    /// caller may acknowledge `seq` only after this returns. The wait is
    /// bounded — if no neighbouring batch triggers the sync within
    /// `max_delay` of the oldest pending append, the caller performs it
    /// itself. Under every other policy the append path already provided
    /// whatever durability the policy promises, so this returns
    /// immediately.
    pub fn ensure_durable(&self, seq: u64) -> Result<(), StorageError> {
        let SyncPolicy::GroupCommit { max_delay, .. } = self.config.sync else {
            return Ok(());
        };
        loop {
            let mut group = self.group.lock();
            if seq < group.durable_len {
                return Ok(());
            }
            // If nothing is pending there is no upcoming group sync to wait
            // for: fall through to the self-performed sync + recheck, which
            // either observes durability or proves the record absent.
            if let Some(first) = group.first_pending_at {
                let deadline = first + max_delay;
                let now = Instant::now();
                if now < deadline {
                    // Wait for a threshold-triggered sync to cover us (or
                    // for the delay budget to run out). Spurious wakeups
                    // only cause a re-check.
                    self.group_cv.wait_for(&mut group, deadline - now);
                    continue;
                }
            }
            drop(group);
            // Delay budget exhausted: perform the covering fsync ourselves.
            {
                let mut tail = self.tail.lock();
                self.sync_tail(&mut tail)?;
            }
            let group = self.group.lock();
            if seq < group.durable_len {
                return Ok(());
            }
            // Even a fresh fsync did not cover `seq`: the record is not in
            // the store, and waiting longer cannot make it durable.
            return Err(StorageError::RecordNotFound {
                id: seq,
                len: group.durable_len,
            });
        }
    }

    /// Sync-behaviour counters (monotonic since open).
    pub fn sync_stats(&self) -> SyncStats {
        SyncStats {
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            fsyncs_coalesced: self.fsyncs_coalesced.load(Ordering::Relaxed),
            read_tail_flushes: self.read_tail_flushes.load(Ordering::Relaxed),
            read_tail_locks: self.read_tail_locks.load(Ordering::Relaxed),
        }
    }

    /// Recovery work done by the open that produced this store.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Tiering counters (current sizes and monotonic totals since open).
    pub fn tier_stats(&self) -> TierStats {
        let tail_id = self.tail_seg.load(Ordering::Acquire);
        let tiers = self.tiers.read();
        let mut hot_segments = 0u64;
        let mut last: Option<SegmentId> = None;
        for locator in &tiers.hot {
            if last != Some(locator.segment) {
                hot_segments += 1;
                last = Some(locator.segment);
            }
        }
        if last != Some(tail_id) {
            hot_segments += 1;
        }
        TierStats {
            cold_segments: tiers.cold.len() as u64,
            hot_segments,
            segments_sealed: self.sealed_total.load(Ordering::Relaxed),
            segments_retired: self.retired_total.load(Ordering::Relaxed),
            cold_reads: self.cold_reads.load(Ordering::Relaxed),
            oldest_live: tiers.start,
        }
    }

    /// Appends a record; returns its sequence number.
    pub fn append(&self, payload: &[u8]) -> Result<u64, StorageError> {
        if payload.len() > self.config.max_record_bytes {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: self.config.max_record_bytes,
            });
        }
        let mut tail = self.tail.lock();
        // Rotate if the current segment is full (never rotate an empty one —
        // a single oversized record may exceed max_segment_bytes).
        if tail.writer.len() + (HEADER_LEN + payload.len()) as u64 > self.config.max_segment_bytes
            && !tail.writer.is_empty()
        {
            self.sync_tail(&mut tail)?;
            let next_id = tail.writer.id() + 1;
            tail.writer = SegmentWriter::create(&self.dir, next_id)?;
            self.tail_seg.store(next_id, Ordering::Release);
        }
        let offset = tail.writer.append(payload)?;
        match self.config.sync {
            SyncPolicy::Always => self.sync_tail(&mut tail)?,
            SyncPolicy::OnRotate | SyncPolicy::GroupCommit { .. } => tail.writer.flush()?,
            SyncPolicy::Never => {}
        }
        let locator = Locator {
            segment: tail.writer.id(),
            offset,
        };
        let seq = {
            let mut tiers = self.tiers.write();
            tiers.hot.push(locator);
            tiers.len() - 1
        };
        self.note_appended(&mut tail)?;
        Ok(seq)
    }

    /// Appends several records as one batch, flushing once. Returns the
    /// sequence number of the first record.
    pub fn append_batch<D: AsRef<[u8]>>(&self, payloads: &[D]) -> Result<u64, StorageError> {
        let mut tail = self.tail.lock();
        let mut locators = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let payload = payload.as_ref();
            if payload.len() > self.config.max_record_bytes {
                return Err(StorageError::RecordTooLarge {
                    size: payload.len(),
                    max: self.config.max_record_bytes,
                });
            }
            if tail.writer.len() + (HEADER_LEN + payload.len()) as u64
                > self.config.max_segment_bytes
                && !tail.writer.is_empty()
            {
                self.sync_tail(&mut tail)?;
                let next_id = tail.writer.id() + 1;
                tail.writer = SegmentWriter::create(&self.dir, next_id)?;
                self.tail_seg.store(next_id, Ordering::Release);
            }
            let offset = tail.writer.append(payload)?;
            locators.push(Locator {
                segment: tail.writer.id(),
                offset,
            });
        }
        match self.config.sync {
            SyncPolicy::Always => self.sync_tail(&mut tail)?,
            SyncPolicy::OnRotate | SyncPolicy::GroupCommit { .. } => tail.writer.flush()?,
            SyncPolicy::Never => {}
        }
        let first = {
            let mut tiers = self.tiers.write();
            let first = tiers.len();
            tiers.hot.extend(locators);
            first
        };
        self.note_appended(&mut tail)?;
        Ok(first)
    }

    /// Reads record `id`.
    ///
    /// Cold records are served through the sealed segment's cached handle
    /// and never touch the tail lock. Hot records only take the tail lock
    /// when they live in the active tail segment (cheap atomic id check) —
    /// and even then flush only when the write buffer is dirty.
    pub fn read(&self, id: u64) -> Result<Vec<u8>, StorageError> {
        let resolved = self.tiers.read().resolve(id)?;
        match resolved {
            Resolved::Cold(segment) => {
                self.cold_reads.fetch_add(1, Ordering::Relaxed);
                segment.read(id)
            }
            Resolved::Hot(locator) => self.read_hot(id, locator),
        }
    }

    fn read_hot(&self, id: u64, locator: Locator) -> Result<Vec<u8>, StorageError> {
        // The tail segment may still hold this record in its write buffer;
        // flush before reading if it is the active segment — but only when
        // something was actually appended since the last flush, so a
        // read-heavy loop does not pay a syscall per read. Records in any
        // other segment were flushed at rotation, so the lock is skipped
        // entirely.
        if locator.segment == self.tail_seg.load(Ordering::Acquire) {
            let mut tail = self.tail.lock();
            self.read_tail_locks.fetch_add(1, Ordering::Relaxed);
            if tail.writer.id() == locator.segment && tail.writer.is_dirty() {
                tail.writer.flush()?;
                self.read_tail_flushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        match read_record_at(&self.dir, locator.segment, locator.offset) {
            Err(StorageError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                // The segment was sealed between resolve and open — the
                // records are intact in the cold tier; re-resolve once.
                let resolved = self.tiers.read().resolve(id)?;
                match resolved {
                    Resolved::Cold(segment) => {
                        self.cold_reads.fetch_add(1, Ordering::Relaxed);
                        segment.read(id)
                    }
                    Resolved::Hot(l) => read_record_at(&self.dir, l.segment, l.offset),
                }
            }
            other => other,
        }
    }

    /// Reads records `[start, start + count)` in order.
    ///
    /// The locator lookup is batched (one tiers-lock acquisition for the
    /// whole range), the dirty-tail flush check runs once per call rather
    /// than once per record, and records are read through per-segment
    /// cached handles instead of re-opening the file per record.
    pub fn read_range(&self, start: u64, count: u64) -> Result<Vec<Vec<u8>>, StorageError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let end = start
            .checked_add(count)
            .ok_or(StorageError::RecordNotFound {
                id: u64::MAX,
                len: self.len(),
            })?;
        let resolved: Vec<Resolved> = {
            let tiers = self.tiers.read();
            let mut resolved = Vec::with_capacity(count as usize);
            for id in start..end {
                resolved.push(tiers.resolve(id)?);
            }
            resolved
        };
        // One dirty-tail check for the whole call.
        let tail_id = self.tail_seg.load(Ordering::Acquire);
        let touches_tail = resolved
            .iter()
            .any(|r| matches!(r, Resolved::Hot(l) if l.segment == tail_id));
        if touches_tail {
            let mut tail = self.tail.lock();
            self.read_tail_locks.fetch_add(1, Ordering::Relaxed);
            if tail.writer.id() == tail_id && tail.writer.is_dirty() {
                tail.writer.flush()?;
                self.read_tail_flushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut out = Vec::with_capacity(count as usize);
        let mut cached: Option<(SegmentId, File)> = None;
        for (i, resolved) in resolved.into_iter().enumerate() {
            let id = start + i as u64;
            match resolved {
                Resolved::Cold(segment) => {
                    self.cold_reads.fetch_add(1, Ordering::Relaxed);
                    out.push(segment.read(id)?);
                }
                Resolved::Hot(locator) => {
                    if cached.as_ref().map(|(s, _)| *s) != Some(locator.segment) {
                        cached = match File::open(segment_path(&self.dir, locator.segment)) {
                            Ok(file) => Some((locator.segment, file)),
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                            Err(e) => return Err(e.into()),
                        };
                    }
                    match cached.as_ref() {
                        Some((_, file)) => match read_record_from(file, locator.offset) {
                            Ok(payload) => out.push(payload),
                            // A concurrent truncation can shrink the file
                            // under us; the slow path re-resolves.
                            Err(StorageError::Io(_)) => out.push(self.read(id)?),
                            Err(e) => return Err(e),
                        },
                        // Sealed underneath us — the slow path re-resolves
                        // to the cold tier.
                        None => out.push(self.read(id)?),
                    }
                }
            }
        }
        Ok(out)
    }

    /// Number of records ever appended (retired records still count: the
    /// sequence space is dense and never reused).
    pub fn len(&self) -> u64 {
        self.tiers.read().len()
    }

    /// Oldest sequence number still readable (> 0 once the retention policy
    /// has deleted cold segments).
    pub fn oldest(&self) -> u64 {
        self.tiers.read().start
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces the tail to stable storage.
    pub fn sync(&self) -> Result<(), StorageError> {
        let mut tail = self.tail.lock();
        self.sync_tail(&mut tail)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live segments (cold + hot, including the active tail).
    /// Counts actual on-disk segments, so it stays truthful across
    /// sealing, retention, and tail truncation.
    pub fn segment_count(&self) -> u32 {
        let stats = self.tier_stats();
        (stats.cold_segments + stats.hot_segments) as u32
    }

    /// Id of the segment currently being appended to.
    pub fn tail_segment_id(&self) -> SegmentId {
        self.tail_seg.load(Ordering::Acquire)
    }

    /// Iterates over all live records in sequence order, starting at
    /// [`LogStore::oldest`]. Records are fetched in small chunks through
    /// the batched [`LogStore::read_range`] path (no large resident
    /// buffers); errors surface per record.
    pub fn iter(&self) -> impl Iterator<Item = Result<Vec<u8>, StorageError>> + '_ {
        const CHUNK: u64 = 16;
        let end = self.len();
        let mut next = self.oldest();
        let mut buffered: std::collections::VecDeque<Result<Vec<u8>, StorageError>> =
            std::collections::VecDeque::new();
        std::iter::from_fn(move || {
            if buffered.is_empty() {
                if next >= end {
                    return None;
                }
                let n = (end - next).min(CHUNK);
                match self.read_range(next, n) {
                    Ok(records) => buffered.extend(records.into_iter().map(Ok)),
                    // Keep the per-record error granularity of the old
                    // one-read-per-item iterator.
                    Err(_) => buffered.extend((next..next + n).map(|id| self.read(id))),
                }
                next += n;
            }
            buffered.pop_front()
        })
    }

    /// Seals every hot segment whose records all lie below `frontier` (the
    /// blockchain-committed boundary, exclusive) into the cold tier.
    /// Returns the number of segments sealed.
    ///
    /// The active tail segment is never sealed. Sealing verifies every
    /// record CRC, writes the `.wcold` atomically, switches readers over,
    /// and only then deletes the `.wlog` — a crash at any point is
    /// recovered by [`LogStore::open`].
    pub fn seal_up_to(&self, frontier: u64) -> Result<u32, StorageError> {
        let _maint = self.maint.lock();
        let mut sealed = 0u32;
        loop {
            let candidate = {
                let tiers = self.tiers.read();
                match tiers.hot.first() {
                    Some(first) if first.segment != self.tail_seg.load(Ordering::Acquire) => {
                        let segment = first.segment;
                        let count = tiers
                            .hot
                            .iter()
                            .take_while(|l| l.segment == segment)
                            .count();
                        if tiers.hot_base + count as u64 <= frontier {
                            Some((segment, tiers.hot_base, count))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            };
            let Some((segment, first_seq, count)) = candidate else {
                break;
            };
            // File work happens without any store lock: the segment is
            // immutable (non-tail) and `maint` keeps other maintenance out.
            let cold = ColdSegment::seal(&self.dir, segment, first_seq)?;
            if cold.record_count() != count as u64 {
                return Err(StorageError::CorruptRecord {
                    id: segment as u64,
                    what: "sealed record count disagrees with the index",
                });
            }
            {
                let mut tiers = self.tiers.write();
                tiers.hot.drain(..count);
                tiers.hot_base += count as u64;
                tiers.cold.push(Arc::new(cold));
            }
            // Readers now resolve to the cold copy; the source can go. A
            // reader that raced the swap re-resolves on NotFound.
            let _ = std::fs::remove_file(segment_path(&self.dir, segment));
            self.sealed_total.fetch_add(1, Ordering::Relaxed);
            sealed += 1;
        }
        if sealed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(sealed)
    }

    /// Deletes whole cold segments whose records all lie below `upto` (the
    /// retention frontier, exclusive) — the punishment-window GC. Returns
    /// the number of segments deleted. Subsequent reads below the new
    /// [`LogStore::oldest`] fail with [`StorageError::RecordRetired`].
    pub fn retire_up_to(&self, upto: u64) -> Result<u32, StorageError> {
        let _maint = self.maint.lock();
        let removable: Vec<Arc<ColdSegment>> = {
            let tiers = self.tiers.read();
            tiers
                .cold
                .iter()
                .take_while(|c| c.end_seq() <= upto)
                .cloned()
                .collect()
        };
        let Some(last) = removable.last() else {
            return Ok(0);
        };
        let new_start = last.end_seq();
        // Marker first: a crash after this point leaves files the next open
        // recognises as retired and deletes.
        write_gc_marker(&self.dir, new_start)?;
        {
            let mut tiers = self.tiers.write();
            tiers.cold.drain(..removable.len());
            tiers.start = new_start;
        }
        // In-flight readers holding the Arc keep the unlinked data readable
        // through the cached handle; new resolves report RecordRetired.
        for segment in &removable {
            let _ = std::fs::remove_file(segment.path());
        }
        sync_dir(&self.dir)?;
        self.retired_total
            .fetch_add(removable.len() as u64, Ordering::Relaxed);
        Ok(removable.len() as u32)
    }

    /// Writes the `index.widx` sidecar: a checkpoint of the locators of
    /// every full (non-tail) hot segment, so the next open admits them
    /// without a record scan. Cold segments carry their own locator blocks
    /// and the tail is always scanned, so a fresh sidecar makes open
    /// O(tail).
    pub fn write_index_checkpoint(&self) -> Result<(), StorageError> {
        let _maint = self.maint.lock();
        let tail_id = self.tail_seg.load(Ordering::Acquire);
        let mut hints: Vec<SegmentHint> = Vec::new();
        {
            let tiers = self.tiers.read();
            for (seq, locator) in (tiers.hot_base..).zip(tiers.hot.iter()) {
                if locator.segment == tail_id {
                    // Hot locators are segment-ordered; everything from the
                    // first tail locator on is tail.
                    break;
                }
                match hints.last_mut() {
                    Some(hint) if hint.id == locator.segment => hint.offsets.push(locator.offset),
                    _ => hints.push(SegmentHint {
                        id: locator.segment,
                        first_seq: seq,
                        valid_len: 0,
                        offsets: vec![locator.offset],
                    }),
                }
            }
        }
        // Fill in the exact on-disk lengths (rotated segments are fully
        // flushed, so the metadata length is the scan-valid length).
        let mut complete = Vec::with_capacity(hints.len());
        for mut hint in hints {
            if let Ok(meta) = std::fs::metadata(segment_path(&self.dir, hint.id)) {
                hint.valid_len = meta.len();
                complete.push(hint);
            }
        }
        write_index_sidecar(&self.dir, &complete)
    }

    /// Simulates the paper's extreme omission attack for tests: removes the
    /// newest `count` records from the index *and* truncates them from disk
    /// — across segment and even tier boundaries (later cold segments are
    /// deleted; a partially-kept cold segment is unsealed back into the
    /// tail). Returns the new length.
    ///
    /// Truncating into the retired region (below [`LogStore::oldest`])
    /// fails with [`StorageError::RecordRetired`]: deleted data cannot be
    /// resurrected.
    pub fn truncate_tail(&self, count: u64) -> Result<u64, StorageError> {
        let _maint = self.maint.lock();
        let mut tail = self.tail.lock();
        let mut tiers = self.tiers.write();
        let len = tiers.len();
        let new_len = len.saturating_sub(count);
        if new_len < tiers.start {
            return Err(StorageError::RecordRetired {
                id: new_len,
                oldest: tiers.start,
            });
        }
        if new_len == len {
            return Ok(new_len);
        }
        if new_len >= tiers.hot_base {
            // Boundary within the hot tier (the pre-tiering behaviour).
            let keep = (new_len - tiers.hot_base) as usize;
            let removed: Vec<Locator> = tiers.hot.drain(keep..).collect();
            if let Some(first) = removed.first() {
                tail.writer.sync()?;
                // Remove whole later segments, then truncate within the one
                // holding the first removed record.
                for segment in (first.segment + 1)..=tail.writer.id() {
                    let _ = std::fs::remove_file(segment_path(&self.dir, segment));
                }
                tail.writer = SegmentWriter::open_at(&self.dir, first.segment, first.offset)?;
                self.tail_seg.store(first.segment, Ordering::Release);
            }
        } else {
            // Boundary within the cold tier: every hot segment file goes,
            // later cold segments are deleted, and the boundary cold
            // segment is unsealed back into an appendable tail.
            let mut doomed_hot: Vec<SegmentId> = Vec::new();
            for locator in &tiers.hot {
                if doomed_hot.last() != Some(&locator.segment) {
                    doomed_hot.push(locator.segment);
                }
            }
            let tail_id = tail.writer.id();
            if doomed_hot.last() != Some(&tail_id) {
                doomed_hot.push(tail_id);
            }
            tiers.hot.clear();
            let keep_full = tiers.cold.partition_point(|c| c.end_seq() <= new_len);
            let doomed_cold: Vec<Arc<ColdSegment>> = tiers.cold.drain(keep_full..).collect();
            let boundary = doomed_cold
                .first()
                .cloned()
                .ok_or(StorageError::CorruptRecord {
                    id: new_len,
                    what: "truncation boundary outside every tier",
                })?;
            for segment in &doomed_hot {
                let _ = std::fs::remove_file(segment_path(&self.dir, *segment));
            }
            if boundary.first_seq() == new_len {
                // Clean edge: the whole boundary segment goes too; the tail
                // restarts as a fresh segment reusing its id.
                tail.writer = SegmentWriter::create(&self.dir, boundary.id())?;
                tiers.hot_base = new_len;
            } else {
                // Partial: copy the kept prefix back into a .wlog tail.
                let cut = boundary
                    .offset_of(new_len)
                    .ok_or(StorageError::CorruptRecord {
                        id: new_len,
                        what: "truncation boundary missing from the cold locator",
                    })?;
                boundary.unseal_prefix_len(&self.dir, cut)?;
                let mut restored = Vec::new();
                for seq in boundary.first_seq()..new_len {
                    let offset = boundary.offset_of(seq).ok_or(StorageError::CorruptRecord {
                        id: seq,
                        what: "kept record missing from the cold locator",
                    })?;
                    restored.push(Locator {
                        segment: boundary.id(),
                        offset,
                    });
                }
                tiers.hot = restored;
                tiers.hot_base = boundary.first_seq();
                tail.writer = SegmentWriter::open_at(&self.dir, boundary.id(), cut)?;
            }
            self.tail_seg.store(tail.writer.id(), Ordering::Release);
            for segment in &doomed_cold {
                let _ = std::fs::remove_file(cold_path(&self.dir, segment.id()));
            }
        }
        // The durable frontier cannot exceed the truncated length.
        let mut group = self.group.lock();
        if group.durable_len > new_len {
            group.durable_len = new_len;
        }
        Ok(new_len)
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wedge-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_roundtrip() {
        let store = LogStore::open(tempdir("rt"), StoreConfig::default()).unwrap();
        let a = store.append(b"alpha").unwrap();
        let b = store.append(b"beta").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.read(0).unwrap(), b"alpha");
        assert_eq!(store.read(1).unwrap(), b"beta");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn missing_record_is_error() {
        let store = LogStore::open(tempdir("miss"), StoreConfig::default()).unwrap();
        assert!(matches!(
            store.read(0),
            Err(StorageError::RecordNotFound { id: 0, len: 0 })
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let config = StoreConfig {
            max_record_bytes: 8,
            ..Default::default()
        };
        let store = LogStore::open(tempdir("big"), config).unwrap();
        assert!(matches!(
            store.append(b"123456789"),
            Err(StorageError::RecordTooLarge { size: 9, max: 8 })
        ));
    }

    #[test]
    fn rotation_spreads_segments() {
        let config = StoreConfig {
            max_segment_bytes: 64,
            ..Default::default()
        };
        let dir = tempdir("rot");
        let store = LogStore::open(&dir, config).unwrap();
        for i in 0..20u32 {
            store
                .append(format!("record-number-{i:04}").as_bytes())
                .unwrap();
        }
        assert!(store.segment_count() > 1, "expected rotation");
        for i in 0..20u32 {
            assert_eq!(
                store.read(i as u64).unwrap(),
                format!("record-number-{i:04}").as_bytes()
            );
        }
    }

    #[test]
    fn batch_append_is_dense_and_ordered() {
        let store = LogStore::open(tempdir("batch"), StoreConfig::default()).unwrap();
        store.append(b"pre").unwrap();
        let first = store
            .append_batch(&[b"b0".as_slice(), b"b1", b"b2"])
            .unwrap();
        assert_eq!(first, 1);
        assert_eq!(store.read(2).unwrap(), b"b1");
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn recovery_restores_index() {
        let dir = tempdir("rec");
        let config = StoreConfig {
            max_segment_bytes: 128,
            ..Default::default()
        };
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            for i in 0..30u32 {
                store.append(format!("persisted-{i}").as_bytes()).unwrap();
            }
            store.sync().unwrap();
        }
        let store = LogStore::open(&dir, config).unwrap();
        assert_eq!(store.len(), 30);
        for i in 0..30u32 {
            assert_eq!(
                store.read(i as u64).unwrap(),
                format!("persisted-{i}").as_bytes()
            );
        }
        // And appends continue from the recovered tail.
        assert_eq!(store.append(b"after-recovery").unwrap(), 30);
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let dir = tempdir("torn");
        let config = StoreConfig::default();
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            store.append(b"complete-1").unwrap();
            store.append(b"complete-2").unwrap();
            store.append(b"torn-record").unwrap();
            store.sync().unwrap();
        }
        // Tear the last record.
        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let store = LogStore::open(&dir, config).unwrap();
        assert_eq!(store.len(), 2, "torn record dropped");
        // The torn slot is reused by the next append.
        assert_eq!(store.append(b"rewritten").unwrap(), 2);
        assert_eq!(store.read(2).unwrap(), b"rewritten");
    }

    #[test]
    fn sealed_segment_corruption_fails_open() {
        let dir = tempdir("sealed");
        let config = StoreConfig {
            max_segment_bytes: 64,
            ..Default::default()
        };
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            for i in 0..10u32 {
                store
                    .append(format!("record-number-{i:04}").as_bytes())
                    .unwrap();
            }
            store.sync().unwrap();
            assert!(store.segment_count() > 1);
        }
        // Corrupt a byte in the middle of segment 0 (sealed).
        let seg = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();
        assert!(matches!(
            LogStore::open(&dir, config),
            Err(StorageError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn garbage_tail_fails_open() {
        // Regression: garbage appended to a segment (full header's worth of
        // bytes with a bad magic) must fail recovery with `CorruptRecord`,
        // not be dropped like a torn write.
        let dir = tempdir("garbage");
        let config = StoreConfig::default();
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            store.append(b"intact-1").unwrap();
            store.append(b"intact-2").unwrap();
            store.sync().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg).unwrap();
        data.extend_from_slice(&[
            0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
        ]);
        std::fs::write(&seg, &data).unwrap();
        assert!(matches!(
            LogStore::open(&dir, config),
            Err(StorageError::CorruptRecord {
                what: "bad magic",
                ..
            })
        ));
    }

    #[test]
    fn crc_mismatched_tail_fails_open() {
        // Regression: a fully present tail record whose CRC does not match
        // is corruption, not a torn write — recovery must refuse it.
        let dir = tempdir("crcmm");
        let config = StoreConfig::default();
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            store.append(b"intact").unwrap();
            store.append(b"to-be-flipped").unwrap();
            store.sync().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg).unwrap();
        let tail_offset = (HEADER_LEN + b"intact".len()) as u64;
        // Flip a byte inside the second record's payload.
        let idx = tail_offset as usize + HEADER_LEN;
        data[idx] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();
        match LogStore::open(&dir, config) {
            Err(StorageError::CorruptRecord { id, what }) => {
                assert_eq!(id, tail_offset);
                assert_eq!(what, "checksum mismatch");
            }
            other => panic!("expected CorruptRecord, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn sync_policies_all_roundtrip() {
        for (tag, sync) in [
            ("always", SyncPolicy::Always),
            ("onrotate", SyncPolicy::OnRotate),
            ("never", SyncPolicy::Never),
            (
                "group",
                SyncPolicy::GroupCommit {
                    max_batches: 4,
                    max_delay: Duration::from_millis(5),
                },
            ),
        ] {
            let config = StoreConfig {
                sync,
                ..Default::default()
            };
            let store = LogStore::open(tempdir(&format!("sp-{tag}")), config).unwrap();
            store.append(b"x").unwrap();
            assert_eq!(store.read(0).unwrap(), b"x");
        }
    }

    #[test]
    fn read_heavy_loop_does_not_reflush() {
        // Satellite regression: under OnRotate the append path already
        // flushed, so reads of the active segment must not flush again.
        let store = LogStore::open(tempdir("noreflush"), StoreConfig::default()).unwrap();
        for i in 0..8u32 {
            store.append(format!("r{i}").as_bytes()).unwrap();
        }
        for _ in 0..100 {
            store.read(3).unwrap();
        }
        assert_eq!(store.sync_stats().read_tail_flushes, 0);

        // Under Never the first read pays exactly one flush, then none until
        // the next append dirties the buffer again.
        let config = StoreConfig {
            sync: SyncPolicy::Never,
            ..Default::default()
        };
        let store = LogStore::open(tempdir("noreflush2"), config).unwrap();
        store.append(b"a").unwrap();
        for _ in 0..50 {
            store.read(0).unwrap();
        }
        assert_eq!(store.sync_stats().read_tail_flushes, 1);
        store.append(b"b").unwrap();
        store.read(1).unwrap();
        store.read(0).unwrap();
        assert_eq!(store.sync_stats().read_tail_flushes, 2);
    }

    #[test]
    fn group_commit_threshold_coalesces_fsyncs() {
        let config = StoreConfig {
            sync: SyncPolicy::GroupCommit {
                max_batches: 3,
                max_delay: Duration::from_secs(5),
            },
            ..Default::default()
        };
        let store = LogStore::open(tempdir("gc-thresh"), config).unwrap();
        store.append_batch(&[b"a0".as_slice(), b"a1"]).unwrap();
        store.append_batch(&[b"b0".as_slice()]).unwrap();
        // Two pending appends: nothing synced yet.
        assert_eq!(store.sync_stats().fsyncs, 0);
        // Third append crosses max_batches and performs one covering fsync.
        store.append_batch(&[b"c0".as_slice(), b"c1"]).unwrap();
        let stats = store.sync_stats();
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.fsyncs_coalesced, 2, "two appends rode the sync");
        // Everything indexed so far is durable: ensure_durable is instant.
        store.ensure_durable(4).unwrap();
        assert_eq!(store.sync_stats().fsyncs, 1, "no extra fsync needed");
    }

    #[test]
    fn group_commit_max_delay_bounds_the_wait() {
        let config = StoreConfig {
            sync: SyncPolicy::GroupCommit {
                max_batches: 64,
                max_delay: Duration::from_millis(20),
            },
            ..Default::default()
        };
        let store = LogStore::open(tempdir("gc-delay"), config).unwrap();
        store.append_batch(&[b"only".as_slice()]).unwrap();
        let start = Instant::now();
        store.ensure_durable(0).unwrap();
        let waited = start.elapsed();
        assert!(store.sync_stats().fsyncs >= 1, "caller performed the sync");
        assert!(
            waited < Duration::from_secs(2),
            "wait must be bounded by max_delay, took {waited:?}"
        );
        // A sequence that does not exist can never become durable.
        assert!(matches!(
            store.ensure_durable(99),
            Err(StorageError::RecordNotFound { id: 99, .. })
        ));
    }

    #[test]
    fn ensure_durable_is_a_no_op_for_other_policies() {
        for (tag, sync) in [
            ("ed-always", SyncPolicy::Always),
            ("ed-onrotate", SyncPolicy::OnRotate),
            ("ed-never", SyncPolicy::Never),
        ] {
            let config = StoreConfig {
                sync,
                ..Default::default()
            };
            let store = LogStore::open(tempdir(tag), config).unwrap();
            store.append(b"x").unwrap();
            let start = Instant::now();
            store.ensure_durable(0).unwrap();
            store.ensure_durable(1_000_000).unwrap();
            assert!(start.elapsed() < Duration::from_secs(1));
        }
    }

    #[test]
    fn truncate_tail_removes_records() {
        let dir = tempdir("trunc");
        let config = StoreConfig::default();
        let store = LogStore::open(&dir, config.clone()).unwrap();
        for i in 0..10u32 {
            store.append(format!("e{i}").as_bytes()).unwrap();
        }
        assert_eq!(store.truncate_tail(4).unwrap(), 6);
        assert_eq!(store.len(), 6);
        assert!(store.read(6).is_err());
        assert_eq!(store.read(5).unwrap(), b"e5");
        // Truncation is durable across recovery.
        drop(store);
        let store = LogStore::open(&dir, config).unwrap();
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn concurrent_reads_while_appending() {
        let store =
            std::sync::Arc::new(LogStore::open(tempdir("conc"), StoreConfig::default()).unwrap());
        for i in 0..100u32 {
            store.append(format!("seed-{i}").as_bytes()).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let data = store.read(i).unwrap();
                    assert_eq!(data, format!("seed-{i}").as_bytes(), "thread {t}");
                }
            }));
        }
        for i in 100..200u32 {
            store.append(format!("seed-{i}").as_bytes()).unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 200);
    }
}

#[cfg(test)]
mod iter_tests {
    use super::*;

    #[test]
    fn iterator_yields_all_records_in_order() {
        let dir = std::env::temp_dir().join(format!(
            "wedge-store-iter-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LogStore::open(&dir, StoreConfig::default()).unwrap();
        for i in 0..25u32 {
            store.append(format!("it-{i}").as_bytes()).unwrap();
        }
        let collected: Vec<Vec<u8>> = store.iter().map(|r| r.unwrap()).collect();
        assert_eq!(collected.len(), 25);
        for (i, record) in collected.iter().enumerate() {
            assert_eq!(record, format!("it-{i}").as_bytes());
        }
        // Empty store yields nothing.
        let empty_dir = dir.join("empty");
        let empty = LogStore::open(&empty_dir, StoreConfig::default()).unwrap();
        assert_eq!(empty.iter().count(), 0);
    }
}

#[cfg(test)]
mod tier_tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wedge-tier-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_seg_config() -> StoreConfig {
        StoreConfig {
            max_segment_bytes: 96,
            ..Default::default()
        }
    }

    fn fill(store: &LogStore, n: u32) {
        for i in 0..n {
            store
                .append(format!("tier-record-{i:05}").as_bytes())
                .unwrap();
        }
        store.sync().unwrap();
    }

    #[test]
    fn seal_moves_segments_to_the_cold_tier() {
        let dir = tempdir("seal");
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        fill(&store, 30);
        let before = store.segment_count();
        assert!(before > 2, "need several segments, got {before}");
        let sealed = store.seal_up_to(store.len()).unwrap();
        assert!(sealed >= 2, "sealed {sealed}");
        // Segment count is unchanged: every sealed .wlog became one .wcold.
        assert_eq!(store.segment_count(), before);
        let stats = store.tier_stats();
        assert_eq!(stats.segments_sealed, sealed as u64);
        assert_eq!(stats.cold_segments, sealed as u64);
        // The tail segment is never sealed, even when the frontier covers it.
        assert!(stats.hot_segments >= 1);
        // Every record still reads back, hot and cold alike.
        for i in 0..30u64 {
            assert_eq!(
                store.read(i).unwrap(),
                format!("tier-record-{i:05}").as_bytes()
            );
        }
        assert!(store.tier_stats().cold_reads > 0);
        // No leftover .wlog for sealed segments.
        for seg in 0..sealed {
            assert!(!segment_path(&dir, seg).exists(), "wlog {seg} remains");
            assert!(cold_path(&dir, seg).exists(), "wcold {seg} missing");
        }
        // Appends continue normally after sealing.
        let next = store.append(b"after-seal").unwrap();
        assert_eq!(store.read(next).unwrap(), b"after-seal");
    }

    #[test]
    fn seal_respects_the_frontier() {
        let dir = tempdir("frontier");
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        fill(&store, 30);
        // A frontier of zero seals nothing.
        assert_eq!(store.seal_up_to(0).unwrap(), 0);
        // A mid-log frontier seals only segments wholly below it.
        let sealed = store.seal_up_to(10).unwrap();
        let stats = store.tier_stats();
        assert_eq!(stats.cold_segments, sealed as u64);
        let covered: u64 = (0..sealed)
            .map(|id| {
                ColdSegment::open(&dir, id)
                    .map(|c| c.record_count())
                    .unwrap()
            })
            .sum();
        assert!(covered <= 10, "sealed past the frontier: {covered}");
        // Raising the frontier seals more.
        assert!(store.seal_up_to(store.len()).unwrap() > 0);
    }

    #[test]
    fn sealed_store_reopens_without_scanning_cold() {
        let dir = tempdir("reopen");
        {
            let store = LogStore::open(&dir, small_seg_config()).unwrap();
            fill(&store, 30);
            store.seal_up_to(store.len()).unwrap();
        }
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        let rec = store.recovery_stats();
        assert!(rec.cold_segments >= 2, "cold segments admitted: {rec:?}");
        // Only hot segments (at most the tail + rotated-but-unsealed ones)
        // were scanned.
        assert!(
            rec.scanned_records < 30,
            "cold records were rescanned: {rec:?}"
        );
        assert_eq!(store.len(), 30);
        for i in 0..30u64 {
            assert_eq!(
                store.read(i).unwrap(),
                format!("tier-record-{i:05}").as_bytes()
            );
        }
        assert_eq!(store.append(b"post-reopen").unwrap(), 30);
    }

    #[test]
    fn read_skips_tail_lock_for_sealed_segments() {
        // Satellite regression: reads of non-tail records must not touch
        // the tail mutex at all.
        let store = LogStore::open(tempdir("skiplock"), small_seg_config()).unwrap();
        fill(&store, 30);
        let tail_id = store.tail_segment_id();
        assert!(tail_id > 0);
        // Record 0 lives in segment 0, long rotated away.
        for _ in 0..50 {
            store.read(0).unwrap();
        }
        assert_eq!(store.sync_stats().read_tail_locks, 0);
        // A read of the newest record (in the tail) takes the lock.
        store.read(store.len() - 1).unwrap();
        assert_eq!(store.sync_stats().read_tail_locks, 1);
        // Cold reads skip it too.
        store.seal_up_to(store.len()).unwrap();
        let locks = store.sync_stats().read_tail_locks;
        for i in 0..10u64 {
            store.read(i).unwrap();
        }
        assert_eq!(store.sync_stats().read_tail_locks, locks);
    }

    #[test]
    fn read_range_takes_the_tail_lock_once() {
        // Satellite regression: a range read pays at most one tail-lock
        // acquisition and one flush check per call, not one per record.
        let config = StoreConfig {
            max_segment_bytes: 96,
            sync: SyncPolicy::Never, // keep the tail dirty so flushes count
            ..Default::default()
        };
        let store = LogStore::open(tempdir("rangelock"), config).unwrap();
        for i in 0..30u32 {
            store
                .append(format!("tier-record-{i:05}").as_bytes())
                .unwrap();
        }
        let records = store.read_range(0, 30).unwrap();
        assert_eq!(records.len(), 30);
        let stats = store.sync_stats();
        assert_eq!(stats.read_tail_locks, 1, "one lock per range call");
        assert_eq!(stats.read_tail_flushes, 1, "one flush per range call");
        // A range not touching the tail takes no lock at all.
        store.read_range(0, 5).unwrap();
        assert_eq!(store.sync_stats().read_tail_locks, 1);
        // Wrong ranges still error.
        assert!(store.read_range(25, 10).is_err());
        assert!(store.read_range(0, 0).unwrap().is_empty());
    }

    #[test]
    fn retire_deletes_cold_segments() {
        let dir = tempdir("retire");
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        fill(&store, 30);
        store.seal_up_to(store.len()).unwrap();
        let cold_before = store.tier_stats().cold_segments;
        assert!(cold_before >= 3);
        let retired = store.retire_up_to(10).unwrap();
        assert!(retired >= 1, "retired {retired}");
        let stats = store.tier_stats();
        assert_eq!(stats.segments_retired, retired as u64);
        assert_eq!(stats.cold_segments, cold_before - retired as u64);
        let oldest = store.oldest();
        assert!(oldest > 0 && oldest <= 10);
        // Reads below the retention frontier fail with RecordRetired...
        assert!(matches!(
            store.read(0),
            Err(StorageError::RecordRetired { id: 0, oldest: o }) if o == oldest
        ));
        // ...and reads at/above it still work.
        assert_eq!(
            store.read(oldest).unwrap(),
            format!("tier-record-{oldest:05}").as_bytes()
        );
        // len() keeps counting retired records: sequence space is dense.
        assert_eq!(store.len(), 30);
        // Retirement survives reopen (gc.wmark).
        drop(store);
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        assert_eq!(store.oldest(), oldest);
        assert_eq!(store.len(), 30);
        assert!(matches!(
            store.read(0),
            Err(StorageError::RecordRetired { .. })
        ));
        assert_eq!(store.append(b"post-retire").unwrap(), 30);
        // iter starts at the oldest live record.
        assert_eq!(store.iter().count() as u64, 31 - oldest);
    }

    #[test]
    fn index_checkpoint_makes_reopen_o_tail() {
        let dir = tempdir("widx");
        {
            let store = LogStore::open(&dir, small_seg_config()).unwrap();
            fill(&store, 30);
            store.write_index_checkpoint().unwrap();
        }
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        let rec = store.recovery_stats();
        assert!(rec.hinted_segments >= 2, "hints unused: {rec:?}");
        assert_eq!(rec.scanned_segments, 1, "only the tail scans: {rec:?}");
        assert_eq!(store.len(), 30);
        for i in 0..30u64 {
            assert_eq!(
                store.read(i).unwrap(),
                format!("tier-record-{i:05}").as_bytes()
            );
        }
        // A stale hint (file grew after the checkpoint) falls back to scan.
        for i in 30..40u32 {
            store
                .append(format!("tier-record-{i:05}").as_bytes())
                .unwrap();
        }
        store.sync().unwrap();
        drop(store);
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        assert_eq!(store.len(), 40);
        for i in 0..40u64 {
            assert_eq!(
                store.read(i).unwrap(),
                format!("tier-record-{i:05}").as_bytes()
            );
        }
    }

    #[test]
    fn truncate_across_cold_boundary_partial_segment() {
        // Satellite regression: truncation that lands inside a sealed cold
        // segment unseals the kept prefix and keeps segment_count truthful.
        let dir = tempdir("trunc-cold");
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        fill(&store, 30);
        store.seal_up_to(20).unwrap();
        assert!(store.tier_stats().cold_segments >= 2);
        // Truncate down to 5 records: well inside the cold tier.
        assert_eq!(store.truncate_tail(25).unwrap(), 5);
        assert_eq!(store.len(), 5);
        for i in 0..5u64 {
            assert_eq!(
                store.read(i).unwrap(),
                format!("tier-record-{i:05}").as_bytes()
            );
        }
        assert!(store.read(5).is_err());
        // segment_count agrees with the files actually on disk.
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                let name = e.as_ref().unwrap().file_name();
                let name = name.to_str().unwrap();
                name.ends_with(".wlog") || name.ends_with(".wcold")
            })
            .count() as u32;
        assert_eq!(store.segment_count(), on_disk);
        // Appends continue at the truncated position...
        assert_eq!(store.append(b"regrown").unwrap(), 5);
        assert_eq!(store.read(5).unwrap(), b"regrown");
        // ...and everything survives a reopen.
        drop(store);
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        assert_eq!(store.len(), 6);
        assert_eq!(store.read(5).unwrap(), b"regrown");
        assert_eq!(store.read(2).unwrap(), b"tier-record-00002".as_slice());
    }

    #[test]
    fn truncate_to_exact_cold_edge() {
        let dir = tempdir("trunc-edge");
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        fill(&store, 30);
        store.seal_up_to(store.len()).unwrap();
        // Find a cold segment edge to land on exactly.
        let first_cold_count = ColdSegment::open(&dir, 0).unwrap().record_count();
        let new_len = first_cold_count; // keep exactly cold segment 0
        store.truncate_tail(30 - new_len).unwrap();
        assert_eq!(store.len(), new_len);
        for i in 0..new_len {
            assert_eq!(
                store.read(i).unwrap(),
                format!("tier-record-{i:05}").as_bytes()
            );
        }
        assert_eq!(store.append(b"edge-append").unwrap(), new_len);
        drop(store);
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        assert_eq!(store.len(), new_len + 1);
        assert_eq!(store.read(new_len).unwrap(), b"edge-append");
    }

    #[test]
    fn truncate_into_retired_region_is_refused() {
        let store = LogStore::open(tempdir("trunc-retired"), small_seg_config()).unwrap();
        fill(&store, 30);
        store.seal_up_to(store.len()).unwrap();
        store.retire_up_to(10).unwrap();
        let oldest = store.oldest();
        assert!(oldest > 0);
        // Truncating everything would reach below the retired frontier.
        assert!(matches!(
            store.truncate_tail(30),
            Err(StorageError::RecordRetired { .. })
        ));
        // Truncating within the live region still works.
        let live = store.len() - oldest;
        assert_eq!(store.truncate_tail(live).unwrap(), oldest);
    }

    #[test]
    fn interrupted_seal_is_recovered_on_open() {
        // Crash window: the .wcold was renamed into place but the .wlog was
        // not yet unlinked. The next open prefers the cold copy.
        let dir = tempdir("seal-crash");
        {
            let store = LogStore::open(&dir, small_seg_config()).unwrap();
            fill(&store, 30);
        }
        // Seal segment 0 by hand, leaving the .wlog behind.
        let sealed = ColdSegment::seal(&dir, 0, 0).unwrap();
        let count = sealed.record_count();
        assert!(segment_path(&dir, 0).exists());
        let store = LogStore::open(&dir, small_seg_config()).unwrap();
        assert!(!segment_path(&dir, 0).exists(), "leftover wlog not removed");
        assert_eq!(store.len(), 30);
        assert_eq!(store.tier_stats().cold_segments, 1);
        for i in 0..count {
            assert_eq!(
                store.read(i).unwrap(),
                format!("tier-record-{i:05}").as_bytes()
            );
        }
    }

    #[test]
    fn concurrent_reads_while_sealing_and_retiring() {
        let store =
            std::sync::Arc::new(LogStore::open(tempdir("conc-seal"), small_seg_config()).unwrap());
        for i in 0..200u32 {
            store
                .append(format!("tier-record-{i:05}").as_bytes())
                .unwrap();
        }
        store.sync().unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..5 {
                    for i in 0..200u64 {
                        match store.read(i) {
                            Ok(data) => {
                                assert_eq!(
                                    data,
                                    format!("tier-record-{i:05}").as_bytes(),
                                    "round {round}"
                                );
                            }
                            // Retirement may outrun us; that error is the
                            // only acceptable one.
                            Err(StorageError::RecordRetired { .. }) => {}
                            Err(e) => panic!("read {i} failed: {e}"),
                        }
                    }
                }
            }));
        }
        store.seal_up_to(150).unwrap();
        store.retire_up_to(40).unwrap();
        store.write_index_checkpoint().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let stats = store.tier_stats();
        assert!(stats.segments_sealed > 0);
        assert!(stats.segments_retired > 0);
    }

    #[test]
    fn iter_spans_cold_and_hot_tiers() {
        let store = LogStore::open(tempdir("iter-tiers"), small_seg_config()).unwrap();
        fill(&store, 30);
        store.seal_up_to(15).unwrap();
        let collected: Vec<Vec<u8>> = store.iter().map(|r| r.unwrap()).collect();
        assert_eq!(collected.len(), 30);
        for (i, record) in collected.iter().enumerate() {
            assert_eq!(record, format!("tier-record-{i:05}").as_bytes());
        }
    }
}
