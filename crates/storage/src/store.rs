//! The append-only log store: sequential records across rotating segments,
//! with crash recovery and an in-memory locator index.
//!
//! This is the durable backing for the Offchain Node's log ("The log entry
//! is then persisted to local storage", paper §4.3). Records are addressed
//! by a dense `u64` sequence number assigned at append time.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::error::StorageError;
use crate::segment::{
    read_record_at, scan_segment, segment_path, SegmentId, SegmentWriter, TailState, HEADER_LEN,
};

/// When appended records are made durable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SyncPolicy {
    /// fsync after every append (safest, slowest).
    Always,
    /// Flush to the OS after every append, fsync only on rotation/close.
    #[default]
    OnRotate,
    /// Group commit: flush to the OS after every append, but coalesce the
    /// fsyncs of pipeline-adjacent batches into one `sync_data`. A sync is
    /// triggered once `max_batches` appends are pending, and
    /// [`LogStore::ensure_durable`] bounds the wait at `max_delay` — callers
    /// must hold replies until it returns, which restores the `Always`
    /// guarantee (reply ⇒ durable) at a fraction of the fsyncs.
    GroupCommit {
        /// Pending appends that trigger a sync inline.
        max_batches: usize,
        /// Longest a waiting [`LogStore::ensure_durable`] defers the sync
        /// hoping for more batches to share it.
        max_delay: Duration,
    },
    /// Leave flushing to the OS entirely (fastest; loses the tail on crash).
    Never,
}

/// Configuration for a [`LogStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Rotate to a new segment once the current one exceeds this size.
    pub max_segment_bytes: u64,
    /// Reject payloads larger than this.
    pub max_record_bytes: usize,
    /// Durability policy.
    pub sync: SyncPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_segment_bytes: 64 * 1024 * 1024,
            max_record_bytes: 16 * 1024 * 1024,
            sync: SyncPolicy::OnRotate,
        }
    }
}

/// Locates a record on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Locator {
    segment: SegmentId,
    offset: u64,
}

/// Append side: the active segment writer.
struct Tail {
    writer: SegmentWriter,
}

/// Group-commit bookkeeping (only consulted under
/// [`SyncPolicy::GroupCommit`]). Lock order: this mutex is innermost —
/// it is taken while holding the tail and/or index locks, and never the
/// other way around.
struct GroupState {
    /// Appends (batched or single) flushed to the OS but not yet covered by
    /// an fsync.
    pending_batches: u64,
    /// When the oldest pending append arrived; anchors `max_delay`.
    first_pending_at: Option<Instant>,
    /// Records `[0, durable_len)` are known to be on stable storage.
    durable_len: u64,
}

/// Counters describing the store's sync behaviour (sampled, monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `sync_data` calls issued.
    pub fsyncs: u64,
    /// Appends whose durability rode a neighbouring batch's fsync instead
    /// of paying their own (each sync covering `k` pending appends counts
    /// `k - 1` here).
    pub fsyncs_coalesced: u64,
    /// Tail flushes performed on the read path (kept low by the
    /// dirty-flag check in [`LogStore::read`]).
    pub read_tail_flushes: u64,
}

/// A durable append-only record log.
///
/// Appends are serialized; reads are concurrent and lock the index only
/// briefly (each read opens its own file handle, so readers never contend
/// with the writer on file position).
pub struct LogStore {
    dir: PathBuf,
    config: StoreConfig,
    index: RwLock<Vec<Locator>>,
    tail: Mutex<Tail>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    fsyncs: AtomicU64,
    fsyncs_coalesced: AtomicU64,
    read_tail_flushes: AtomicU64,
}

impl LogStore {
    /// Opens (or creates) a store in `dir`, recovering any existing
    /// segments. A torn tail record (interrupted write) is truncated away;
    /// genuine corruption — bad magic or a CRC mismatch on a fully present
    /// record — fails the open with [`StorageError::CorruptRecord`].
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<LogStore, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Discover existing segments.
        let mut segment_ids: Vec<SegmentId> = std::fs::read_dir(&dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let id = name.strip_prefix("seg-")?.strip_suffix(".wlog")?;
                id.parse::<SegmentId>().ok()
            })
            .collect();
        segment_ids.sort_unstable();

        let mut index = Vec::new();
        let mut tail_writer = None;
        if let Some((&last, fully_sealed)) = segment_ids.split_last() {
            for &id in fully_sealed {
                let scan = scan_segment(&dir, id)?;
                // Non-tail segments must be fully intact: mid-log corruption
                // cannot be silently dropped without creating a hole.
                if scan.has_trailing_bytes() {
                    return Err(StorageError::CorruptRecord {
                        id: id as u64,
                        what: "corruption in a sealed (non-tail) segment",
                    });
                }
                index.extend(scan.records.iter().map(|&(offset, _)| Locator {
                    segment: id,
                    offset,
                }));
            }
            let scan = scan_segment(&dir, last)?;
            // A torn write at the tail is the expected crash artifact and is
            // truncated; corrupt bytes (bad magic / CRC mismatch with the
            // payload fully present) mean tampering or bit rot and fail the
            // open rather than silently shortening the log.
            if let TailState::Corrupt { offset, what } = scan.tail {
                return Err(StorageError::CorruptRecord { id: offset, what });
            }
            index.extend(scan.records.iter().map(|&(offset, _)| Locator {
                segment: last,
                offset,
            }));
            tail_writer = Some(SegmentWriter::open_at(&dir, last, scan.valid_len)?);
        }
        let writer = match tail_writer {
            Some(w) => w,
            None => SegmentWriter::create(&dir, 0)?,
        };
        let durable_len = index.len() as u64;
        Ok(LogStore {
            dir,
            config,
            index: RwLock::new(index),
            tail: Mutex::new(Tail { writer }),
            group: Mutex::new(GroupState {
                pending_batches: 0,
                first_pending_at: None,
                // Recovered records were read back from disk, so they are
                // durable by construction.
                durable_len,
            }),
            group_cv: Condvar::new(),
            fsyncs: AtomicU64::new(0),
            fsyncs_coalesced: AtomicU64::new(0),
            read_tail_flushes: AtomicU64::new(0),
        })
    }

    /// Flushes and fsyncs the tail, then publishes the new durable frontier
    /// and wakes [`LogStore::ensure_durable`] waiters. Caller holds the tail
    /// lock; lock order is tail → index → group.
    fn sync_tail(&self, tail: &mut Tail) -> Result<(), StorageError> {
        tail.writer.sync()?;
        let durable = self.index.read().len() as u64;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let mut group = self.group.lock();
        self.fsyncs_coalesced
            .fetch_add(group.pending_batches.saturating_sub(1), Ordering::Relaxed);
        group.pending_batches = 0;
        group.first_pending_at = None;
        if durable > group.durable_len {
            group.durable_len = durable;
        }
        drop(group);
        self.group_cv.notify_all();
        Ok(())
    }

    /// Group-commit accounting after an append made it into the index:
    /// counts the pending batch and performs the covering fsync inline once
    /// `max_batches` are waiting. Caller holds the tail lock.
    fn note_appended(&self, tail: &mut Tail) -> Result<(), StorageError> {
        let SyncPolicy::GroupCommit { max_batches, .. } = self.config.sync else {
            return Ok(());
        };
        let should_sync = {
            let mut group = self.group.lock();
            group.pending_batches += 1;
            if group.first_pending_at.is_none() {
                group.first_pending_at = Some(Instant::now());
            }
            group.pending_batches >= max_batches.max(1) as u64
        };
        if should_sync {
            self.sync_tail(tail)?;
        }
        Ok(())
    }

    /// Blocks until record `seq` is covered by an fsync.
    ///
    /// Under [`SyncPolicy::GroupCommit`] this is the reply-release gate: a
    /// caller may acknowledge `seq` only after this returns. The wait is
    /// bounded — if no neighbouring batch triggers the sync within
    /// `max_delay` of the oldest pending append, the caller performs it
    /// itself. Under every other policy the append path already provided
    /// whatever durability the policy promises, so this returns
    /// immediately.
    pub fn ensure_durable(&self, seq: u64) -> Result<(), StorageError> {
        let SyncPolicy::GroupCommit { max_delay, .. } = self.config.sync else {
            return Ok(());
        };
        loop {
            let mut group = self.group.lock();
            if seq < group.durable_len {
                return Ok(());
            }
            // If nothing is pending there is no upcoming group sync to wait
            // for: fall through to the self-performed sync + recheck, which
            // either observes durability or proves the record absent.
            if let Some(first) = group.first_pending_at {
                let deadline = first + max_delay;
                let now = Instant::now();
                if now < deadline {
                    // Wait for a threshold-triggered sync to cover us (or
                    // for the delay budget to run out). Spurious wakeups
                    // only cause a re-check.
                    self.group_cv.wait_for(&mut group, deadline - now);
                    continue;
                }
            }
            drop(group);
            // Delay budget exhausted: perform the covering fsync ourselves.
            {
                let mut tail = self.tail.lock();
                self.sync_tail(&mut tail)?;
            }
            let group = self.group.lock();
            if seq < group.durable_len {
                return Ok(());
            }
            // Even a fresh fsync did not cover `seq`: the record is not in
            // the store, and waiting longer cannot make it durable.
            return Err(StorageError::RecordNotFound {
                id: seq,
                len: group.durable_len,
            });
        }
    }

    /// Sync-behaviour counters (monotonic since open).
    pub fn sync_stats(&self) -> SyncStats {
        SyncStats {
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            fsyncs_coalesced: self.fsyncs_coalesced.load(Ordering::Relaxed),
            read_tail_flushes: self.read_tail_flushes.load(Ordering::Relaxed),
        }
    }

    /// Appends a record; returns its sequence number.
    pub fn append(&self, payload: &[u8]) -> Result<u64, StorageError> {
        if payload.len() > self.config.max_record_bytes {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: self.config.max_record_bytes,
            });
        }
        let mut tail = self.tail.lock();
        // Rotate if the current segment is full (never rotate an empty one —
        // a single oversized record may exceed max_segment_bytes).
        if tail.writer.len() + (HEADER_LEN + payload.len()) as u64 > self.config.max_segment_bytes
            && !tail.writer.is_empty()
        {
            self.sync_tail(&mut tail)?;
            let next_id = tail.writer.id() + 1;
            tail.writer = SegmentWriter::create(&self.dir, next_id)?;
        }
        let offset = tail.writer.append(payload)?;
        match self.config.sync {
            SyncPolicy::Always => self.sync_tail(&mut tail)?,
            SyncPolicy::OnRotate | SyncPolicy::GroupCommit { .. } => tail.writer.flush()?,
            SyncPolicy::Never => {}
        }
        let locator = Locator {
            segment: tail.writer.id(),
            offset,
        };
        let seq = {
            let mut index = self.index.write();
            index.push(locator);
            index.len() as u64 - 1
        };
        self.note_appended(&mut tail)?;
        Ok(seq)
    }

    /// Appends several records as one batch, flushing once. Returns the
    /// sequence number of the first record.
    pub fn append_batch<D: AsRef<[u8]>>(&self, payloads: &[D]) -> Result<u64, StorageError> {
        let mut tail = self.tail.lock();
        let mut locators = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let payload = payload.as_ref();
            if payload.len() > self.config.max_record_bytes {
                return Err(StorageError::RecordTooLarge {
                    size: payload.len(),
                    max: self.config.max_record_bytes,
                });
            }
            if tail.writer.len() + (HEADER_LEN + payload.len()) as u64
                > self.config.max_segment_bytes
                && !tail.writer.is_empty()
            {
                self.sync_tail(&mut tail)?;
                let next_id = tail.writer.id() + 1;
                tail.writer = SegmentWriter::create(&self.dir, next_id)?;
            }
            let offset = tail.writer.append(payload)?;
            locators.push(Locator {
                segment: tail.writer.id(),
                offset,
            });
        }
        match self.config.sync {
            SyncPolicy::Always => self.sync_tail(&mut tail)?,
            SyncPolicy::OnRotate | SyncPolicy::GroupCommit { .. } => tail.writer.flush()?,
            SyncPolicy::Never => {}
        }
        let first = {
            let mut index = self.index.write();
            let first = index.len() as u64;
            index.extend(locators);
            first
        };
        self.note_appended(&mut tail)?;
        Ok(first)
    }

    /// Reads record `id`.
    pub fn read(&self, id: u64) -> Result<Vec<u8>, StorageError> {
        let locator = {
            let index = self.index.read();
            *index.get(id as usize).ok_or(StorageError::RecordNotFound {
                id,
                len: index.len() as u64,
            })?
        };
        // The tail segment may still hold this record in its write buffer;
        // flush before reading if it is the active segment — but only when
        // something was actually appended since the last flush, so a
        // read-heavy loop does not pay a syscall per read.
        {
            let mut tail = self.tail.lock();
            if tail.writer.id() == locator.segment && tail.writer.is_dirty() {
                tail.writer.flush()?;
                self.read_tail_flushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        read_record_at(&self.dir, locator.segment, locator.offset)
    }

    /// Reads records `[start, start + count)` in order.
    pub fn read_range(&self, start: u64, count: u64) -> Result<Vec<Vec<u8>>, StorageError> {
        (start..start + count).map(|id| self.read(id)).collect()
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.index.read().len() as u64
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.index.read().is_empty()
    }

    /// Forces the tail to stable storage.
    pub fn sync(&self) -> Result<(), StorageError> {
        let mut tail = self.tail.lock();
        self.sync_tail(&mut tail)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> u32 {
        self.tail.lock().writer.id() + 1
    }

    /// Iterates over all records in sequence order. Each item re-reads from
    /// disk (no large resident buffers); errors surface per record.
    pub fn iter(&self) -> impl Iterator<Item = Result<Vec<u8>, StorageError>> + '_ {
        (0..self.len()).map(move |id| self.read(id))
    }

    /// Simulates the paper's extreme omission attack for tests: removes the
    /// newest `count` records from the index *and* truncates them from disk.
    /// Returns the new length.
    pub fn truncate_tail(&self, count: u64) -> Result<u64, StorageError> {
        let mut index = self.index.write();
        let new_len = index.len().saturating_sub(count as usize);
        let removed: Vec<Locator> = index.drain(new_len..).collect();
        if let Some(first_removed) = removed.first() {
            let mut tail = self.tail.lock();
            // Only supports truncation within the active segment; earlier
            // segments would need deletion (not required by tests).
            if first_removed.segment == tail.writer.id() {
                tail.writer.sync()?;
                let id = tail.writer.id();
                let keep = first_removed.offset;
                tail.writer = SegmentWriter::open_at(&self.dir, id, keep)?;
            } else {
                // Remove whole later segments, then truncate within the one
                // holding the first removed record.
                for seg in (first_removed.segment + 1)..=tail.writer.id() {
                    let _ = std::fs::remove_file(segment_path(&self.dir, seg));
                }
                tail.writer =
                    SegmentWriter::open_at(&self.dir, first_removed.segment, first_removed.offset)?;
            }
        }
        // The durable frontier cannot exceed the truncated length.
        let mut group = self.group.lock();
        if group.durable_len > new_len as u64 {
            group.durable_len = new_len as u64;
        }
        Ok(new_len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wedge-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_roundtrip() {
        let store = LogStore::open(tempdir("rt"), StoreConfig::default()).unwrap();
        let a = store.append(b"alpha").unwrap();
        let b = store.append(b"beta").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.read(0).unwrap(), b"alpha");
        assert_eq!(store.read(1).unwrap(), b"beta");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn missing_record_is_error() {
        let store = LogStore::open(tempdir("miss"), StoreConfig::default()).unwrap();
        assert!(matches!(
            store.read(0),
            Err(StorageError::RecordNotFound { id: 0, len: 0 })
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let config = StoreConfig {
            max_record_bytes: 8,
            ..Default::default()
        };
        let store = LogStore::open(tempdir("big"), config).unwrap();
        assert!(matches!(
            store.append(b"123456789"),
            Err(StorageError::RecordTooLarge { size: 9, max: 8 })
        ));
    }

    #[test]
    fn rotation_spreads_segments() {
        let config = StoreConfig {
            max_segment_bytes: 64,
            ..Default::default()
        };
        let dir = tempdir("rot");
        let store = LogStore::open(&dir, config).unwrap();
        for i in 0..20u32 {
            store
                .append(format!("record-number-{i:04}").as_bytes())
                .unwrap();
        }
        assert!(store.segment_count() > 1, "expected rotation");
        for i in 0..20u32 {
            assert_eq!(
                store.read(i as u64).unwrap(),
                format!("record-number-{i:04}").as_bytes()
            );
        }
    }

    #[test]
    fn batch_append_is_dense_and_ordered() {
        let store = LogStore::open(tempdir("batch"), StoreConfig::default()).unwrap();
        store.append(b"pre").unwrap();
        let first = store
            .append_batch(&[b"b0".as_slice(), b"b1", b"b2"])
            .unwrap();
        assert_eq!(first, 1);
        assert_eq!(store.read(2).unwrap(), b"b1");
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn recovery_restores_index() {
        let dir = tempdir("rec");
        let config = StoreConfig {
            max_segment_bytes: 128,
            ..Default::default()
        };
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            for i in 0..30u32 {
                store.append(format!("persisted-{i}").as_bytes()).unwrap();
            }
            store.sync().unwrap();
        }
        let store = LogStore::open(&dir, config).unwrap();
        assert_eq!(store.len(), 30);
        for i in 0..30u32 {
            assert_eq!(
                store.read(i as u64).unwrap(),
                format!("persisted-{i}").as_bytes()
            );
        }
        // And appends continue from the recovered tail.
        assert_eq!(store.append(b"after-recovery").unwrap(), 30);
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let dir = tempdir("torn");
        let config = StoreConfig::default();
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            store.append(b"complete-1").unwrap();
            store.append(b"complete-2").unwrap();
            store.append(b"torn-record").unwrap();
            store.sync().unwrap();
        }
        // Tear the last record.
        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let store = LogStore::open(&dir, config).unwrap();
        assert_eq!(store.len(), 2, "torn record dropped");
        // The torn slot is reused by the next append.
        assert_eq!(store.append(b"rewritten").unwrap(), 2);
        assert_eq!(store.read(2).unwrap(), b"rewritten");
    }

    #[test]
    fn sealed_segment_corruption_fails_open() {
        let dir = tempdir("sealed");
        let config = StoreConfig {
            max_segment_bytes: 64,
            ..Default::default()
        };
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            for i in 0..10u32 {
                store
                    .append(format!("record-number-{i:04}").as_bytes())
                    .unwrap();
            }
            store.sync().unwrap();
            assert!(store.segment_count() > 1);
        }
        // Corrupt a byte in the middle of segment 0 (sealed).
        let seg = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();
        assert!(matches!(
            LogStore::open(&dir, config),
            Err(StorageError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn garbage_tail_fails_open() {
        // Regression: garbage appended to a segment (full header's worth of
        // bytes with a bad magic) must fail recovery with `CorruptRecord`,
        // not be dropped like a torn write.
        let dir = tempdir("garbage");
        let config = StoreConfig::default();
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            store.append(b"intact-1").unwrap();
            store.append(b"intact-2").unwrap();
            store.sync().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg).unwrap();
        data.extend_from_slice(&[
            0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
        ]);
        std::fs::write(&seg, &data).unwrap();
        assert!(matches!(
            LogStore::open(&dir, config),
            Err(StorageError::CorruptRecord {
                what: "bad magic",
                ..
            })
        ));
    }

    #[test]
    fn crc_mismatched_tail_fails_open() {
        // Regression: a fully present tail record whose CRC does not match
        // is corruption, not a torn write — recovery must refuse it.
        let dir = tempdir("crcmm");
        let config = StoreConfig::default();
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            store.append(b"intact").unwrap();
            store.append(b"to-be-flipped").unwrap();
            store.sync().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg).unwrap();
        let tail_offset = (HEADER_LEN + b"intact".len()) as u64;
        // Flip a byte inside the second record's payload.
        let idx = tail_offset as usize + HEADER_LEN;
        data[idx] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();
        match LogStore::open(&dir, config) {
            Err(StorageError::CorruptRecord { id, what }) => {
                assert_eq!(id, tail_offset);
                assert_eq!(what, "checksum mismatch");
            }
            other => panic!("expected CorruptRecord, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn sync_policies_all_roundtrip() {
        for (tag, sync) in [
            ("always", SyncPolicy::Always),
            ("onrotate", SyncPolicy::OnRotate),
            ("never", SyncPolicy::Never),
            (
                "group",
                SyncPolicy::GroupCommit {
                    max_batches: 4,
                    max_delay: Duration::from_millis(5),
                },
            ),
        ] {
            let config = StoreConfig {
                sync,
                ..Default::default()
            };
            let store = LogStore::open(tempdir(&format!("sp-{tag}")), config).unwrap();
            store.append(b"x").unwrap();
            assert_eq!(store.read(0).unwrap(), b"x");
        }
    }

    #[test]
    fn read_heavy_loop_does_not_reflush() {
        // Satellite regression: under OnRotate the append path already
        // flushed, so reads of the active segment must not flush again.
        let store = LogStore::open(tempdir("noreflush"), StoreConfig::default()).unwrap();
        for i in 0..8u32 {
            store.append(format!("r{i}").as_bytes()).unwrap();
        }
        for _ in 0..100 {
            store.read(3).unwrap();
        }
        assert_eq!(store.sync_stats().read_tail_flushes, 0);

        // Under Never the first read pays exactly one flush, then none until
        // the next append dirties the buffer again.
        let config = StoreConfig {
            sync: SyncPolicy::Never,
            ..Default::default()
        };
        let store = LogStore::open(tempdir("noreflush2"), config).unwrap();
        store.append(b"a").unwrap();
        for _ in 0..50 {
            store.read(0).unwrap();
        }
        assert_eq!(store.sync_stats().read_tail_flushes, 1);
        store.append(b"b").unwrap();
        store.read(1).unwrap();
        store.read(0).unwrap();
        assert_eq!(store.sync_stats().read_tail_flushes, 2);
    }

    #[test]
    fn group_commit_threshold_coalesces_fsyncs() {
        let config = StoreConfig {
            sync: SyncPolicy::GroupCommit {
                max_batches: 3,
                max_delay: Duration::from_secs(5),
            },
            ..Default::default()
        };
        let store = LogStore::open(tempdir("gc-thresh"), config).unwrap();
        store.append_batch(&[b"a0".as_slice(), b"a1"]).unwrap();
        store.append_batch(&[b"b0".as_slice()]).unwrap();
        // Two pending appends: nothing synced yet.
        assert_eq!(store.sync_stats().fsyncs, 0);
        // Third append crosses max_batches and performs one covering fsync.
        store.append_batch(&[b"c0".as_slice(), b"c1"]).unwrap();
        let stats = store.sync_stats();
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.fsyncs_coalesced, 2, "two appends rode the sync");
        // Everything indexed so far is durable: ensure_durable is instant.
        store.ensure_durable(4).unwrap();
        assert_eq!(store.sync_stats().fsyncs, 1, "no extra fsync needed");
    }

    #[test]
    fn group_commit_max_delay_bounds_the_wait() {
        let config = StoreConfig {
            sync: SyncPolicy::GroupCommit {
                max_batches: 64,
                max_delay: Duration::from_millis(20),
            },
            ..Default::default()
        };
        let store = LogStore::open(tempdir("gc-delay"), config).unwrap();
        store.append_batch(&[b"only".as_slice()]).unwrap();
        let start = Instant::now();
        store.ensure_durable(0).unwrap();
        let waited = start.elapsed();
        assert!(store.sync_stats().fsyncs >= 1, "caller performed the sync");
        assert!(
            waited < Duration::from_secs(2),
            "wait must be bounded by max_delay, took {waited:?}"
        );
        // A sequence that does not exist can never become durable.
        assert!(matches!(
            store.ensure_durable(99),
            Err(StorageError::RecordNotFound { id: 99, .. })
        ));
    }

    #[test]
    fn ensure_durable_is_a_no_op_for_other_policies() {
        for (tag, sync) in [
            ("ed-always", SyncPolicy::Always),
            ("ed-onrotate", SyncPolicy::OnRotate),
            ("ed-never", SyncPolicy::Never),
        ] {
            let config = StoreConfig {
                sync,
                ..Default::default()
            };
            let store = LogStore::open(tempdir(tag), config).unwrap();
            store.append(b"x").unwrap();
            let start = Instant::now();
            store.ensure_durable(0).unwrap();
            store.ensure_durable(1_000_000).unwrap();
            assert!(start.elapsed() < Duration::from_secs(1));
        }
    }

    #[test]
    fn truncate_tail_removes_records() {
        let dir = tempdir("trunc");
        let config = StoreConfig::default();
        let store = LogStore::open(&dir, config.clone()).unwrap();
        for i in 0..10u32 {
            store.append(format!("e{i}").as_bytes()).unwrap();
        }
        assert_eq!(store.truncate_tail(4).unwrap(), 6);
        assert_eq!(store.len(), 6);
        assert!(store.read(6).is_err());
        assert_eq!(store.read(5).unwrap(), b"e5");
        // Truncation is durable across recovery.
        drop(store);
        let store = LogStore::open(&dir, config).unwrap();
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn concurrent_reads_while_appending() {
        let store =
            std::sync::Arc::new(LogStore::open(tempdir("conc"), StoreConfig::default()).unwrap());
        for i in 0..100u32 {
            store.append(format!("seed-{i}").as_bytes()).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let data = store.read(i).unwrap();
                    assert_eq!(data, format!("seed-{i}").as_bytes(), "thread {t}");
                }
            }));
        }
        for i in 100..200u32 {
            store.append(format!("seed-{i}").as_bytes()).unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 200);
    }
}

#[cfg(test)]
mod iter_tests {
    use super::*;

    #[test]
    fn iterator_yields_all_records_in_order() {
        let dir = std::env::temp_dir().join(format!(
            "wedge-store-iter-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LogStore::open(&dir, StoreConfig::default()).unwrap();
        for i in 0..25u32 {
            store.append(format!("it-{i}").as_bytes()).unwrap();
        }
        let collected: Vec<Vec<u8>> = store.iter().map(|r| r.unwrap()).collect();
        assert_eq!(collected.len(), 25);
        for (i, record) in collected.iter().enumerate() {
            assert_eq!(record, format!("it-{i}").as_bytes());
        }
        // Empty store yields nothing.
        let empty_dir = dir.join("empty");
        let empty = LogStore::open(&empty_dir, StoreConfig::default()).unwrap();
        assert_eq!(empty.iter().count(), 0);
    }
}
