//! Kill-and-recover test for the fsync group-commit policy.
//!
//! The release protocol under `SyncPolicy::GroupCommit` is: a reply may only
//! be sent after `ensure_durable(seq)` returns `Ok`. This test enforces the
//! end-to-end consequence — *no replied-to record is ever lost* — by running
//! the protocol in a child process, SIGKILLing it mid-stream, and asserting
//! that every sequence number the child "replied" to (recorded in a side
//! file only after `ensure_durable` succeeded) is still readable, with the
//! expected payload, after recovery.
//!
//! The child is this same test binary re-executed with `WEDGE_GC_CRASH_DIR`
//! set; the harness filter (`--exact`) steers it into the workload loop,
//! which runs until the parent kills it.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

use wedge_storage::{LogStore, StoreConfig, SyncPolicy};

const CRASH_DIR_VAR: &str = "WEDGE_GC_CRASH_DIR";
const BATCH: usize = 8;

fn config() -> StoreConfig {
    StoreConfig {
        max_segment_bytes: 16 * 1024, // rotate a few times during the run
        sync: SyncPolicy::GroupCommit {
            max_batches: 4,
            max_delay: Duration::from_millis(2),
        },
        ..Default::default()
    }
}

fn payload(seq: u64) -> Vec<u8> {
    format!("rec-{seq:08}").into_bytes()
}

/// Child mode: stream batches into the store on one thread while this
/// thread waits for durability and only then records each batch as
/// "released". The bounded channel keeps a couple of batches in flight so
/// appends overlap the `ensure_durable` waits, exactly like the node's
/// persist/deliver pipeline. Runs until SIGKILLed by the parent.
fn crash_workload(dir: &Path) -> ! {
    let store = std::sync::Arc::new(LogStore::open(dir.join("store"), config()).unwrap());
    let released_path = dir.join("released.txt");

    let (tx, rx) = mpsc::sync_channel::<u64>(2);

    // Appender thread: owns the sequence counter, streams batches.
    let appender_store = std::sync::Arc::clone(&store);
    std::thread::spawn(move || {
        let mut next = 0u64;
        loop {
            let batch: Vec<Vec<u8>> = (next..next + BATCH as u64).map(payload).collect();
            let first = appender_store.append_batch(&batch).unwrap();
            assert_eq!(first, next, "child store must start empty");
            next += BATCH as u64;
            if tx.send(next - 1).is_err() {
                return;
            }
        }
    });

    // Releaser (this thread): wait for durability, then record the release.
    // The released file is synced before the next iteration so a recorded
    // seq really was "replied to" before the crash.
    let mut released = std::fs::File::create(&released_path).unwrap();
    for last_seq in rx {
        store.ensure_durable(last_seq).unwrap();
        writeln!(released, "{last_seq}").unwrap();
        released.sync_data().unwrap();
    }
    unreachable!("channel never closes before SIGKILL");
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wedge-gc-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn group_commit_survives_sigkill_without_losing_released_records() {
    if let Ok(dir) = std::env::var(CRASH_DIR_VAR) {
        crash_workload(Path::new(&dir));
    }

    let dir = scratch();
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .arg("group_commit_survives_sigkill_without_losing_released_records")
        .arg("--exact")
        .arg("--nocapture")
        .arg("--test-threads=1")
        .env(CRASH_DIR_VAR, &dir)
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Let the child stream batches for a while, then SIGKILL it mid-flight —
    // no destructors, no flushes, exactly like a power cut.
    std::thread::sleep(Duration::from_millis(500));
    child.kill().unwrap();
    child.wait().unwrap();

    // Recover. Every released seq must be present with the right payload.
    let released = std::fs::read_to_string(dir.join("released.txt")).unwrap();
    let released_seqs: Vec<u64> = released
        .lines()
        .map(|line| line.parse().expect("released file holds full lines only"))
        .collect();
    assert!(
        !released_seqs.is_empty(),
        "child must have released at least one batch in 500ms; \
         released.txt was empty (child failed to start?)"
    );

    let store = LogStore::open(dir.join("store"), config()).unwrap();
    let max_released = *released_seqs.iter().max().unwrap();
    assert!(
        store.len() > max_released,
        "recovered store len {} does not cover max released seq {max_released}",
        store.len()
    );
    for seq in 0..=max_released {
        assert_eq!(
            store.read(seq).unwrap(),
            payload(seq),
            "released record {seq} lost or corrupted after SIGKILL"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn released_after_crash_is_prefix_of_recovered_log() {
    // Deterministic single-process variant: ensure_durable + recovery with
    // an unclean drop (no sync on shutdown) never loses a released record.
    let dir = scratch().join("prefix");
    let released;
    {
        let store = LogStore::open(&dir, config()).unwrap();
        let mut next = 0u64;
        for _ in 0..10 {
            let batch: Vec<Vec<u8>> = (next..next + BATCH as u64).map(payload).collect();
            store.append_batch(&batch).unwrap();
            next += BATCH as u64;
        }
        let last = next - 1;
        store.ensure_durable(last).unwrap();
        released = last;
        // Store dropped without a final sync: everything released must
        // already be on disk.
    }
    let store = LogStore::open(&dir, config()).unwrap();
    assert!(store.len() > released);
    for seq in 0..=released {
        assert_eq!(store.read(seq).unwrap(), payload(seq));
    }
    let _ = std::fs::remove_dir_all(dir);
}
