//! Property-based tests for the storage engine: arbitrary append sequences
//! roundtrip, recovery preserves every record, and arbitrary tail
//! truncations of the file never corrupt the recovered prefix.

use proptest::prelude::*;
use wedge_storage::{LogStore, StoreConfig, SyncPolicy};

fn scratch(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wedge-storage-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn appends_roundtrip(records in arb_records(), seed in any::<u64>()) {
        let config = StoreConfig {
            max_segment_bytes: 512, // force frequent rotation
            sync: SyncPolicy::Never,
            ..Default::default()
        };
        let store = LogStore::open(scratch(seed), config).unwrap();
        for (i, record) in records.iter().enumerate() {
            let id = store.append(record).unwrap();
            prop_assert_eq!(id, i as u64);
        }
        for (i, record) in records.iter().enumerate() {
            prop_assert_eq!(&store.read(i as u64).unwrap(), record);
        }
    }

    #[test]
    fn recovery_preserves_everything(records in arb_records(), seed in any::<u64>()) {
        let dir = scratch(seed.wrapping_add(1));
        let config = StoreConfig {
            max_segment_bytes: 512,
            ..Default::default()
        };
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            for record in &records {
                store.append(record).unwrap();
            }
            store.sync().unwrap();
        }
        let store = LogStore::open(&dir, config).unwrap();
        prop_assert_eq!(store.len(), records.len() as u64);
        for (i, record) in records.iter().enumerate() {
            prop_assert_eq!(&store.read(i as u64).unwrap(), record);
        }
    }

    #[test]
    fn torn_tail_never_corrupts_prefix(records in arb_records(), chop in 1usize..64, seed in any::<u64>()) {
        // Write everything into ONE segment, then chop `chop` bytes off the
        // file end — recovery must yield an intact prefix.
        let dir = scratch(seed.wrapping_add(2));
        let config = StoreConfig::default(); // large segments: single file
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            for record in &records {
                store.append(record).unwrap();
            }
            store.sync().unwrap();
        }
        let seg = dir.join("seg-0000000000.wlog");
        let len = std::fs::metadata(&seg).unwrap().len();
        let new_len = len.saturating_sub(chop as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(new_len).unwrap();
        drop(f);
        let store = LogStore::open(&dir, config).unwrap();
        let survivors = store.len() as usize;
        prop_assert!(survivors <= records.len());
        for (i, record) in records.iter().take(survivors).enumerate() {
            prop_assert_eq!(&store.read(i as u64).unwrap(), record);
        }
    }
}
