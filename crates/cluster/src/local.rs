//! An in-process cluster deployment: N epoch-mode shards over one
//! simulated chain, a router, and the epoch coordinator — the cluster
//! counterpart of the single-node `World` used by tests and benchmarks.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, MinerHandle, Wei};
use wedge_core::node::ReplyFn;
use wedge_core::{
    AppendRequest, CoreError, EntryId, LogService, NodeConfig, OffchainNode, SignedResponse,
    Stage2Mode,
};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_crypto::signer::Identity;
use wedge_crypto::PublicKey;
use wedge_merkle::RangeProof;
use wedge_sim::Clock;

use crate::epoch::EpochCoordinator;
use crate::router::ClusterClient;
use crate::shard::ShardMap;

/// Cluster deployment parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of shard nodes.
    pub shards: usize,
    /// Per-shard node configuration (`stage2_mode` is forced to
    /// [`Stage2Mode::Epoch`]).
    pub node: NodeConfig,
    /// Maximum batch roots one epoch pulls per shard.
    pub epoch_max_group: usize,
    /// Simulated-clock compression for the chain.
    pub compression: f64,
    /// Chain parameters (fault tests shorten `receipt_timeout`).
    pub chain: ChainConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 4,
            node: NodeConfig::default(),
            epoch_max_group: 16,
            compression: 2000.0,
            chain: ChainConfig::default(),
        }
    }
}

/// A running in-process cluster.
pub struct LocalCluster {
    /// The shared simulated chain.
    pub chain: Arc<Chain>,
    /// Its (compressed) clock.
    pub clock: Clock,
    /// The shard-aware router.
    pub router: ClusterClient,
    /// The epoch coordinator (mutably drive it via
    /// [`LocalCluster::run_epoch`]).
    pub coordinator: EpochCoordinator,
    nodes: Vec<Option<Arc<OffchainNode>>>,
    identities: Vec<Identity>,
    dirs: Vec<PathBuf>,
    node_config: NodeConfig,
    miner: Option<MinerHandle>,
    base_dir: PathBuf,
}

impl LocalCluster {
    /// Boots a cluster: chain + miner, the `ClusterRoot` contract, and
    /// `config.shards` epoch-mode nodes under a scratch directory keyed by
    /// `tag`.
    pub fn start(tag: &str, config: ClusterConfig) -> Result<LocalCluster, CoreError> {
        let clock = Clock::compressed(config.compression);
        let chain = Chain::new(clock.clone(), config.chain.clone());
        let coordinator_id = Identity::from_seed(format!("cluster-coord-{tag}").as_bytes());
        chain.fund(coordinator_id.address(), Wei::from_eth(1_000_000));
        let miner = chain.start_miner();
        let coordinator =
            EpochCoordinator::deploy(Arc::clone(&chain), coordinator_id, config.epoch_max_group)?;

        let base_dir =
            std::env::temp_dir().join(format!("wedge-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base_dir);
        let mut node_config = config.node.clone();
        node_config.stage2_mode = Stage2Mode::Epoch;

        let mut nodes = Vec::with_capacity(config.shards.max(1));
        let mut identities = Vec::new();
        let mut dirs = Vec::new();
        let mut backends: Vec<Arc<dyn LogService>> = Vec::new();
        for shard in 0..config.shards.max(1) {
            let identity = Identity::from_seed(format!("cluster-{tag}-shard-{shard}").as_bytes());
            let dir = base_dir.join(format!("shard-{shard}"));
            let node = Arc::new(OffchainNode::start(
                identity.clone(),
                node_config.clone(),
                Arc::clone(&chain),
                coordinator.contract(),
                &dir,
            )?);
            backends.push(Arc::clone(&node) as Arc<dyn LogService>);
            nodes.push(Some(node));
            identities.push(identity);
            dirs.push(dir);
        }
        Ok(LocalCluster {
            chain,
            clock,
            router: ClusterClient::new(backends),
            coordinator,
            nodes,
            identities,
            dirs,
            node_config,
            miner: Some(miner),
            base_dir,
        })
    }

    /// The shard node, when up.
    pub fn node(&self, shard: usize) -> Option<&Arc<OffchainNode>> {
        self.nodes.get(shard).and_then(|n| n.as_ref())
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// Drives one coordinator epoch over the router. Returns whether an
    /// epoch was committed (false = nothing pending anywhere).
    pub fn run_epoch(&mut self) -> Result<bool, CoreError> {
        Ok(self.coordinator.run_epoch(&self.router)?.is_some())
    }

    /// Runs epochs until every running shard's flushed positions are
    /// blockchain-committed, or `timeout` of simulated time passes.
    pub fn settle(&mut self, timeout: Duration) -> Result<(), CoreError> {
        let start = self.clock.now();
        loop {
            self.run_epoch()?;
            let idle = self
                .nodes
                .iter()
                .flatten()
                .all(|node| node.wait_stage2_idle(Duration::ZERO).is_ok());
            if idle {
                return Ok(());
            }
            if self.clock.now().since(start) > timeout {
                return Err(CoreError::NotYetBlockchainCommitted { log_id: 0 });
            }
            self.clock.sleep(Duration::from_millis(50));
        }
    }

    /// Takes shard `shard` down: the router fails over to a stub that
    /// rejects every operation (clean errors, no hangs), and the node shuts
    /// down — flushing its pipeline and writing its final checkpoint, the
    /// state the restart path recovers from.
    pub fn crash_shard(&mut self, shard: usize) {
        if let Some(node) = self.nodes[shard].take() {
            let key = node.public_key();
            node.begin_shutdown();
            // Swap the router first so new operations fail fast while the
            // old backend's Arcs drain and the node joins its workers.
            self.router
                .replace_shard(shard, Arc::new(DownShard { public_key: key }));
            drop(node);
        }
    }

    /// Restarts a crashed shard from its data directory (checkpoint +
    /// tail replay) and fails the router back over to it.
    pub fn restart_shard(&mut self, shard: usize) -> Result<(), CoreError> {
        if self.nodes[shard].is_some() {
            self.crash_shard(shard);
        }
        let node = Arc::new(OffchainNode::start(
            self.identities[shard].clone(),
            self.node_config.clone(),
            Arc::clone(&self.chain),
            self.coordinator.contract(),
            &self.dirs[shard],
        )?);
        self.router
            .replace_shard(shard, Arc::clone(&node) as Arc<dyn LogService>);
        self.nodes[shard] = Some(node);
        Ok(())
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.miner.take();
        // Swap the router's backends out so node Arcs actually drop and
        // the nodes shut down before the scratch directory goes away.
        for shard in 0..self.nodes.len() {
            if let Some(node) = self.nodes[shard].take() {
                let key = node.public_key();
                self.router
                    .replace_shard(shard, Arc::new(DownShard { public_key: key }));
                drop(node);
            }
        }
        let _ = std::fs::remove_dir_all(&self.base_dir);
    }
}

/// Failover placeholder while a shard is down: every operation fails fast
/// with a clean error instead of hanging.
struct DownShard {
    public_key: PublicKey,
}

impl LogService for DownShard {
    fn node_public_key(&self) -> PublicKey {
        self.public_key
    }
    fn submit_request(&self, _request: AppendRequest, reply: ReplyFn) -> Result<(), CoreError> {
        reply(Err("shard is down".into()));
        Err(CoreError::NodeStopped)
    }
    fn read_entry(&self, _id: EntryId) -> Result<SignedResponse, CoreError> {
        Err(CoreError::NodeStopped)
    }
    fn read_entry_by_sequence(
        &self,
        _publisher: Address,
        _sequence: u64,
    ) -> Result<SignedResponse, CoreError> {
        Err(CoreError::NodeStopped)
    }
    fn read_position(&self, _log_id: u64) -> Result<Vec<SignedResponse>, CoreError> {
        Err(CoreError::NodeStopped)
    }
    fn position_len(&self, _log_id: u64) -> Option<u32> {
        None
    }
    fn scan(
        &self,
        _log_id: u64,
        _start: u32,
        _count: u32,
    ) -> Result<(Vec<Vec<u8>>, RangeProof, Hash32), CoreError> {
        Err(CoreError::NodeStopped)
    }
    fn positions(&self) -> u64 {
        0
    }
    fn entries(&self) -> u64 {
        0
    }
}

/// Finds an identity seeded from `tag` whose address the map places on
/// `shard` — deterministic, so tests and benches can aim load at a
/// specific shard.
pub fn identity_on_shard(map: ShardMap, shard: usize, tag: &str) -> Identity {
    for n in 0..u32::MAX {
        let identity = Identity::from_seed(format!("{tag}-{n}").as_bytes());
        if map.shard_of(identity.address()) == shard % map.len() {
            return identity;
        }
    }
    // lint: allow(panic) — 2^32 keccak-spread seeds over at most a few
    // hundred shards cannot all miss one shard; test/bench helper only
    unreachable!("a shard placement must exist among 2^32 seeds")
}
