//! Hash-sharding of the log namespace.
//!
//! A cluster of N Offchain Nodes splits publishers across shards by a
//! keccak hash of the publisher address — stateless, so every router,
//! coordinator and client derives the same placement without coordination.
//! A publisher's whole log lives on one shard (its per-publisher sequence
//! numbers stay contiguous there), which keeps the single-node read and
//! audit paths unchanged inside a shard.

use wedge_core::EntryId;
use wedge_crypto::hash::keccak256_fixed;
use wedge_crypto::keys::Address;

/// The cluster's stateless placement function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` nodes (at least one).
    pub fn new(shards: usize) -> ShardMap {
        ShardMap {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards
    }

    /// Always false — a map has at least one shard; provided for idiom.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard holding `publisher`'s log: the first 8 bytes of
    /// `keccak(address)` reduced modulo the shard count. Hashing (rather
    /// than taking address bytes directly) spreads adversarially chosen
    /// addresses evenly.
    pub fn shard_of(&self, publisher: Address) -> usize {
        // A 20-byte address is always sub-rate: one fused permutation.
        let digest = keccak256_fixed(publisher.as_bytes());
        let mut word = [0u8; 8];
        word.copy_from_slice(&digest[..8]);
        (u64::from_be_bytes(word) % self.shards as u64) as usize
    }
}

/// A cluster-wide entry address: which shard, and the entry's position in
/// that shard's log.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterEntryId {
    /// The shard holding the entry.
    pub shard: usize,
    /// The entry's id inside that shard's log.
    pub id: EntryId,
}

impl core::fmt::Display for ClusterEntryId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.shard, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::signer::Identity;

    #[test]
    fn placement_is_stable_and_in_range() {
        let map = ShardMap::new(4);
        for i in 0..64u64 {
            let addr = Identity::from_seed(format!("shard-pub-{i}").as_bytes()).address();
            let s = map.shard_of(addr);
            assert!(s < 4);
            assert_eq!(s, map.shard_of(addr), "placement must be deterministic");
        }
    }

    #[test]
    fn placement_spreads_publishers() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..256u64 {
            let addr = Identity::from_seed(format!("spread-{i}").as_bytes()).address();
            counts[map.shard_of(addr)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 256 / 16,
                "shard {shard} starved: {counts:?} — keccak placement should spread"
            );
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let map = ShardMap::new(0);
        assert_eq!(map.len(), 1);
        assert_eq!(map.shard_of(Address([7; 20])), 0);
    }
}
