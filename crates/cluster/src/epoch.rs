//! The epoch coordinator: one root-of-roots transaction per epoch.
//!
//! Each epoch the coordinator
//!
//! 1. **collects** every shard's pending batch-root group
//!    (`epoch_report`) — an unreachable shard simply contributes an empty
//!    group this epoch and re-reports the same positions next time (the
//!    shard side is stateless, see `wedge_core::node` epoch docs);
//! 2. **folds** each shard's roots into a shard epoch root, and the N
//!    shard roots into the cluster root-of-roots — the exact fold the
//!    [`ClusterRoot`] contract recomputes on-chain from calldata;
//! 3. **submits** one `Commit-Epoch` transaction, with bounded-backoff
//!    retries. Failures are *reconciled* against the contract's
//!    `tail_epoch` before retrying: a receipt timeout does not mean the
//!    transaction missed, and the contract's sequential single-write rule
//!    turns any duplicate into a revert — each epoch lands **exactly
//!    once**;
//! 4. **acknowledges** the covered groups (`epoch_commit`); a lost ack is
//!    harmless (the shard re-reports, the stale-epoch guard rejects
//!    out-of-order acks — `wedge-check`'s epoch model exercises why).
//!
//! The coordinator keeps an [`EpochRecord`] per committed epoch and serves
//! [`ClusterProof`]s from it: entry → shard root → on-chain cluster root.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Address, Chain, ChainError, Gas, Wei};
use wedge_contracts::ClusterRoot;
use wedge_core::{CoreError, EntryId, EpochCommit, ShardGroup, Stage2RetryPolicy};
use wedge_crypto::hash::Hash32;
use wedge_crypto::signer::Identity;
use wedge_merkle::MerkleTree;

use crate::proof::ClusterProof;
use crate::router::ClusterClient;

/// One shard's slice of a committed epoch.
#[derive(Clone, Debug)]
pub struct ShardEpoch {
    /// First covered log position (empty shards carry their frontier).
    pub start: u64,
    /// The covered batch roots (empty when the shard had nothing pending).
    pub roots: Vec<Hash32>,
    /// The shard's epoch root: the Merkle fold of `roots`, or
    /// [`Hash32::ZERO`] for an empty shard.
    pub shard_root: Hash32,
}

impl ShardEpoch {
    /// Whether this epoch covered any of the shard's positions.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Whether `log_id` is covered by this slice.
    pub fn covers(&self, log_id: u64) -> bool {
        log_id >= self.start && log_id < self.start + self.roots.len() as u64
    }
}

/// A committed epoch: everything needed to rebuild its proofs.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// The epoch number (sequential from 0).
    pub epoch: u64,
    /// The on-chain root-of-roots.
    pub cluster_root: Hash32,
    /// The `Commit-Epoch` transaction (zero when recovered by
    /// reconciliation without a visible receipt).
    pub tx_hash: Hash32,
    /// Block that mined it.
    pub block_number: u64,
    /// Gas the transaction consumed.
    pub gas_used: Gas,
    /// Fee the coordinator paid.
    pub fee: Wei,
    /// Per-shard slices, indexed by shard id.
    pub shards: Vec<ShardEpoch>,
}

/// Coordinator counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinatorStats {
    /// Epochs committed on-chain.
    pub epochs_committed: u64,
    /// `Commit-Epoch` submissions attempted (retries included).
    pub txs_submitted: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Attempts whose outcome was recovered from the contract state after
    /// a lost/timed-out receipt.
    pub reconciled: u64,
    /// `epoch_report` calls that failed (shard treated as empty).
    pub reports_failed: u64,
    /// `epoch_commit` acknowledgements that failed (shard will
    /// re-report).
    pub acks_failed: u64,
    /// Total gas across committed epochs.
    pub gas_total: u64,
    /// Total fees across committed epochs.
    pub fees_total: Wei,
}

/// Drives the cluster's root-of-roots commits.
pub struct EpochCoordinator {
    chain: Arc<Chain>,
    identity: Identity,
    contract: Address,
    max_group: usize,
    retry: Stage2RetryPolicy,
    next_epoch: u64,
    records: Vec<EpochRecord>,
    stats: CoordinatorStats,
}

impl EpochCoordinator {
    /// Deploys a [`ClusterRoot`] bound to `identity` and returns the
    /// coordinator driving it.
    pub fn deploy(
        chain: Arc<Chain>,
        identity: Identity,
        max_group: usize,
    ) -> Result<EpochCoordinator, CoreError> {
        let (contract, tx) = chain.deploy(
            identity.secret_key(),
            Box::new(ClusterRoot::new(identity.address())),
            Wei::ZERO,
            ClusterRoot::CODE_LEN,
        )?;
        chain.wait_for_receipt(tx)?;
        Ok(EpochCoordinator::new(chain, identity, contract, max_group))
    }

    /// Wraps an already-deployed contract (e.g. after a coordinator
    /// restart — `next_epoch` resumes from the contract's tail).
    pub fn new(
        chain: Arc<Chain>,
        identity: Identity,
        contract: Address,
        max_group: usize,
    ) -> EpochCoordinator {
        let next_epoch = chain
            .view(contract, &ClusterRoot::get_tail_epoch_calldata())
            .ok()
            .and_then(|out| ClusterRoot::decode_u64(&out))
            .unwrap_or(0);
        EpochCoordinator {
            chain,
            identity,
            contract,
            max_group: max_group.max(1),
            retry: Stage2RetryPolicy::default(),
            next_epoch,
            records: Vec::new(),
            stats: CoordinatorStats::default(),
        }
    }

    /// Replaces the retry policy (defaults to the stage-2 policy).
    pub fn with_retry(mut self, retry: Stage2RetryPolicy) -> EpochCoordinator {
        self.retry = retry;
        self
    }

    /// The `ClusterRoot` contract address.
    pub fn contract(&self) -> Address {
        self.contract
    }

    /// The next epoch to be committed.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CoordinatorStats {
        self.stats
    }

    /// Records of every epoch this coordinator committed.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Runs one epoch: collect → fold → commit on-chain → acknowledge.
    /// Returns `None` (and submits nothing) when every shard reported an
    /// empty group.
    pub fn run_epoch(&mut self, router: &ClusterClient) -> Result<Option<&EpochRecord>, CoreError> {
        let epoch = self.next_epoch;
        let shards = self.collect(router);
        if shards.iter().all(ShardEpoch::is_empty) {
            return Ok(None);
        }
        // The on-chain fold takes one leaf per shard — empty shards
        // contribute the zero root, keeping every shard at a fixed leaf
        // index (= shard id) so proofs don't depend on which shards were
        // active.
        let shard_roots: Vec<Hash32> = shards.iter().map(|s| s.shard_root).collect();
        let cluster_root = ClusterRoot::fold_roots(&shard_roots)
            .ok_or(CoreError::RequestRejected("cluster with zero shards"))?;
        let landed = self.commit_on_chain(epoch, &shard_roots)?;
        debug_assert_eq!(landed.root, cluster_root, "on-chain fold must match ours");

        // Acknowledge the covered groups. A failed ack is not fatal: the
        // shard re-reports the same positions and a later epoch covers
        // them again (idempotently, under a fresh root-of-roots).
        for (shard, slice) in shards.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let ack = router.backend(shard).epoch_commit(EpochCommit {
                epoch,
                start: slice.start,
                count: slice.roots.len() as u64,
                tx_hash: landed.tx_hash,
                block_number: landed.block_number,
            });
            if ack.is_err() {
                self.stats.acks_failed += 1;
            }
        }

        self.stats.epochs_committed += 1;
        self.stats.gas_total += landed.gas_used.0;
        self.stats.fees_total = self
            .stats
            .fees_total
            .checked_add(landed.fee)
            .unwrap_or(self.stats.fees_total);
        self.next_epoch = epoch + 1;
        self.records.push(EpochRecord {
            epoch,
            cluster_root,
            tx_hash: landed.tx_hash,
            block_number: landed.block_number,
            gas_used: landed.gas_used,
            fee: landed.fee,
            shards,
        });
        Ok(self.records.last())
    }

    /// Collects every shard's pending group. Report failures count in
    /// `reports_failed` and contribute an empty slice.
    fn collect(&mut self, router: &ClusterClient) -> Vec<ShardEpoch> {
        (0..router.shards())
            .map(|shard| {
                let group = match router.backend(shard).epoch_report(self.max_group) {
                    Ok(group) => group,
                    Err(_) => {
                        self.stats.reports_failed += 1;
                        ShardGroup::default()
                    }
                };
                let shard_root = fold_shard(&group.roots);
                ShardEpoch {
                    start: group.start,
                    roots: group.roots,
                    shard_root,
                }
            })
            .collect()
    }

    /// Submits `Commit-Epoch` until it lands exactly once. Every failure
    /// is reconciled against the contract tail before the retry: if the
    /// epoch is already past the tail, a previous attempt landed and its
    /// outcome is adopted instead of resubmitting.
    fn commit_on_chain(&mut self, epoch: u64, shard_roots: &[Hash32]) -> Result<Landed, CoreError> {
        let calldata = ClusterRoot::commit_epoch_calldata(epoch, shard_roots);
        // Base cost + per-shard calldata/hashing margin.
        let gas_limit = Gas(150_000 + 30_000 * shard_roots.len() as u64);
        let mut attempt: u32 = 0;
        let mut last_tx = None;
        loop {
            attempt += 1;
            self.stats.txs_submitted += 1;
            let outcome = self
                .chain
                .call_contract(
                    self.identity.secret_key(),
                    self.contract,
                    Wei::ZERO,
                    calldata.clone(),
                    gas_limit,
                )
                .and_then(|tx| {
                    last_tx = Some(tx);
                    self.chain.wait_for_receipt(tx)
                });
            match outcome {
                Ok(receipt) if receipt.status.is_success() => {
                    return Ok(Landed {
                        root: ClusterRoot::decode_root(&receipt.output).unwrap_or(Hash32::ZERO),
                        tx_hash: receipt.tx_hash,
                        block_number: receipt.block_number,
                        gas_used: receipt.gas_used,
                        fee: receipt.fee,
                    });
                }
                Ok(_)
                | Err(ChainError::SubmissionDropped(_))
                | Err(ChainError::ReceiptTimeout(_)) => {
                    // Revert, drop or timeout: the attempt may still have
                    // landed (e.g. a delayed receipt, or a revert caused by
                    // our own earlier attempt advancing the tail).
                    if let Some(landed) = self.reconcile(epoch, last_tx) {
                        self.stats.reconciled += 1;
                        return Ok(landed);
                    }
                }
                Err(e) => return Err(CoreError::Chain(e)),
            }
            if attempt >= self.retry.max_attempts.max(1) {
                return Err(CoreError::RequestRejected("epoch commit retries exhausted"));
            }
            self.stats.retries += 1;
            self.chain
                .clock()
                .sleep(self.retry.backoff_for(attempt).min(Duration::from_secs(60)));
        }
    }

    /// Checks whether `epoch` already landed despite a failed attempt;
    /// recovers its outcome from the receipt when visible, else from the
    /// contract state alone.
    fn reconcile(&self, epoch: u64, last_tx: Option<Hash32>) -> Option<Landed> {
        let tail = self
            .chain
            .view(self.contract, &ClusterRoot::get_tail_epoch_calldata())
            .ok()
            .and_then(|out| ClusterRoot::decode_u64(&out))?;
        if tail <= epoch {
            return None;
        }
        let root = self
            .chain
            .view(self.contract, &ClusterRoot::get_epoch_root_calldata(epoch))
            .ok()
            .and_then(|out| ClusterRoot::decode_root(&out))?;
        // Prefer the real receipt (it may just have been hidden/delayed).
        if let Some(receipt) = last_tx.and_then(|tx| self.chain.receipt(tx)) {
            if receipt.status.is_success() {
                return Some(Landed {
                    root,
                    tx_hash: receipt.tx_hash,
                    block_number: receipt.block_number,
                    gas_used: receipt.gas_used,
                    fee: receipt.fee,
                });
            }
        }
        Some(Landed {
            root,
            tx_hash: last_tx.unwrap_or(Hash32::ZERO),
            block_number: 0,
            gas_used: Gas(0),
            fee: Wei::ZERO,
        })
    }

    /// Builds the [`ClusterProof`] for `(shard, id)` from the newest epoch
    /// record covering it, reading the signed response from the shard.
    pub fn prove(
        &self,
        router: &ClusterClient,
        shard: usize,
        id: EntryId,
    ) -> Result<ClusterProof, CoreError> {
        let record = self
            .records
            .iter()
            .rev()
            .find(|r| r.shards.get(shard).is_some_and(|s| s.covers(id.log_id)))
            .ok_or(CoreError::NotYetBlockchainCommitted { log_id: id.log_id })?;
        let slice = &record.shards[shard];
        let response = router.backend(shard).read_entry(id)?;

        let shard_leaves: Vec<&[u8]> = slice
            .roots
            .iter()
            .map(|r| r.as_bytes().as_slice())
            .collect();
        let shard_tree = MerkleTree::from_leaves(&shard_leaves)
            .map_err(|_| CoreError::RequestRejected("empty shard epoch slice"))?;
        let shard_proof = shard_tree
            .prove((id.log_id - slice.start) as usize)
            .map_err(|_| CoreError::RequestRejected("shard proof index out of range"))?;

        let cluster_leaves: Vec<Hash32> = record.shards.iter().map(|s| s.shard_root).collect();
        let leaf_refs: Vec<&[u8]> = cluster_leaves
            .iter()
            .map(|r| r.as_bytes().as_slice())
            .collect();
        let cluster_tree = MerkleTree::from_leaves(&leaf_refs)
            .map_err(|_| CoreError::RequestRejected("cluster with zero shards"))?;
        let cluster_proof = cluster_tree
            .prove(shard)
            .map_err(|_| CoreError::RequestRejected("cluster proof index out of range"))?;

        Ok(ClusterProof {
            epoch: record.epoch,
            shard: shard as u64,
            response,
            shard_proof,
            shard_root: slice.shard_root,
            cluster_proof,
        })
    }

    /// Reads the epoch's root-of-roots back from the contract (for
    /// verifying proofs against the *on-chain* digest, not the
    /// coordinator's memory).
    pub fn on_chain_root(&self, epoch: u64) -> Result<Hash32, CoreError> {
        let out = self
            .chain
            .view(self.contract, &ClusterRoot::get_epoch_root_calldata(epoch))?;
        ClusterRoot::decode_root(&out)
            .ok_or(CoreError::RequestRejected("epoch not committed on-chain"))
    }
}

/// A landed `Commit-Epoch` outcome.
struct Landed {
    root: Hash32,
    tx_hash: Hash32,
    block_number: u64,
    gas_used: Gas,
    fee: Wei,
}

/// The shard epoch root: Merkle fold of the reported batch roots, or the
/// zero root for an empty (or unreachable) shard.
fn fold_shard(roots: &[Hash32]) -> Hash32 {
    let leaves: Vec<&[u8]> = roots.iter().map(|r| r.as_bytes().as_slice()).collect();
    MerkleTree::from_leaves(&leaves)
        .map(|t| t.root())
        .unwrap_or(Hash32::ZERO)
}
