//! The shard-aware router client.
//!
//! A [`ClusterClient`] fronts N shard backends (any [`LogService`] — an
//! in-process node, a `RemoteNode`, or a striped `RemoteNodePool`) and
//! routes every operation to the shard that owns it: appends by publisher
//! address, reads by [`ClusterEntryId`] or `(publisher, sequence)`.
//! Cross-shard batch reads fan out concurrently, one thread per involved
//! shard.
//!
//! Backends sit behind per-shard `RwLock`s so a crashed shard can be
//! **failed over** in place ([`ClusterClient::replace_shard`]): in-flight
//! operations finish against the old backend's `Arc`, new ones pick up the
//! replacement — no router restart, no re-routing of the other shards.

use std::sync::Arc;

use parking_lot::RwLock;
use wedge_core::node::ReplyFn;
use wedge_core::{AppendRequest, CoreError, LogService, SignedResponse};
use wedge_crypto::keys::Address;
use wedge_crypto::PublicKey;

use crate::shard::{ClusterEntryId, ShardMap};

/// Routes cluster operations to the shard that owns them.
pub struct ClusterClient {
    map: ShardMap,
    backends: Vec<RwLock<Arc<dyn LogService>>>,
}

impl ClusterClient {
    /// Builds a router over one backend per shard (at least one).
    pub fn new(backends: Vec<Arc<dyn LogService>>) -> ClusterClient {
        let map = ShardMap::new(backends.len());
        ClusterClient {
            map,
            backends: backends.into_iter().map(RwLock::new).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.backends.len()
    }

    /// The cluster's placement function.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// The shard owning `publisher`'s log.
    pub fn shard_for(&self, publisher: Address) -> usize {
        self.map.shard_of(publisher)
    }

    /// The current backend of `shard` (cloned out of the slot, so the
    /// caller keeps a stable handle across a concurrent failover).
    pub fn backend(&self, shard: usize) -> Arc<dyn LogService> {
        Arc::clone(&self.backends[shard % self.backends.len()].read())
    }

    /// Failover: swaps `shard`'s backend for a replacement. Operations
    /// already holding the old `Arc` finish against it; everything routed
    /// afterwards uses the new backend.
    pub fn replace_shard(&self, shard: usize, backend: Arc<dyn LogService>) {
        *self.backends[shard % self.backends.len()].write() = backend;
    }

    /// The signing key of the node behind `shard` (for response
    /// verification).
    pub fn node_public_key(&self, shard: usize) -> PublicKey {
        self.backend(shard).node_public_key()
    }

    /// Submits one append to the owning shard; `reply` fires at batch
    /// flush. Returns the shard it was routed to.
    pub fn submit(&self, request: AppendRequest, reply: ReplyFn) -> Result<usize, CoreError> {
        let shard = self.shard_for(request.publisher);
        self.backend(shard).submit_request(request, reply)?;
        Ok(shard)
    }

    /// Flushes every shard's buffered submissions.
    pub fn flush(&self) {
        for slot in &self.backends {
            Arc::clone(&slot.read()).flush();
        }
    }

    /// Reads one entry from its shard.
    pub fn read(&self, id: ClusterEntryId) -> Result<SignedResponse, CoreError> {
        self.backend(id.shard).read_entry(id.id)
    }

    /// Looks an entry up by `(publisher, sequence)` on the owning shard.
    pub fn read_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<SignedResponse, CoreError> {
        self.backend(self.shard_for(publisher))
            .read_entry_by_sequence(publisher, sequence)
    }

    /// Reads a batch of entries, fanning out one thread per involved shard
    /// (each shard gets one `read_entries` round trip). Results come back
    /// in input order.
    pub fn read_many(&self, ids: &[ClusterEntryId]) -> Vec<Result<SignedResponse, CoreError>> {
        // Group input positions by shard, preserving each id's slot.
        let mut by_shard: Vec<(usize, Vec<usize>)> = Vec::new();
        for (slot, id) in ids.iter().enumerate() {
            let shard = id.shard % self.shards();
            match by_shard.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, slots)) => slots.push(slot),
                None => by_shard.push((shard, vec![slot])),
            }
        }
        let mut out: Vec<Option<Result<SignedResponse, CoreError>>> =
            (0..ids.len()).map(|_| None).collect();
        if by_shard.len() <= 1 {
            // Single-shard batch: no fan-out threads needed.
            for (shard, slots) in by_shard {
                let shard_ids: Vec<_> = slots.iter().map(|&s| ids[s].id).collect();
                let results = self.backend(shard).read_entries(&shard_ids);
                for (slot, result) in slots.into_iter().zip(results) {
                    out[slot] = Some(result);
                }
            }
        } else {
            type Gathered = Vec<(Vec<usize>, Vec<Result<SignedResponse, CoreError>>)>;
            let gathered: Gathered = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = by_shard
                    .into_iter()
                    .map(|(shard, slots)| {
                        let backend = self.backend(shard);
                        let shard_ids: Vec<_> = slots.iter().map(|&s| ids[s].id).collect();
                        (
                            slots,
                            scope.spawn(move |_| backend.read_entries(&shard_ids)),
                        )
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(slots, handle)| {
                        // A panicked shard thread degrades to per-slot
                        // errors; the other shards' results still flow.
                        let results = handle.join().unwrap_or_else(|_| {
                            slots
                                .iter()
                                .map(|_| {
                                    Err(CoreError::RequestRejected("shard read thread panicked"))
                                })
                                .collect()
                        });
                        (slots, results)
                    })
                    .collect()
            })
            // Unreachable in practice: every child is joined above, so the
            // scope itself cannot carry a leftover panic.
            .unwrap_or_default();
            for (slots, results) in gathered {
                for (slot, result) in slots.into_iter().zip(results) {
                    out[slot] = Some(result);
                }
            }
        }
        out.into_iter()
            .map(|r| r.unwrap_or(Err(CoreError::RequestRejected("unrouted cluster read"))))
            .collect()
    }

    /// Aggregate `(positions, entries)` across all shards — one `meta`
    /// round trip per shard.
    pub fn totals(&self) -> (u64, u64) {
        let mut positions = 0;
        let mut entries = 0;
        for shard in 0..self.shards() {
            let (p, e, _) = self.backend(shard).meta(u64::MAX);
            positions += p;
            entries += e;
        }
        (positions, entries)
    }
}
