//! # wedge-cluster
//!
//! Sharded multi-node WedgeBlock: N Offchain Nodes each own a hash-sliced
//! partition of the log namespace and run stage 1 at full speed, while a
//! single **epoch coordinator** folds every shard's pending batch roots
//! into one on-chain *root-of-roots* transaction per epoch — on-chain cost
//! stays one transaction per epoch regardless of shard count, so aggregate
//! append throughput scales with N while gas per entry falls.
//!
//! - [`ShardMap`] / [`ClusterEntryId`] — stateless keccak placement of
//!   publishers onto shards.
//! - [`ClusterClient`] — the shard-aware router: appends by publisher,
//!   reads by cluster id or `(publisher, sequence)`, cross-shard fan-out,
//!   in-place failover.
//! - [`EpochCoordinator`] / [`EpochRecord`] — collect → fold → commit →
//!   acknowledge, with exactly-once epoch commits under chain faults.
//! - [`ClusterProof`] — entry → shard epoch root → on-chain cluster root,
//!   also exposed as a `wedge_merkle::ComposedProof`.
//! - [`LocalCluster`] — in-process N-shard deployment for tests and the
//!   `repro -- cluster` benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epoch;
mod local;
mod proof;
mod router;
mod shard;

pub use epoch::{CoordinatorStats, EpochCoordinator, EpochRecord, ShardEpoch};
pub use local::{identity_on_shard, ClusterConfig, LocalCluster};
pub use proof::ClusterProof;
pub use router::ClusterClient;
pub use shard::{ClusterEntryId, ShardMap};
