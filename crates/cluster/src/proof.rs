//! Two-level cluster proofs: entry → shard epoch root → cluster root.
//!
//! A committed cluster entry is bound to the on-chain root-of-roots by a
//! chain of three Merkle links:
//!
//! 1. the **entry proof** inside the node's [`SignedResponse`] — leaf bytes
//!    up to the batch root the shard signed at stage 1;
//! 2. the **shard proof** — that batch root as a leaf of the shard's epoch
//!    tree (one leaf per batch root the shard reported this epoch);
//! 3. the **cluster proof** — the shard's epoch root as leaf `shard` of
//!    the cluster tree the `ClusterRoot` contract recomputed on-chain.
//!
//! [`ClusterProof::verify`] checks the node signature and the whole chain;
//! [`ClusterProof::composed`] exposes the same chain as a generic
//! [`ComposedProof`] for serialization.

use wedge_core::{CoreError, SignedResponse};
use wedge_crypto::hash::Hash32;
use wedge_crypto::PublicKey;
use wedge_merkle::{ComposedProof, MerkleProof};

/// Proof that one entry is covered by an on-chain cluster root-of-roots.
#[derive(Clone, Debug)]
pub struct ClusterProof {
    /// The epoch whose root-of-roots covers the entry.
    pub epoch: u64,
    /// The shard holding the entry (must equal the cluster proof's leaf
    /// index — the shard binding).
    pub shard: u64,
    /// The shard's signed stage-1 response (entry proof inside).
    pub response: SignedResponse,
    /// Batch root → shard epoch root.
    pub shard_proof: MerkleProof,
    /// The shard's epoch root (the intermediate the two upper proofs
    /// share).
    pub shard_root: Hash32,
    /// Shard epoch root → cluster root-of-roots.
    pub cluster_proof: MerkleProof,
}

impl ClusterProof {
    /// Full verification against the shard node's key and the **on-chain**
    /// cluster root:
    ///
    /// 1. the node's signature over the response is valid (and the entry
    ///    proof reproduces the signed batch root),
    /// 2. the batch root is a leaf of `shard_root`,
    /// 3. the proof claims the right shard (`cluster_proof.leaf_index`),
    /// 4. `shard_root` is leaf `shard` of `cluster_root`.
    pub fn verify(&self, node_key: &PublicKey, cluster_root: &Hash32) -> Result<(), CoreError> {
        self.response.verify(node_key)?;
        self.shard_proof
            .verify(self.response.merkle_root.as_bytes(), &self.shard_root)
            .map_err(|_| CoreError::ProofInvalid {
                entry_id: self.response.entry_id,
            })?;
        if self.cluster_proof.leaf_index != self.shard {
            return Err(CoreError::ProofPositionMismatch {
                entry_id: self.response.entry_id,
                proof_index: self.cluster_proof.leaf_index,
            });
        }
        self.cluster_proof
            .verify(self.shard_root.as_bytes(), cluster_root)
            .map_err(|_| CoreError::ProofInvalid {
                entry_id: self.response.entry_id,
            })?;
        Ok(())
    }

    /// The same chain as a generic three-level [`ComposedProof`] (entry →
    /// batch root → shard root → cluster root), e.g. for wire
    /// serialization. `ComposedProof::verify(leaf, cluster_root)` accepts
    /// exactly when [`ClusterProof::verify`] does, minus the signature and
    /// shard-binding checks that need the surrounding context.
    pub fn composed(&self) -> ComposedProof {
        ComposedProof {
            levels: vec![
                self.response.proof.clone(),
                self.shard_proof.clone(),
                self.cluster_proof.clone(),
            ],
        }
    }
}
