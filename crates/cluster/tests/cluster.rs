//! Cluster integration: routing, two-level proofs, exactly-once epoch
//! commits under chain faults, and shard crash/failover recovery.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::ChainConfig;
use wedge_cluster::{identity_on_shard, ClusterConfig, ClusterEntryId, LocalCluster};
use wedge_contracts::ClusterRoot;
use wedge_core::{AppendRequest, CommitPhase, CoreError, NodeConfig, SignedResponse};
use wedge_crypto::hash::Hash32;
use wedge_crypto::signer::Identity;

/// A small-batch node config so tests flush quickly.
fn test_node_config() -> NodeConfig {
    NodeConfig {
        batch_size: 8,
        batch_linger: Duration::from_millis(5),
        ..Default::default()
    }
}

fn test_cluster(tag: &str, shards: usize) -> LocalCluster {
    LocalCluster::start(
        tag,
        ClusterConfig {
            shards,
            node: test_node_config(),
            ..Default::default()
        },
    )
    .expect("cluster start")
}

/// Appends `n` entries through the router as a publisher pinned to
/// `shard`, returning the stage-1 responses.
fn append_on_shard(
    cluster: &LocalCluster,
    shard: usize,
    tag: &str,
    n: usize,
) -> Vec<SignedResponse> {
    let identity = identity_on_shard(cluster.router.shard_map(), shard, tag);
    let (tx, rx) = crossbeam::channel::unbounded();
    for seq in 0..n as u64 {
        let request = AppendRequest::new(
            identity.secret_key(),
            seq,
            format!("{tag}-{seq}").into_bytes(),
        );
        let routed = cluster
            .router
            .submit(request, {
                let tx = tx.clone();
                Box::new(move |result| {
                    let _ = tx.send(result);
                })
            })
            .expect("submit");
        assert_eq!(routed, shard, "router must place the publisher's shard");
    }
    cluster.router.flush();
    (0..n)
        .map(|_| {
            rx.recv_timeout(Duration::from_secs(60))
                .expect("reply")
                .expect("stage-1 response")
        })
        .collect()
}

#[test]
fn cluster_commits_and_two_level_proofs_verify_on_chain() {
    let mut cluster = test_cluster("proof", 4);
    let mut responses = Vec::new();
    for shard in 0..cluster.shards() {
        responses.push(append_on_shard(&cluster, shard, "proof-pub", 12));
    }
    cluster.settle(Duration::from_secs(3600)).expect("settle");

    // One on-chain transaction per epoch, regardless of shard count.
    let stats = cluster.coordinator.stats();
    assert!(stats.epochs_committed >= 1);
    assert_eq!(
        stats.txs_submitted, stats.epochs_committed,
        "no faults: exactly one tx per epoch"
    );

    for (shard, shard_responses) in responses.iter().enumerate() {
        let node = cluster.node(shard).expect("shard up");
        // Every position is blockchain-committed via the epoch path.
        for response in shard_responses {
            assert_eq!(
                node.commit_phase(response.entry_id.log_id),
                CommitPhase::BlockchainCommitted
            );
        }
        // Prove the first entry against the *on-chain* root-of-roots.
        let id = shard_responses[0].entry_id;
        let proof = cluster
            .coordinator
            .prove(&cluster.router, shard, id)
            .expect("cluster proof");
        let on_chain = cluster
            .coordinator
            .on_chain_root(proof.epoch)
            .expect("on-chain root");
        let node_key = cluster.router.node_public_key(shard);
        proof.verify(&node_key, &on_chain).expect("proof verifies");

        // The composed (3-level) form verifies the same chain.
        let composed = proof.composed();
        composed
            .verify(&proof.response.leaf, &on_chain)
            .expect("composed proof verifies");

        // Mutated shard root: the chain breaks at the cluster level.
        let mut bad = proof.clone();
        bad.shard_root = Hash32([0xEE; 32]);
        assert!(bad.verify(&node_key, &on_chain).is_err());

        // Wrong shard index: the shard binding check rejects it.
        let mut bad = proof.clone();
        bad.shard = (shard as u64 + 1) % cluster.shards() as u64;
        assert!(matches!(
            bad.verify(&node_key, &on_chain),
            Err(CoreError::ProofPositionMismatch { .. })
        ));

        // Wrong cluster root entirely.
        assert!(proof.verify(&node_key, &Hash32([0xAB; 32])).is_err());
    }

    // Cross-shard franken-proof: shard 0's entry under shard 1's upper
    // levels must not verify, even with a consistent shard claim.
    let p0 = cluster
        .coordinator
        .prove(&cluster.router, 0, responses[0][0].entry_id)
        .expect("proof 0");
    let p1 = cluster
        .coordinator
        .prove(&cluster.router, 1, responses[1][0].entry_id)
        .expect("proof 1");
    let on_chain = cluster.coordinator.on_chain_root(p0.epoch).expect("root");
    let mut franken = p0.clone();
    franken.shard = p1.shard;
    franken.shard_proof = p1.shard_proof.clone();
    franken.shard_root = p1.shard_root;
    franken.cluster_proof = p1.cluster_proof.clone();
    assert!(
        franken
            .verify(&cluster.router.node_public_key(0), &on_chain)
            .is_err(),
        "shard 0's batch root is not under shard 1's epoch root"
    );
}

#[test]
fn router_reads_route_and_fan_out() {
    let cluster = test_cluster("reads", 3);
    let mut all: Vec<(usize, Vec<SignedResponse>)> = Vec::new();
    for shard in 0..cluster.shards() {
        all.push((shard, append_on_shard(&cluster, shard, "read-pub", 9)));
    }
    // Point reads route by cluster id; sequence reads by publisher.
    for (shard, responses) in &all {
        let id = ClusterEntryId {
            shard: *shard,
            id: responses[3].entry_id,
        };
        let read = cluster.router.read(id).expect("point read");
        assert_eq!(read.leaf, responses[3].leaf);
        let identity = identity_on_shard(cluster.router.shard_map(), *shard, "read-pub");
        let by_seq = cluster
            .router
            .read_by_sequence(identity.address(), 5)
            .expect("sequence read");
        assert_eq!(by_seq.leaf, responses[5].leaf);
    }
    // Cross-shard batch read comes back in input order.
    let ids: Vec<ClusterEntryId> = all
        .iter()
        .flat_map(|(shard, responses)| {
            responses.iter().map(|r| ClusterEntryId {
                shard: *shard,
                id: r.entry_id,
            })
        })
        .collect();
    let results = cluster.router.read_many(&ids);
    assert_eq!(results.len(), ids.len());
    let leaves: Vec<&Vec<u8>> = all
        .iter()
        .flat_map(|(_, responses)| responses.iter().map(|r| &r.leaf))
        .collect();
    for (result, expected) in results.iter().zip(leaves) {
        assert_eq!(&result.as_ref().expect("fan-out read").leaf, expected);
    }
}

#[test]
fn chain_fault_bursts_commit_every_epoch_exactly_once() {
    let mut cluster = LocalCluster::start(
        "faults",
        ClusterConfig {
            shards: 3,
            node: test_node_config(),
            chain: ChainConfig {
                // Short enough that a delayed receipt forces the timeout →
                // reconcile path within the test budget.
                receipt_timeout: Duration::from_secs(120),
                ..ChainConfig::default()
            },
            ..Default::default()
        },
    )
    .expect("cluster");

    for round in 0..3 {
        for shard in 0..cluster.shards() {
            append_on_shard(&cluster, shard, &format!("fault-pub-{round}"), 10);
        }
        // A fresh fault burst ahead of every settle: dropped submissions,
        // forced reverts, and a receipt delayed past the timeout.
        cluster.chain.faults().drop_next_submissions(2);
        cluster.chain.faults().revert_next_calls(1);
        cluster
            .chain
            .faults()
            .delay_next_receipts(1, Duration::from_secs(300));
        cluster.settle(Duration::from_secs(36_000)).expect("settle");
    }
    cluster.chain.faults().clear();

    let stats = cluster.coordinator.stats();
    assert!(stats.retries > 0, "faults must have forced retries");
    assert!(
        stats.txs_submitted > stats.epochs_committed,
        "some submissions failed and were retried"
    );

    // Exactly-once: the contract's tail equals the coordinator's epoch
    // count — no epoch skipped, none double-committed — and every record
    // agrees with the on-chain digest.
    let tail = cluster
        .chain
        .view(
            cluster.coordinator.contract(),
            &ClusterRoot::get_tail_epoch_calldata(),
        )
        .ok()
        .and_then(|out| ClusterRoot::decode_u64(&out))
        .expect("tail epoch");
    assert_eq!(tail, cluster.coordinator.stats().epochs_committed);
    assert_eq!(tail, cluster.coordinator.next_epoch());
    for record in cluster.coordinator.records() {
        let on_chain = cluster
            .coordinator
            .on_chain_root(record.epoch)
            .expect("epoch digest on-chain");
        assert_eq!(on_chain, record.cluster_root);
    }

    // Nothing stuck pending on any shard.
    for shard in 0..cluster.shards() {
        let node = cluster.node(shard).expect("up");
        for log_id in 0..node.log_positions() {
            assert_eq!(node.commit_phase(log_id), CommitPhase::BlockchainCommitted);
        }
        let node_stats = node.stats();
        assert_eq!(node_stats.epoch_stale_rejected, 0);
    }
}

#[test]
fn shard_crash_recovers_from_checkpoint_with_router_failover() {
    let mut cluster = test_cluster("crash", 3);
    let crash_shard = 1;

    // Commit a first wave everywhere.
    let mut first: Vec<Vec<SignedResponse>> = Vec::new();
    for shard in 0..cluster.shards() {
        first.push(append_on_shard(&cluster, shard, "crash-pub", 10));
    }
    cluster.settle(Duration::from_secs(3600)).expect("settle 1");

    // Leave uncommitted work on the crash shard, then take it down
    // mid-epoch (flushed but not yet epoch-committed).
    let pending = append_on_shard(&cluster, crash_shard, "crash-pending", 8);
    cluster.crash_shard(crash_shard);

    // Router failover: the downed shard errors fast, the others serve.
    let identity = identity_on_shard(cluster.router.shard_map(), crash_shard, "crash-pub");
    assert!(cluster
        .router
        .read_by_sequence(identity.address(), 0)
        .is_err());
    let alive = identity_on_shard(cluster.router.shard_map(), 0, "crash-pub");
    cluster
        .router
        .read_by_sequence(alive.address(), 0)
        .expect("other shards unaffected");

    // Epochs keep committing for the live shards while one is down.
    for shard in 0..cluster.shards() {
        if shard != crash_shard {
            append_on_shard(&cluster, shard, "crash-wave2", 10);
        }
    }
    cluster
        .settle(Duration::from_secs(3600))
        .expect("settle without the crashed shard");
    assert!(
        cluster.coordinator.stats().reports_failed > 0,
        "the downed shard was skipped, not waited on"
    );

    // Restart from disk: checkpoint + tail replay, then failover back.
    cluster.restart_shard(crash_shard).expect("restart");
    let node = Arc::clone(cluster.node(crash_shard).expect("up"));
    assert_eq!(
        node.read(first[crash_shard][2].entry_id)
            .expect("old entry")
            .leaf,
        first[crash_shard][2].leaf,
        "pre-crash entries recovered"
    );
    // Pre-crash commits were restored; the interrupted group re-reports
    // and commits in the next epochs.
    assert_eq!(
        node.commit_phase(first[crash_shard][0].entry_id.log_id),
        CommitPhase::BlockchainCommitted
    );
    cluster.settle(Duration::from_secs(3600)).expect("settle 3");
    for response in &pending {
        assert_eq!(
            node.commit_phase(response.entry_id.log_id),
            CommitPhase::BlockchainCommitted,
            "interrupted group must commit after recovery"
        );
    }

    // The recovered shard serves new appends through the router again.
    let after = append_on_shard(&cluster, crash_shard, "crash-after", 6);
    cluster.settle(Duration::from_secs(3600)).expect("settle 4");
    let proof = cluster
        .coordinator
        .prove(&cluster.router, crash_shard, after[0].entry_id)
        .expect("proof over recovered shard");
    let root = cluster
        .coordinator
        .on_chain_root(proof.epoch)
        .expect("root");
    proof
        .verify(&cluster.router.node_public_key(crash_shard), &root)
        .expect("post-recovery proof verifies");
}

#[test]
fn epoch_mode_only_for_cluster_nodes() {
    // A Direct-mode node rejects epoch RPCs (the default LogService path).
    let cluster = test_cluster("mode", 1);
    // The shard node itself accepts them; a default-mode identity check is
    // covered in wedge-core. Here: empty cluster epoch is a no-op.
    let mut cluster = cluster;
    assert!(
        !cluster.run_epoch().expect("empty epoch"),
        "nothing pending"
    );
    assert_eq!(cluster.coordinator.stats().epochs_committed, 0);
    let _ = Identity::from_seed(b"unused");
}
